//! The partial-replication extension (the paper's §8 names it, Practi-
//! style, as future work): data ships only to each key's replica set,
//! metadata still flows everywhere so receivers can keep `SiteTime`
//! advancing with metadata-only applies. Runs go through the
//! `partial-replication` scenario preset and the unified `run` entry
//! point.

use eunomia::kv::ring;
use eunomia::kv::Key;
use eunomia::sim::units;
use eunomia::{run, Scenario, SystemId};
use std::collections::{HashMap, HashSet};

fn partial_scenario() -> Scenario {
    // The preset already sets rf = 2, a bounded-friendly workload and the
    // apply log; shorten it for the test.
    Scenario::partial_replication(2)
        .expect("rf 2 of 3 DCs is valid")
        .with(|cfg| {
            cfg.duration = units::secs(10);
            cfg.warmup = units::secs(2);
            cfg.cooldown = units::secs(1);
        })
}

#[test]
fn data_lands_exactly_on_replica_sets() {
    let sc = partial_scenario().with(|cfg| {
        cfg.ops_per_client = Some(250);
        cfg.duration = units::secs(25);
    });
    let n_dcs = sc.cfg().n_dcs;
    let log = run(SystemId::EunomiaKv, &sc).metrics.apply_log();
    assert!(!log.is_empty());

    // (a) No update ever lands at a datacenter outside its replica set.
    for rec in &log {
        assert!(
            ring::replicates(Key(rec.key), rec.dest as usize, n_dcs, 2),
            "key {} landed at dc{} which does not replicate it",
            rec.key,
            rec.dest
        );
    }
    // (b) After quiescence, every update reached its FULL replica set.
    let mut seen: HashMap<(u16, u64, u64), HashSet<u16>> = HashMap::new();
    for rec in &log {
        seen.entry((rec.origin, rec.ts, rec.key))
            .or_default()
            .insert(rec.dest);
    }
    for ((origin, ts, key), dests) in &seen {
        let expected: HashSet<u16> = ring::replica_set(Key(*key), n_dcs, 2)
            .into_iter()
            .map(|d| d as u16)
            .collect();
        assert_eq!(
            dests, &expected,
            "update (dc{origin}, ts {ts}, key {key}) landed at {dests:?}, expected {expected:?}"
        );
    }
}

#[test]
fn per_origin_apply_order_holds_under_partial_replication() {
    let log = run(SystemId::EunomiaKv, &partial_scenario())
        .metrics
        .apply_log();
    // Remote applies from each origin at each destination stay in
    // timestamp order even though some of the origin's stream is skipped
    // (metadata-only) at this destination.
    let mut high: HashMap<(u16, u16), u64> = HashMap::new();
    let mut remote = 0u64;
    for rec in &log {
        if rec.origin == rec.dest {
            continue;
        }
        remote += 1;
        let h = high.entry((rec.origin, rec.dest)).or_insert(0);
        assert!(
            rec.ts >= *h,
            "out-of-order apply at dc{} from dc{}: {} after {}",
            rec.dest,
            rec.origin,
            rec.ts,
            *h
        );
        *h = rec.ts;
    }
    assert!(remote > 100, "too few remote applies: {remote}");
}

#[test]
fn partial_replication_ships_less_data() {
    // Count remote landings: rf=2 means each update lands at 1 remote DC
    // instead of 2 — data-path traffic drops by half.
    let count_remote = |rf: Option<usize>| {
        let sc = partial_scenario().with(|cfg| {
            cfg.replication_factor = rf;
            // Bounded workload + drain time so every landing happens
            // in-run (the faithful Alg. 5 receiver backlogs under
            // sustained 50:50).
            cfg.ops_per_client = Some(150);
            cfg.duration = units::secs(30);
        });
        let log = run(SystemId::EunomiaKv, &sc).metrics.apply_log();
        let total_updates = log.iter().filter(|r| r.origin == r.dest).count() as f64;
        let remote = log.iter().filter(|r| r.origin != r.dest).count() as f64;
        remote / total_updates
    };
    let full = count_remote(None);
    let partial = count_remote(Some(2));
    assert!(
        full > 1.8,
        "full replication: ~2 remote landings per update, got {full}"
    );
    assert!(
        partial < 1.2 && partial > 0.8,
        "rf=2: ~1 remote landing per update, got {partial}"
    );
}
