//! Model-checking integration tests: the six-system certification matrix
//! plus the fault-injection budgets (drops, duplicate deliveries).
//!
//! These drive `eunomia::mc_run` — exhaustive schedule exploration with
//! causal-delivery, session-guarantee and convergence predicates — over
//! the tiny 2-DC MC deployments of `McScenario::certify`. The deeper
//! single-system counterexample/replay coverage lives next to the runner
//! in `crates/geo/src/mc.rs`.

use eunomia::sim::McVerdict;
use eunomia::{mc_replay, mc_run, McScenario, SystemId};

/// Every system of the paper's evaluation certifies its MC scenario with
/// a complete (untruncated) search. This is the acceptance bar of the
/// model-checking work: causal delivery and session guarantees hold on
/// every explored schedule, convergence holds at every quiescence.
#[test]
fn all_six_systems_certify_exhaustively() {
    for id in SystemId::all() {
        let sc = McScenario::certify(id);
        let report = mc_run(id, &sc);
        assert!(
            report.verdict.is_certified(),
            "{id} failed certification: {:?}",
            report.verdict
        );
        assert!(
            report.complete,
            "{id}: search truncated: {:?}",
            report.stats
        );
        assert!(
            report.stats.explored > 1,
            "{id}: degenerate search: {:?}",
            report.stats
        );
        assert_eq!(report.stats.truncated, 0, "{id}");
    }
}

/// The seeded violation scenario: two partitions per DC give one origin
/// two independent FIFO links, and the checker finds a schedule where the
/// eventually consistent baseline applies updates out of origin-timestamp
/// order. The counterexample replays bit-identically on a fresh cluster.
#[test]
fn counterexample_traces_replay_deterministically() {
    let sc = McScenario::violation_demo();
    let report = mc_run(SystemId::Eventual, &sc);
    let McVerdict::Violated {
        step,
        message,
        trace,
    } = report.verdict
    else {
        panic!("Eventual must violate causal order on the two-link demo");
    };
    assert!(message.contains("causal"), "{message}");
    assert!(!trace.choices.is_empty());
    for _ in 0..2 {
        let replay = mc_replay(SystemId::Eventual, &sc, &trace);
        let McVerdict::Violated {
            step: rstep,
            message: rmessage,
            trace: rtrace,
        } = replay.verdict
        else {
            panic!("replay must reproduce the violation");
        };
        assert_eq!(
            (rstep, rmessage, rtrace),
            (step, message.clone(), trace.clone())
        );
    }
}

/// Bounded-random walks are the escape hatch for deployments too large
/// to exhaust: a two-partition EunomiaKV config sampled over 64 seeded
/// schedules. No violation may surface, and the report must not claim
/// completeness for a sample.
#[test]
fn bounded_random_walks_cover_larger_configs() {
    let mut sc = McScenario::certify(SystemId::EunomiaKv)
        .named("random-walk")
        .randomized(64, 2024);
    sc.cfg.partitions_per_dc = 2;
    let report = mc_run(SystemId::EunomiaKv, &sc);
    assert!(report.verdict.is_certified(), "{:?}", report.verdict);
    assert!(!report.complete, "a random sample is never a certificate");
    assert!(report.stats.explored > 64, "{:?}", report.stats);
}

/// With a drop budget, lossy transport becomes part of the explored
/// schedule space: some schedule drops a replication message, and the
/// quiescence convergence predicate catches the update that never lands.
#[test]
fn a_dropped_replication_message_breaks_convergence() {
    let mut sc = McScenario::certify(SystemId::Eventual).named("drop-budget");
    sc.cfg.workload.read_pct = 0;
    sc.check_causal = false;
    sc.check_sessions = false;
    sc.options.max_drops = 1;
    let report = mc_run(SystemId::Eventual, &sc);
    let McVerdict::Violated { message, trace, .. } = report.verdict else {
        panic!("a drop budget must let the checker lose an update");
    };
    assert!(message.contains("convergence"), "{message}");
    // The lossy counterexample replays too.
    let replay = mc_replay(SystemId::Eventual, &sc, &trace);
    assert!(!replay.verdict.is_certified());
}

/// With a duplicate-delivery budget, at-least-once transport joins the
/// schedule space. Eventual's applies are last-writer-wins and therefore
/// idempotent, so every predicate still certifies.
#[test]
fn duplicate_deliveries_are_absorbed_by_idempotent_applies() {
    let mut sc = McScenario::certify(SystemId::Eventual).named("dup-budget");
    sc.options.max_dups = 1;
    let report = mc_run(SystemId::Eventual, &sc);
    assert!(
        report.verdict.is_certified(),
        "duplicate delivery broke Eventual: {:?}",
        report.verdict
    );
    assert!(report.complete, "truncated: {:?}", report.stats);
}
