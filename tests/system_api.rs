//! Contract tests for the unified `SystemId` + `Scenario` run API: name
//! round-trips, builder validation, and a deterministic smoke run of all
//! six systems under the small-test scenario.

use eunomia::sim::units;
use eunomia::{run, ClusterConfigBuilder, ConfigError, Scenario, SystemId};

#[test]
fn system_id_display_from_str_round_trips() {
    for id in SystemId::all() {
        let rendered = id.to_string();
        let parsed: SystemId = rendered.parse().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(parsed, id, "{rendered} did not round-trip");
        // Parsing is case-insensitive and separator-insensitive.
        assert_eq!(rendered.to_uppercase().parse::<SystemId>().unwrap(), id);
        assert_eq!(rendered.replace('-', "_").parse::<SystemId>().unwrap(), id);
    }
    assert_eq!(SystemId::all().len(), 6);
    assert!("not-a-system".parse::<SystemId>().is_err());
}

#[test]
fn builder_validation_rejects_bad_configs() {
    // warmup >= duration.
    let err = ClusterConfigBuilder::new()
        .duration(units::secs(5))
        .warmup(units::secs(5))
        .cooldown(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, ConfigError::WindowEmpty { .. }), "{err}");

    // Non-square RTT matrix.
    let err = ClusterConfigBuilder::new()
        .n_dcs(3)
        .rtt_matrix(Some(vec![vec![0, 1], vec![1, 0]]))
        .build()
        .unwrap_err();
    assert!(matches!(err, ConfigError::RttMatrixShape { .. }), "{err}");

    // replicas = 0.
    let err = ClusterConfigBuilder::new().replicas(0).build().unwrap_err();
    assert_eq!(err, ConfigError::Zero("replicas"));

    // Scenario construction enforces the same rules.
    let mut cfg = Scenario::small_test().cfg().clone();
    cfg.partitions_per_dc = 0;
    assert!(Scenario::custom("broken", cfg).is_err());
}

#[test]
fn every_system_smokes_deterministically_on_small_test() {
    let scenario = Scenario::small_test();
    for id in SystemId::all() {
        let a = run(id, &scenario);
        assert!(
            a.total_ops > 100,
            "{id} completed only {} ops on small-test",
            a.total_ops
        );
        assert_eq!(a.system, id.label());
        assert!(a.throughput > 0.0, "{id} reports zero throughput");
        let b = run(id, &scenario);
        assert_eq!(
            a.total_ops, b.total_ops,
            "{id} is not deterministic per seed"
        );
        if id.is_causal() {
            assert!(
                !a.metrics.visibility_extras(0, 1, 0, u64::MAX).is_empty(),
                "{id} recorded no remote visibility"
            );
        }
    }
}

#[test]
fn different_seeds_change_the_run() {
    let a = run(SystemId::EunomiaKv, &Scenario::small_test().seed(1));
    let b = run(SystemId::EunomiaKv, &Scenario::small_test().seed(2));
    assert_ne!(
        (a.total_ops, a.throughput.to_bits()),
        (b.total_ops, b.throughput.to_bits()),
        "seed must influence the run"
    );
}
