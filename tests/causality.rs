//! End-to-end causal-consistency verification of the full EunomiaKV
//! system running on the simulator.
//!
//! The apply log records every update landing at every datacenter (local
//! updates and remote applies). From it we verify, for every datacenter,
//! the two guarantees the receiver's FLUSH loop (Alg. 5) must provide:
//!
//! 1. **Per-origin order**: updates from a given remote datacenter are
//!    applied in their origin-timestamp order (no reordering within an
//!    origin's totally ordered stream).
//! 2. **Causal dependency coverage**: when an update from `k` is applied
//!    at `m`, for every other datacenter `d` the applied prefix of `d`'s
//!    stream already covers the update's dependency entry `vts[d]`.

use eunomia::sim::units;
use eunomia::{run, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;
use std::collections::HashMap;

fn run_logged(scenario: Scenario) -> Vec<eunomia::geo::metrics::ApplyRecord> {
    let scenario = scenario.with(|cfg| cfg.apply_log = true);
    run(SystemId::EunomiaKv, &scenario).metrics.apply_log()
}

fn check_causal_order(log: &[eunomia::geo::metrics::ApplyRecord], n_dcs: usize) {
    // Per destination, applied high-water timestamp per origin.
    let mut applied: HashMap<u16, Vec<u64>> = HashMap::new();
    let mut remote_applies = 0u64;
    for rec in log {
        let site = applied.entry(rec.dest).or_insert_with(|| vec![0; n_dcs]);
        if rec.origin == rec.dest {
            // Local update: per-partition monotonicity is checked in unit
            // tests; across partitions local timestamps interleave.
            site[rec.origin as usize] = site[rec.origin as usize].max(rec.ts);
            continue;
        }
        remote_applies += 1;
        // (1) Per-origin order: the receiver applies one origin's stream
        // in timestamp order (equal timestamps = concurrent updates from
        // different partitions of that origin; any order is fine).
        assert!(
            rec.ts >= site[rec.origin as usize],
            "dc{} applied origin dc{} out of order: ts {} after high-water {}",
            rec.dest,
            rec.origin,
            rec.ts,
            site[rec.origin as usize]
        );
        // (2) Dependencies: every other datacenter's entry must already be
        // covered by what this destination applied from that datacenter.
        for (d, &applied_d) in site.iter().enumerate().take(n_dcs) {
            if d == rec.dest as usize || d == rec.origin as usize {
                continue;
            }
            assert!(
                rec.vts[d] <= applied_d,
                "causality violation at dc{}: update from dc{} (ts {}) depends on \
                 dc{} up to {}, but only {} was applied",
                rec.dest,
                rec.origin,
                rec.ts,
                d,
                rec.vts[d],
                applied_d
            );
        }
        site[rec.origin as usize] = rec.ts;
    }
    assert!(
        remote_applies > 100,
        "too few remote applies to be meaningful: {remote_applies}"
    );
}

#[test]
fn eunomia_kv_is_causally_consistent() {
    let sc = Scenario::small_test().with(|cfg| cfg.duration = units::secs(8));
    let log = run_logged(sc);
    check_causal_order(&log, 2);
}

#[test]
fn eunomia_kv_is_causally_consistent_three_dcs_write_heavy() {
    let sc = Scenario::paper_three_dc()
        .workload(WorkloadConfig {
            keys: 500,
            read_pct: 50,
            value_size: 16,
            power_law: false,
            ..WorkloadConfig::default()
        })
        .with(|cfg| {
            cfg.duration = units::secs(8);
            cfg.warmup = units::secs(1);
            cfg.cooldown = 0;
        });
    let log = run_logged(sc);
    check_causal_order(&log, 3);
}

#[test]
fn eunomia_kv_stays_causal_under_clock_skew_and_straggler() {
    let sc = Scenario::paper_three_dc()
        .workload(WorkloadConfig {
            keys: 200,
            read_pct: 60,
            value_size: 16,
            power_law: true,
            ..WorkloadConfig::default()
        })
        .with(|cfg| {
            cfg.duration = units::secs(8);
            cfg.warmup = units::secs(1);
            cfg.cooldown = 0;
            cfg.clock_skew = units::ms(20);
            cfg.drift_ppm = 200.0;
            cfg.straggler = Some(eunomia::geo::config::StragglerConfig {
                dc: 1,
                partition: 0,
                from: units::secs(2),
                to: units::secs(5),
                interval: units::ms(200),
            });
        });
    let log = run_logged(sc);
    check_causal_order(&log, 3);
}

#[test]
fn pipelined_receiver_extension_preserves_causality() {
    let sc = Scenario::paper_three_dc()
        .workload(WorkloadConfig {
            keys: 300,
            read_pct: 50,
            value_size: 16,
            power_law: false,
            ..WorkloadConfig::default()
        })
        .with(|cfg| {
            cfg.duration = units::secs(6);
            cfg.warmup = units::secs(1);
            cfg.cooldown = 0;
            cfg.pipelined_receiver = true;
        });
    let log = run_logged(sc);
    check_causal_order(&log, 3);
}

#[test]
fn metadata_tree_preserves_causality_and_cuts_messages() {
    let direct = Scenario::paper_three_dc()
        .named("direct")
        .workload(WorkloadConfig {
            keys: 300,
            read_pct: 60,
            value_size: 16,
            power_law: false,
            ..WorkloadConfig::default()
        })
        .with(|cfg| {
            cfg.duration = units::secs(6);
            cfg.warmup = units::secs(1);
            cfg.cooldown = 0;
        });
    let tree = direct
        .clone()
        .named("tree")
        .with(|cfg| cfg.metadata_tree_arity = Some(2));

    let log = run_logged(tree.clone());
    check_causal_order(&log, 3);

    // The tree must shrink the message stream into the service.
    let r_direct = run(SystemId::EunomiaKv, &direct);
    let r_tree = run(SystemId::EunomiaKv, &tree);
    let (md, mt) = (
        r_direct.metrics.service_messages(),
        r_tree.metrics.service_messages(),
    );
    assert!(
        mt * 3 < md,
        "tree should cut service messages by ~the partition count: direct {md}, tree {mt}"
    );
    // And deliver the same operations overall.
    assert!(r_tree.metrics.completed_ops() > 1000);
}
