//! Same-seed determinism across the whole zoo: the refactored engine
//! (calendar queue, zero-alloc dispatch, direct delivery, windowed FIFO
//! link state, timer generations) must give byte-identical reports for
//! identical `(SystemId, Scenario, seed)` inputs — the safety net that lets the
//! hot path keep evolving without silently changing what is simulated.

use eunomia::{run, RunReport, Scenario, SystemId};

/// Every deterministic field of a report, bit-exact. `engine.wall_ns` is
/// real elapsed time and is deliberately excluded.
fn fingerprint(r: &RunReport, n_dcs: u16) -> impl PartialEq + std::fmt::Debug {
    let vis: Vec<Vec<u64>> = (0..n_dcs)
        .flat_map(|a| (0..n_dcs).map(move |b| (a, b)))
        .map(|(a, b)| r.metrics.visibility_extras(a, b, 0, u64::MAX))
        .collect();
    (
        r.system.clone(),
        r.throughput.to_bits(),
        r.total_ops,
        r.p50_latency_ms.to_bits(),
        r.p99_latency_ms.to_bits(),
        r.window,
        (
            r.engine.events,
            r.engine.messages_routed,
            r.engine.timers_set,
            r.engine.direct_deliveries,
            r.engine.messages_deferred,
            r.engine.retransmits,
            r.engine.heap_peak,
            r.engine.bucket_peak,
            r.engine.overflow_migrations,
            r.engine.arena_high_water,
        ),
        r.stale_reads,
        vis,
    )
}

#[test]
fn identical_runs_for_all_six_systems() {
    let scenario = Scenario::small_test().seed(1234);
    let n_dcs = scenario.cfg().n_dcs as u16;
    for id in SystemId::all() {
        let a = run(id, &scenario);
        let b = run(id, &scenario);
        assert!(a.total_ops > 0, "{id}: empty run proves nothing");
        assert_eq!(
            fingerprint(&a, n_dcs),
            fingerprint(&b, n_dcs),
            "{id}: same (system, scenario, seed) must reproduce bit-identically"
        );
    }
}

#[test]
fn identical_open_loop_runs_for_all_six_systems() {
    // Open-loop mode adds an arrival process, a backlog queue and the
    // LoadStats plumbing to every client; all of it must stay on the
    // deterministic path. The fingerprint is extended with the load
    // counters so a drift in the arrival machinery itself (not just its
    // downstream effects) is caught.
    use eunomia::{ArrivalSpec, OpenLoopConfig};
    let scenario = Scenario::small_test().seed(1234).with(|cfg| {
        cfg.open_loop = Some(OpenLoopConfig {
            arrivals: ArrivalSpec::Poisson { rate_hz: 200.0 },
            queue_limit: 16,
        });
    });
    let n_dcs = scenario.cfg().n_dcs as u16;
    let load_print = |r: &RunReport| {
        let l = r.load.as_ref().expect("open-loop run carries LoadStats");
        (
            l.offered,
            l.completed,
            l.dropped,
            l.queue_peak,
            l.latency.count(),
            l.queue_wait.count(),
        )
    };
    for id in SystemId::all() {
        let a = run(id, &scenario);
        let b = run(id, &scenario);
        assert!(a.total_ops > 0, "{id}: empty run proves nothing");
        assert!(load_print(&a).0 > 0, "{id}: no arrivals were offered");
        assert_eq!(
            fingerprint(&a, n_dcs),
            fingerprint(&b, n_dcs),
            "{id}: same-seed open-loop runs must reproduce bit-identically"
        );
        assert_eq!(
            load_print(&a),
            load_print(&b),
            "{id}: load counters drifted"
        );
    }
}

#[test]
fn identical_runs_on_a_huge_preset() {
    // The huge presets are where the calendar queue actually works for a
    // living: 24-DC fan-out keeps tens of thousands of far-future
    // arrivals in the overflow tier, so this cell certifies that epoch
    // rollover, overflow migration and the windowed FIFO link state all
    // sit on the deterministic path (the fingerprint includes
    // bucket_peak / overflow_migrations / arena_high_water). Trimmed to
    // 2.5 simulated seconds so the debug-mode suite stays fast; the
    // preset's topology and workload are untouched.
    let scenario = Scenario::huge_twenty_four_dc().seed(77).with(|cfg| {
        cfg.duration = eunomia::sim::units::ms(2500);
        cfg.warmup = eunomia::sim::units::ms(1000);
        cfg.cooldown = eunomia::sim::units::ms(500);
    });
    let n_dcs = scenario.cfg().n_dcs as u16;
    let a = run(SystemId::EunomiaKv, &scenario);
    let b = run(SystemId::EunomiaKv, &scenario);
    assert!(a.total_ops > 0, "empty run proves nothing");
    assert!(
        a.engine.overflow_migrations > 0,
        "a huge run must exercise the overflow tier, or this cell certifies nothing"
    );
    assert_eq!(
        fingerprint(&a, n_dcs),
        fingerprint(&b, n_dcs),
        "same-seed huge-24dc runs must reproduce bit-identically"
    );
}

#[test]
fn different_seeds_differ() {
    // Guards against the fingerprint being insensitive (e.g. everything
    // zero) — a different seed must actually change the trace.
    let a = run(SystemId::EunomiaKv, &Scenario::small_test().seed(1));
    let b = run(SystemId::EunomiaKv, &Scenario::small_test().seed(2));
    assert_ne!(
        (a.total_ops, a.engine.events),
        (b.total_ops, b.engine.events),
        "distinct seeds should produce distinct traces under jitter"
    );
}

#[test]
fn model_checking_is_deterministic() {
    // The MC search is replay-based DFS over a deterministic engine with
    // a pinned fingerprint hash, so for a fixed scenario every counter —
    // not just the verdict — must be bit-identical across runs. CI gates
    // on the explored-state counts (BENCH_mc.json); this is the property
    // that makes that gate meaningful.
    use eunomia::{mc_run, McScenario};
    for id in [SystemId::EunomiaKv, SystemId::Cure] {
        let sc = McScenario::certify(id);
        let a = mc_run(id, &sc);
        let b = mc_run(id, &sc);
        assert_eq!(a.stats, b.stats, "{id}: exploration counters drifted");
        assert_eq!(a.verdict, b.verdict, "{id}");
        assert!(a.verdict.is_certified(), "{id}: {:?}", a.verdict);
    }
    // A violating search must also reproduce its counterexample exactly
    // (same counters, same trace), or replay-based debugging is fiction.
    let sc = McScenario::violation_demo();
    let a = mc_run(SystemId::Eventual, &sc);
    let b = mc_run(SystemId::Eventual, &sc);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.verdict, b.verdict);
    assert!(!a.verdict.is_certified());
}

#[test]
fn engine_stats_are_populated_and_consistent() {
    let r = run(SystemId::EunomiaKv, &Scenario::small_test());
    let e = r.engine;
    assert!(e.events > 1_000, "events: {}", e.events);
    assert!(e.messages_routed > 1_000, "messages: {}", e.messages_routed);
    assert!(e.timers_set > 0);
    assert!(e.heap_peak > 0);
    assert!(e.wall_ns > 0, "wall time must be recorded");
    assert!(e.events_per_sec() > 0.0);
    assert!(
        e.direct_deliveries <= e.events,
        "direct deliveries ({}) are a subset of handler invocations ({})",
        e.direct_deliveries,
        e.events
    );
}
