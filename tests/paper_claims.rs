//! The paper's headline comparative claims, asserted as tests on scaled-
//! down runs. These check *shapes* (orderings, floors, factors), never
//! absolute numbers. All six systems run through the one
//! `run(SystemId, &Scenario)` entry point.

use eunomia::sim::units;
use eunomia::{run, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;

fn quick(seed: u64, read_pct: u8) -> Scenario {
    Scenario::paper_three_dc()
        .named(format!("quick-{seed}-{read_pct}"))
        .seed(seed)
        .workload(WorkloadConfig::paper(read_pct, false))
        .with(|cfg| {
            cfg.duration = units::secs(12);
            cfg.warmup = units::secs(2);
            cfg.cooldown = units::secs(1);
        })
}

/// §7.2.1: EunomiaKV's throughput is comparable to eventual consistency,
/// and both global-stabilization baselines sit clearly below, with Cure
/// below GentleRain.
#[test]
fn throughput_ordering_matches_figure5() {
    let sc = quick(1, 90);
    let ev = run(SystemId::Eventual, &sc);
    let eu = run(SystemId::EunomiaKv, &sc);
    let gr = run(SystemId::GentleRain, &sc);
    let cu = run(SystemId::Cure, &sc);
    assert!(
        eu.throughput > 0.90 * ev.throughput,
        "EunomiaKV must track eventual: {} vs {}",
        eu.throughput,
        ev.throughput
    );
    assert!(
        gr.throughput < 0.97 * eu.throughput,
        "GentleRain must pay for global stabilization: {} vs {}",
        gr.throughput,
        eu.throughput
    );
    assert!(
        cu.throughput < gr.throughput,
        "Cure's vectors must cost more than GentleRain's scalar: {} vs {}",
        cu.throughput,
        gr.throughput
    );
}

/// §7.2.2 / Fig. 6 left: visibility extra delay ordering at the 40 ms
/// pair, including GentleRain's ~40 ms floor (the farthest-DC penalty of
/// the scalar).
#[test]
fn visibility_ordering_matches_figure6() {
    let sc = quick(2, 90);
    let eu = run(SystemId::EunomiaKv, &sc);
    let gr = run(SystemId::GentleRain, &sc);
    let cu = run(SystemId::Cure, &sc);
    let p90 = |r: &eunomia::RunReport| {
        r.visibility_percentile_ms(0, 1, 90.0)
            .expect("visibility samples")
    };
    let (e, g, c) = (p90(&eu), p90(&gr), p90(&cu));
    assert!(
        e < c && c < g,
        "expected EunomiaKV < Cure < GentleRain, got {e} < {c} < {g}"
    );
    assert!(e < 15.0, "EunomiaKV p90 extra should be ~ms-scale, got {e}");
    let g_min = gr.visibility_percentile_ms(0, 1, 1.0).unwrap();
    assert!(
        g_min > 35.0,
        "GentleRain cannot beat the farthest-DC latency gap (~40 ms), got min {g_min}"
    );
}

/// §2 / Fig. 1: the synchronous sequencer costs throughput; the same work
/// done off the critical path (A-Seq) costs almost nothing.
#[test]
fn sequencer_penalty_matches_figure1() {
    let sc = quick(3, 50);
    let ev = run(SystemId::Eventual, &sc);
    let ss = run(SystemId::SSeq, &sc);
    let aa = run(SystemId::ASeq, &sc);
    let s_pen = 1.0 - ss.throughput / ev.throughput;
    let a_pen = 1.0 - aa.throughput / ev.throughput;
    assert!(s_pen > 0.05, "S-Seq penalty too small: {s_pen}");
    assert!(
        a_pen < s_pen / 2.0,
        "A-Seq must recover most of the penalty: {a_pen} vs {s_pen}"
    );
    // And sequencer visibility is near-optimal (trivial dependency check).
    let p90 = ss.visibility_percentile_ms(0, 1, 90.0).unwrap();
    assert!(
        p90 < 10.0,
        "S-Seq visibility should be near-optimal, got {p90} ms"
    );
}

/// §7.2.3 / Fig. 7: a straggler delays visibility of its datacenter's
/// updates by roughly the straggling interval, and healing restores it.
#[test]
fn straggler_shifts_visibility_by_the_interval() {
    let sc = quick(4, 75).with(|cfg| {
        cfg.duration = units::secs(15);
        cfg.straggler = Some(eunomia::geo::config::StragglerConfig {
            dc: 2,
            partition: 0,
            from: units::secs(5),
            to: units::secs(10),
            interval: units::ms(100),
        });
    });
    let r = run(SystemId::EunomiaKv, &sc);
    let healthy = r
        .metrics
        .visibility_extras(2, 1, units::secs(1), units::secs(5));
    let strangled = r
        .metrics
        .visibility_extras(2, 1, units::secs(6), units::secs(10));
    let healed = r
        .metrics
        .visibility_extras(2, 1, units::secs(12), units::secs(15));
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64 / 1e6;
    assert!(
        mean(&strangled) > 50.0,
        "straggling mean {} ms too low",
        mean(&strangled)
    );
    assert!(
        mean(&healthy) < 15.0,
        "healthy mean {} ms too high",
        mean(&healthy)
    );
    assert!(
        mean(&healed) < 15.0,
        "healed mean {} ms too high",
        mean(&healed)
    );
}

/// Determinism across the whole zoo: identical seeds, identical results.
#[test]
fn all_systems_are_deterministic() {
    let sc = quick(5, 75);
    for id in [SystemId::EunomiaKv, SystemId::GentleRain, SystemId::SSeq] {
        let a = run(id, &sc);
        let b = run(id, &sc);
        assert_eq!(a.total_ops, b.total_ops, "{id} not deterministic");
    }
}
