//! Fault-tolerant Eunomia under replica crashes, on the simulator.
//!
//! A 3-replica Eunomia service loses its leader mid-run: the Ω elector
//! promotes the next replica, partitions keep feeding everyone, and the
//! update stream keeps stabilizing — with no causality violation and no
//! update lost or duplicated across the fail-over. Crashes are part of
//! the scenario (`cfg.crashes`), so the whole test drives the unified
//! `run(SystemId, &Scenario)` entry point.

use eunomia::sim::units;
use eunomia::{run, ReplicaCrash, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;
use std::collections::HashMap;

fn crash_scenario(crash: ReplicaCrash) -> Scenario {
    Scenario::paper_three_dc()
        .named("replica-crash")
        .workload(WorkloadConfig {
            keys: 300,
            read_pct: 70,
            value_size: 16,
            power_law: false,
            ..WorkloadConfig::default()
        })
        .with(move |cfg| {
            cfg.duration = units::secs(12);
            cfg.warmup = units::secs(2);
            cfg.cooldown = units::secs(1);
            cfg.replicas = 3;
            cfg.omega_interval = units::ms(5);
            cfg.omega_timeout = units::ms(25);
            cfg.crashes = vec![crash];
        })
}

#[test]
fn leader_crash_does_not_stop_stabilization() {
    // Crash dc0's replica 0 (initial leader) at t = 4 s.
    let sc = crash_scenario(ReplicaCrash {
        dc: 0,
        replica: 0,
        at: units::secs(4),
    });
    let report = run(SystemId::EunomiaKv, &sc);

    // dc0-origin updates keep becoming visible at dc1 well after the crash.
    let before = report
        .metrics
        .visibility_extras(0, 1, 0, units::secs(4))
        .len();
    let after = report
        .metrics
        .visibility_extras(0, 1, units::secs(6), units::secs(12))
        .len();
    assert!(before > 50, "no pre-crash visibility? {before}");
    assert!(
        after > 50,
        "stabilization did not survive the leader crash: {after}"
    );
}

#[test]
fn failover_neither_loses_nor_duplicates_updates() {
    let sc = crash_scenario(ReplicaCrash {
        dc: 0,
        replica: 0,
        at: units::secs(2),
    })
    .with(|cfg| {
        cfg.ops_per_client = Some(250);
        cfg.duration = units::secs(25);
        cfg.apply_log = true;
    });
    let n_dcs = sc.cfg().n_dcs;
    let log = run(SystemId::EunomiaKv, &sc).metrics.apply_log();

    // Exactly-once landing per destination for every update.
    let mut count: HashMap<(u16, u64, u64, u16), u32> = HashMap::new();
    for rec in &log {
        *count
            .entry((rec.origin, rec.ts, rec.key, rec.dest))
            .or_insert(0) += 1;
    }
    for ((origin, ts, key, dest), c) in &count {
        assert_eq!(
            *c, 1,
            "update (dc{origin}, ts {ts}, key {key}) landed {c} times at dc{dest}"
        );
    }
    // And every update reached all DCs (nothing lost in fail-over).
    let mut reach: HashMap<(u16, u64, u64), u32> = HashMap::new();
    for rec in &log {
        *reach.entry((rec.origin, rec.ts, rec.key)).or_insert(0) += 1;
    }
    for ((origin, ts, key), c) in &reach {
        assert_eq!(
            *c as usize, n_dcs,
            "update (dc{origin}, ts {ts}, key {key}) reached {c} of {n_dcs} DCs"
        );
    }
}

#[test]
fn crash_of_a_follower_is_invisible() {
    // Crash dc0's replica 2 (a follower) early.
    let sc = crash_scenario(ReplicaCrash {
        dc: 0,
        replica: 2,
        at: units::secs(2),
    });
    let report = run(SystemId::EunomiaKv, &sc);
    let after = report
        .metrics
        .visibility_extras(0, 1, units::secs(3), units::secs(12));
    assert!(
        after.len() > 100,
        "follower crash must not stall stabilization"
    );
    // Visibility stays in the healthy few-ms range.
    let p90 = eunomia::stats::exact_percentile(&after, 90.0).unwrap();
    assert!(
        p90 < units::ms(50),
        "visibility degraded after follower crash: p90 = {} ms",
        eunomia::sim::units::to_ms(p90)
    );
}
