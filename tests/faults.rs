//! Fault-injection subsystem, end to end: every system runs every fault
//! preset bit-identically for a fixed seed, causal systems stay causal
//! while datacenters are partitioned, and the whole zoo converges after
//! the last heal. A property test sweeps random partition/heal schedules.

use eunomia::sim::units;
use eunomia::{run, RunReport, Scenario, SystemId};
use eunomia_geo::FaultEvent;
use proptest::prelude::*;
use std::collections::HashMap;

/// The fault presets shrunk for test budgets: shorter runs (fault
/// windows scale with them) and fewer processes per datacenter.
fn shrunk_presets(secs: u64) -> Vec<Scenario> {
    Scenario::fault_presets(secs)
        .into_iter()
        .map(|s| {
            s.with(|c| {
                c.partitions_per_dc = 2;
                c.clients_per_dc = 2;
            })
        })
        .collect()
}

/// Every deterministic field of a report, bit-exact — including the new
/// fault counters. `engine.wall_ns` is real time and excluded.
fn fingerprint(r: &RunReport) -> impl PartialEq + std::fmt::Debug {
    let n_dcs = r.n_dcs as u16;
    let vis: Vec<Vec<u64>> = (0..n_dcs)
        .flat_map(|a| (0..n_dcs).map(move |b| (a, b)))
        .map(|(a, b)| r.metrics.visibility_extras(a, b, 0, u64::MAX))
        .collect();
    (
        r.system.clone(),
        r.throughput.to_bits(),
        r.total_ops,
        r.stale_reads,
        r.window,
        (
            r.engine.events,
            r.engine.messages_routed,
            r.engine.timers_set,
            r.engine.messages_deferred,
            r.engine.retransmits,
        ),
        vis,
    )
}

#[test]
fn every_system_is_deterministic_and_converges_under_every_fault_preset() {
    for preset in shrunk_presets(8) {
        for id in SystemId::all() {
            let a = run(id, &preset);
            let b = run(id, &preset);
            assert!(
                a.total_ops > 500,
                "{id} x {}: too few ops to mean anything ({})",
                preset.name(),
                a.total_ops
            );
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{id} x {}: same (system, scenario, seed) must reproduce bit-identically",
                preset.name()
            );
            let hc = a.heal_convergence().unwrap_or_else(|| {
                panic!(
                    "{id} x {}: convergence must be measurable (heal + apply log)",
                    preset.name()
                )
            });
            assert!(hc.pre_heal_updates > 50, "{id} x {}", preset.name());
            assert_eq!(
                hc.unconverged,
                0,
                "{id} x {}: {} of {} pre-heal updates never reached every DC",
                preset.name(),
                hc.unconverged,
                hc.pre_heal_updates
            );
        }
    }
}

/// The causal check of `tests/causality.rs`, applied under partitions:
/// per-origin timestamp order and dependency coverage must hold at every
/// datacenter even while (and after) links are cut.
fn check_causal_order(log: &[eunomia::geo::metrics::ApplyRecord], n_dcs: usize) {
    let mut applied: HashMap<u16, Vec<u64>> = HashMap::new();
    let mut remote_applies = 0u64;
    for rec in log {
        let site = applied.entry(rec.dest).or_insert_with(|| vec![0; n_dcs]);
        if rec.origin == rec.dest {
            site[rec.origin as usize] = site[rec.origin as usize].max(rec.ts);
            continue;
        }
        remote_applies += 1;
        assert!(
            rec.ts >= site[rec.origin as usize],
            "dc{} applied origin dc{} out of order under faults",
            rec.dest,
            rec.origin
        );
        for (d, &applied_d) in site.iter().enumerate().take(n_dcs) {
            if d == rec.dest as usize || d == rec.origin as usize {
                continue;
            }
            assert!(
                rec.vts[d] <= applied_d,
                "causality violation at dc{} during faults: update from dc{} \
                 depends on dc{} up to {}, but only {} was applied",
                rec.dest,
                rec.origin,
                d,
                rec.vts[d],
                applied_d
            );
        }
        site[rec.origin as usize] = rec.ts;
    }
    assert!(
        remote_applies > 100,
        "too few remote applies to be meaningful: {remote_applies}"
    );
}

#[test]
fn eunomia_kv_stays_causal_across_partitions_and_gray_links() {
    for preset in shrunk_presets(8) {
        let report = run(SystemId::EunomiaKv, &preset);
        check_causal_order(&report.metrics.apply_log(), report.n_dcs);
    }
}

#[test]
fn partition_inflates_staleness_and_visibility_then_heals() {
    let preset = Scenario::partitioned_three_dc(10).with(|c| {
        c.partitions_per_dc = 2;
        c.clients_per_dc = 2;
    });
    let faulted = run(SystemId::EunomiaKv, &preset);
    // The same deployment with the schedule removed, as the control.
    let control = run(
        SystemId::EunomiaKv,
        &preset.clone().named("control").with(|c| c.faults.clear()),
    );
    assert!(faulted.engine.messages_deferred > 0, "partition engaged");
    assert_eq!(control.engine.messages_deferred, 0);
    assert!(
        faulted.stale_reads > control.stale_reads,
        "a 2.1s partition must inflate staleness exposure: faulted {} vs control {}",
        faulted.stale_reads,
        control.stale_reads
    );
    // Visibility across the cut pair spikes to partition-order delays…
    let worst = faulted
        .metrics
        .visibility_extras(0, 1, 0, u64::MAX)
        .into_iter()
        .max()
        .unwrap_or(0);
    assert!(
        worst > units::secs(1),
        "backlogged dc0->dc1 updates should wait out most of the partition, got {worst} ns"
    );
    // …and the time series shows buckets far above fault-free operation
    // (bucket means are diluted by the post-heal fresh samples, so the
    // threshold is far below the worst single sample but far above the
    // sub-10ms fault-free extras).
    let series = faulted.visibility_series_ms(0, 1, units::secs(1));
    let peak = series.iter().map(|(_, ms)| *ms).fold(0.0, f64::max);
    assert!(peak > 100.0, "series peak {peak} ms");
    // Local throughput survives: the run still completes plenty of ops.
    assert!(faulted.total_ops as f64 > control.total_ops as f64 * 0.8);
    assert!(faulted.convergence_after_heal_ms().is_some());
}

#[test]
fn control_run_without_faults_reports_no_fault_metrics() {
    let report = run(SystemId::EunomiaKv, &Scenario::small_test());
    assert_eq!(report.last_heal, None);
    assert_eq!(report.engine.messages_deferred, 0);
    assert_eq!(report.engine.retransmits, 0);
    assert_eq!(report.stale_reads, 0, "tracking is off by default");
    assert!(report.heal_convergence().is_none());
    assert!(report.convergence_after_heal_ms().is_none());
    assert_eq!(report.availability.unhealed_partitions, 0);
    assert!(report.unavailable_ms().iter().all(|&ms| ms == 0.0));
    assert_eq!(report.dc_availability(), vec![1.0; report.n_dcs]);
}

/// A partition that never heals (split-brain until the end of the run):
/// convergence-after-heal is rightly unmeasurable, and instead the report
/// accounts the cut — per-DC unavailable time and the unhealed count.
#[test]
fn unhealed_partition_reports_availability_instead_of_convergence() {
    let secs = 8u64;
    let d = units::secs(secs);
    let sc = Scenario::partitioned_three_dc(secs)
        .named("split-brain")
        .with(|c| {
            c.partitions_per_dc = 2;
            c.clients_per_dc = 2;
            c.faults = vec![FaultEvent::Partition {
                a: 0,
                b: 1,
                from: d / 2,
                to: d, // never heals
            }];
        });
    let report = run(SystemId::EunomiaKv, &sc);
    assert!(report.total_ops > 500, "both sides keep serving");
    assert_eq!(report.last_heal, None, "no heal inside the run");
    assert!(
        report.heal_convergence().is_none(),
        "convergence-after-heal undefined without a heal"
    );
    assert_eq!(report.availability.unhealed_partitions, 1);
    // dc0 and dc1 each lose the second half of the run; dc2 stays whole.
    let half_ms = units::to_ms(d / 2);
    let unavailable = report.unavailable_ms();
    assert!((unavailable[0] - half_ms).abs() < 1e-6);
    assert!((unavailable[1] - half_ms).abs() < 1e-6);
    assert_eq!(unavailable[2], 0.0);
    let av = report.dc_availability();
    assert!((av[0] - 0.5).abs() < 1e-9, "{av:?}");
    assert_eq!(av[2], 1.0);
    // The cut really was in force: traffic between the pair deferred and
    // never delivered before the end.
    assert!(report.engine.messages_deferred > 0);
}

/// Per-client session guarantees under partition/heal faults: every
/// client's reads observe non-decreasing LWW ranks per key (monotonic
/// reads), and reads after the client's own write to a key never observe
/// a rank below that write (read-your-writes). Ranks are
/// `(vts[origin], origin)` — exactly the order the store arbitrates
/// conflicting versions by.
#[test]
fn sessions_keep_ryw_and_monotonic_reads_under_partition_faults() {
    for preset in [
        Scenario::partitioned_three_dc(8),
        Scenario::flapping_links(8),
    ] {
        let sc = preset.with(|c| {
            c.partitions_per_dc = 2;
            c.clients_per_dc = 2;
            c.track_sessions = true;
        });
        let report = run(SystemId::EunomiaKv, &sc);
        let log = report.metrics.session_log();
        assert!(
            log.len() as u64 == report.total_ops,
            "{}: every completed op must be in the session log ({} vs {})",
            sc.name(),
            log.len(),
            report.total_ops
        );
        // Per client, per key: last read rank and last own-write rank.
        let mut last_read: HashMap<(u32, u64), (u64, u16)> = HashMap::new();
        let mut own_write: HashMap<(u32, u64), (u64, u16)> = HashMap::new();
        let mut reads_checked = 0u64;
        for rec in &log {
            let rank = rec.rank();
            if rec.is_update {
                own_write.insert((rec.client, rec.key), rank);
                continue;
            }
            reads_checked += 1;
            if let Some(&prev) = last_read.get(&(rec.client, rec.key)) {
                assert!(
                    rank >= prev,
                    "{}: monotonic reads violated: client {} key {} saw rank {rank:?} \
                     after {prev:?}",
                    sc.name(),
                    rec.client,
                    rec.key
                );
            }
            if let Some(&w) = own_write.get(&(rec.client, rec.key)) {
                assert!(
                    rank >= w,
                    "{}: read-your-writes violated: client {} key {} read rank {rank:?} \
                     below its own write {w:?}",
                    sc.name(),
                    rec.client,
                    rec.key
                );
            }
            last_read.insert((rec.client, rec.key), rank);
        }
        assert!(
            reads_checked > 1_000,
            "{}: too few reads to be meaningful: {reads_checked}",
            sc.name()
        );
    }
}

proptest! {
    /// Any random schedule of dc0–dc1 partitions (possibly overlapping)
    /// that heals before the run ends leaves EunomiaKV deterministic and
    /// fully converged. The workload is read-heavy (like the fault
    /// presets): the faithful one-APPLY-in-flight receiver drains about
    /// 1k applies/s — against an update-heavy closed loop a long
    /// partition's backlog cannot drain in any fixed tail, which would
    /// test receiver capacity, not fault correctness.
    #[test]
    fn random_partition_schedules_converge(
        seed in 0u64..1_000,
        windows in proptest::collection::vec((1u64..4, 1u64..3), 1..4),
    ) {
        let sc = Scenario::small_test()
            .named("random-partitions")
            .seed(seed)
            .with(|c| {
                c.duration = units::secs(7);
                c.warmup = units::secs(1);
                c.cooldown = units::secs(1);
                c.apply_log = true;
                c.workload.read_pct = 85;
                c.faults = windows
                    .iter()
                    .map(|&(start, len)| FaultEvent::Partition {
                        a: 0,
                        b: 1,
                        from: units::secs(start),
                        to: units::secs(start + len),
                    })
                    .collect();
            });
        let a = run(SystemId::EunomiaKv, &sc);
        prop_assert!(a.total_ops > 500);
        prop_assert!(a.last_heal.is_some(), "all windows heal inside the run");
        let hc = a.heal_convergence().expect("measurable");
        prop_assert_eq!(hc.unconverged, 0, "{} pre-heal updates lost", hc.unconverged);
        let b = run(SystemId::EunomiaKv, &sc);
        prop_assert_eq!(
            (a.total_ops, a.engine.events, a.engine.messages_deferred),
            (b.total_ops, b.engine.events, b.engine.messages_deferred),
            "same seed, same schedule, same trace"
        );
    }
}
