//! Coordinated-omission regression: the reason the open-loop mode
//! exists.
//!
//! A closed-loop client that hits a stalled server simply *stops
//! issuing*: the stall is recorded once, the requests that would have
//! arrived during it are never measured, and the p99 stays rosy. An
//! open-loop client keeps stamping intended arrivals through the stall,
//! so every op queued behind it is measured from when it *should* have
//! run. Same system, same fault, wildly different tails — and only the
//! open-loop tail is honest.
//!
//! The scenario drives S-Seq (synchronous sequencer in the update
//! critical path) with a straggler partition that defers every sequencer
//! request by 1.2 s during the middle of the run.

use eunomia::{run, ArrivalSpec, OpenLoopConfig, Scenario, SystemId};
use eunomia_geo::config::StragglerConfig;
use eunomia_sim::units;

/// A 12 s small-test deployment whose dc1/partition0 straggles (1.2 s
/// sequencer deferral) between t=4 s and t=8 s, inside the measurement
/// window. Update-heavy so the stalls are frequent.
fn straggler_scenario(name: &str) -> Scenario {
    Scenario::small_test()
        .seconds(12)
        .seed(7)
        .named(name)
        .with(|cfg| {
            cfg.workload.read_pct = 50;
            cfg.straggler = Some(StragglerConfig {
                dc: 1,
                partition: 0,
                from: units::secs(4),
                to: units::secs(8),
                interval: units::ms(1200),
            });
        })
}

#[test]
fn open_loop_p99_sees_the_stall_closed_loop_hides() {
    let closed = run(SystemId::SSeq, &straggler_scenario("co-closed"));

    let open_scenario = straggler_scenario("co-open").with(|cfg| {
        cfg.open_loop = Some(OpenLoopConfig {
            arrivals: ArrivalSpec::Poisson { rate_hz: 300.0 },
            queue_limit: 256,
        });
    });
    let open = run(SystemId::SSeq, &open_scenario);

    assert!(closed.total_ops > 1_000, "closed run too small to compare");
    assert!(open.total_ops > 1_000, "open run too small to compare");

    // The closed loop issued *around* the stall: its p99 stays near the
    // fast path, far below the 1.2 s deferral it supposedly measured.
    assert!(
        closed.p99_latency_ms < 120.0,
        "closed-loop p99 ({:.1} ms) unexpectedly reflects the stall — \
         the omission this test guards against has disappeared",
        closed.p99_latency_ms
    );

    // The open loop measured from intended arrival: the ops queued
    // behind each 1.2 s stall push the p99 toward the stall itself.
    assert!(
        open.p99_latency_ms > 10.0 * closed.p99_latency_ms,
        "open-loop p99 ({:.1} ms) should dwarf closed-loop p99 ({:.1} ms)",
        open.p99_latency_ms,
        closed.p99_latency_ms
    );
    assert!(
        open.p99_latency_ms > 200.0,
        "open-loop p99 ({:.1} ms) should approach the 1200 ms stall",
        open.p99_latency_ms
    );

    // And the queueing shows up where it should: in the load stats.
    let load = open.load.as_ref().expect("open-loop run carries LoadStats");
    let wait_p99 = load.queue_wait.percentiles(&[99.0])[0].unwrap_or(0);
    assert!(
        units::to_ms(wait_p99) > 100.0,
        "queue-wait p99 ({:.1} ms) should reflect arrivals parked behind the stall",
        units::to_ms(wait_p99)
    );
}
