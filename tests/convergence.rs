//! Convergence: with a bounded workload and time to quiesce, every update
//! reaches every datacenter, so last-writer-wins leaves all replicas of
//! the key space identical (the determinism of the LWW rank itself is
//! unit-tested in `eunomia-kv`).

use eunomia::sim::units;
use eunomia::{run, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;
use std::collections::{HashMap, HashSet};

#[test]
fn every_update_reaches_every_datacenter() {
    let sc = Scenario::paper_three_dc()
        .workload(WorkloadConfig {
            keys: 200,
            read_pct: 50,
            value_size: 16,
            power_law: false,
            ..WorkloadConfig::default()
        })
        .with(|cfg| {
            cfg.duration = units::secs(30);
            cfg.ops_per_client = Some(300);
            cfg.apply_log = true;
        });
    let n_dcs = sc.cfg().n_dcs;
    // Clients stop after their budget; the rest of the run drains
    // replication queues.
    let log = run(SystemId::EunomiaKv, &sc).metrics.apply_log();

    // Every (origin, ts, key) triple — a unique update — must land at
    // every DC. (Updates from different partitions of one origin can share
    // a timestamp, but then they touch different keys.)
    let mut seen: HashMap<(u16, u64, u64), HashSet<u16>> = HashMap::new();
    for rec in &log {
        seen.entry((rec.origin, rec.ts, rec.key))
            .or_default()
            .insert(rec.dest);
    }
    assert!(!seen.is_empty());
    let mut missing = 0usize;
    for ((origin, ts, _key), dests) in &seen {
        if dests.len() != n_dcs {
            missing += 1;
            assert!(
                missing < 5,
                "update (dc{origin}, ts {ts}) reached only {dests:?} of {n_dcs} DCs"
            );
        }
    }
    assert_eq!(
        missing, 0,
        "{missing} updates failed to reach all datacenters"
    );

    // Final LWW winner per key must be identical at every destination:
    // compute winner per (key, dest) and compare across dests.
    let mut winner: HashMap<(u16, u64), (u64, u16)> = HashMap::new();
    for rec in &log {
        let slot = winner.entry((rec.dest, rec.key)).or_insert((0, 0));
        let rank = (rec.ts, rec.origin);
        if rank > *slot {
            *slot = rank;
        }
    }
    let keys: HashSet<u64> = winner.keys().map(|(_, k)| *k).collect();
    for key in keys {
        let w0 = winner.get(&(0, key));
        for dc in 1..n_dcs as u16 {
            assert_eq!(
                w0,
                winner.get(&(dc, key)),
                "LWW winner for key {key} differs between dc0 and dc{dc}"
            );
        }
    }
}

#[test]
fn eventual_baseline_also_converges() {
    let sc = Scenario::small_test().with(|cfg| {
        cfg.duration = units::secs(20);
        cfg.ops_per_client = Some(200);
        cfg.apply_log = true;
    });
    let n_dcs = sc.cfg().n_dcs;
    let log = run(SystemId::Eventual, &sc).metrics.apply_log();
    let mut seen: HashMap<(u16, u64, u64), HashSet<u16>> = HashMap::new();
    for rec in &log {
        seen.entry((rec.origin, rec.ts, rec.key))
            .or_default()
            .insert(rec.dest);
    }
    assert!(!seen.is_empty());
    for ((origin, ts, _key), dests) in &seen {
        assert_eq!(
            dests.len(),
            n_dcs,
            "update (dc{origin}, ts {ts}) reached only {dests:?}"
        );
    }
}
