//! Partial replication (the paper's §8 future work, Practi-style): each
//! key is stored at only `rf` of the `M` datacenters. The §5 separation
//! of data and metadata makes this nearly free to add — Eunomia's ordered
//! *metadata* stream still reaches every datacenter (receivers advance
//! `SiteTime` with metadata-only applies for keys they do not store), so
//! causal dependency checking is untouched while the *data* path ships
//! each update to its replica set only.
//!
//! Run with: `cargo run --release --example partial_replication`

use eunomia::kv::ring;
use eunomia::kv::Key;
use eunomia::sim::units;
use eunomia::{run, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;

fn run_rf(rf: Option<usize>) -> (f64, f64) {
    let scenario = Scenario::partial_replication(rf.unwrap_or(3))
        .expect("rf within 1..=3")
        .named(match rf {
            None => "full".to_string(),
            Some(rf) => format!("partial-rf{rf}"),
        })
        .with(|c| {
            c.replication_factor = rf;
            c.duration = units::secs(25);
            c.ops_per_client = Some(200);
            c.workload = WorkloadConfig {
                keys: 1_000,
                read_pct: 60,
                value_size: 100,
                power_law: false,
                ..WorkloadConfig::default()
            };
        });
    let report = run(SystemId::EunomiaKv, &scenario);
    let log = report.metrics.apply_log();
    let local = log.iter().filter(|r| r.origin == r.dest).count() as f64;
    let remote = log.iter().filter(|r| r.origin != r.dest).count() as f64;
    (remote / local, remote * 100.0 / 1e6) // landings per update, MB shipped (100B values)
}

fn main() {
    println!(
        "key 7's replica set at rf=2 of 3 DCs: {:?}",
        ring::replica_set(Key(7), 3, 2)
    );
    println!(
        "key 8's replica set at rf=2 of 3 DCs: {:?}\n",
        ring::replica_set(Key(8), 3, 2)
    );

    println!("same bounded workload, full vs partial replication:");
    let (full_landings, full_mb) = run_rf(None);
    let (part_landings, part_mb) = run_rf(Some(2));
    println!("  full (rf=3):    {full_landings:.2} remote data landings per update (~{full_mb:.2} MB shipped)");
    println!("  partial (rf=2): {part_landings:.2} remote data landings per update (~{part_mb:.2} MB shipped)");
    println!(
        "\ndata-path traffic drops ~{:.0}% while the metadata stream (and with it\n\
         causal ordering) still reaches every datacenter — the Practi idea the\n\
         paper's §5 data/metadata separation was built to enable.",
        (1.0 - part_landings / full_landings) * 100.0
    );
}
