//! Side-by-side comparison of every system in the workspace on one
//! workload: the two axes the paper trades off — throughput vs eventual
//! consistency, and remote-update visibility.
//!
//! Run with: `cargo run --release --example compare_systems`

use eunomia::baselines::{run_baseline, BaselineKind};
use eunomia::geo::{run_system, ClusterConfig, SystemKind};
use eunomia::sim::units;
use eunomia_workload::WorkloadConfig;

fn cfg() -> ClusterConfig {
    let mut c = ClusterConfig::default();
    c.duration = units::secs(15);
    c.warmup = units::secs(3);
    c.cooldown = units::secs(1);
    c.workload = WorkloadConfig::paper(90, false);
    c
}

fn main() {
    println!("3 DCs (80/80/160 ms RTT), 90:10 uniform, 15 s sim each...\n");
    let eventual = run_system(SystemKind::Eventual, cfg());
    let reports = vec![
        run_system(SystemKind::EunomiaKv, cfg()),
        run_baseline(BaselineKind::GentleRain, cfg()),
        run_baseline(BaselineKind::Cure, cfg()),
        run_baseline(BaselineKind::SSeq, cfg()),
        run_baseline(BaselineKind::ASeq, cfg()),
    ];

    println!(
        "{:<12} {:>9} {:>10} {:>14} {:>16}",
        "system", "ops/s", "vs event.", "op p99 (ms)", "vis p90 (ms)"
    );
    println!("{:-<65}", "");
    println!(
        "{:<12} {:>9.0} {:>10} {:>14.2} {:>16}",
        eventual.system, eventual.throughput, "-", eventual.p99_latency_ms, "n/a (no causality)"
    );
    for r in &reports {
        let delta = (r.throughput / eventual.throughput - 1.0) * 100.0;
        let vis = r
            .visibility_percentile_ms(0, 1, 90.0)
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<12} {:>9.0} {:>9.1}% {:>14.2} {:>16}",
            r.system, r.throughput, delta, r.p99_latency_ms, vis
        );
    }

    println!("\nreading the table:");
    println!("  EunomiaKV ~ eventual throughput AND ms-scale visibility — the paper's point;");
    println!("  GentleRain/Cure trade one for the other; S-Seq pays throughput for visibility;");
    println!("  A-Seq shows the sequencer's cost is exactly its synchronous round trip.");
}
