//! Side-by-side comparison of every system in the workspace on one
//! workload: the two axes the paper trades off — throughput vs eventual
//! consistency, and remote-update visibility. `for s in SystemId::all()`
//! drives the whole zoo through the one `run` entry point.
//!
//! Run with: `cargo run --release --example compare_systems`

use eunomia::{run, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;

fn main() {
    let scenario = Scenario::paper_three_dc()
        .seconds(15)
        .workload(WorkloadConfig::paper(90, false))
        .with(|c| {
            c.warmup = eunomia::sim::units::secs(3);
            c.cooldown = eunomia::sim::units::secs(1);
        });
    println!("3 DCs (80/80/160 ms RTT), 90:10 uniform, 15 s sim each...\n");

    let mut reports = Vec::new();
    for s in SystemId::all() {
        reports.push((s, run(s, &scenario)));
    }
    let eventual_tput = reports
        .iter()
        .find(|(s, _)| *s == SystemId::Eventual)
        .map(|(_, r)| r.throughput)
        .expect("Eventual is in all()");

    println!(
        "{:<12} {:>9} {:>10} {:>14} {:>18}",
        "system", "ops/s", "vs event.", "op p99 (ms)", "vis p90 (ms)"
    );
    println!("{:-<68}", "");
    for (s, r) in &reports {
        let delta = if *s == SystemId::Eventual {
            "-".to_string()
        } else {
            format!("{:+.1}%", (r.throughput / eventual_tput - 1.0) * 100.0)
        };
        let vis = if s.is_causal() {
            r.visibility_percentile_ms(0, 1, 90.0)
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into())
        } else {
            "n/a (no causality)".to_string()
        };
        println!(
            "{:<12} {:>9.0} {:>10} {:>14.2} {:>18}",
            r.system, r.throughput, delta, r.p99_latency_ms, vis
        );
    }

    println!("\nreading the table:");
    println!("  EunomiaKV ~ eventual throughput AND ms-scale visibility — the paper's point;");
    println!("  GentleRain/Cure trade one for the other; S-Seq pays throughput for visibility;");
    println!("  A-Seq shows the sequencer's cost is exactly its synchronous round trip.");
}
