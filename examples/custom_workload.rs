//! Driving EunomiaKV with a custom workload and deployment: the wide
//! 5-datacenter preset, a hotspot key distribution, larger values,
//! replica fault tolerance and a tuned stabilization period — all built
//! through the *validated* configuration path, so a typo'd deployment
//! fails at construction instead of panicking mid-run.
//!
//! Run with: `cargo run --release --example custom_workload`

use eunomia::sim::units;
use eunomia::{run, ClusterConfigBuilder, Scenario, SystemId};
use eunomia_workload::{KeyDistribution, OpGenerator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Key pickers are reusable on their own, e.g. to inspect skew:
    let mut hotspot = KeyDistribution::hotspot(10_000, 0.05, 0.8);
    let mut generator = OpGenerator::new(hotspot.clone(), 80, 256);
    let mut rng = StdRng::seed_from_u64(1);
    let sample: Vec<u64> = (0..5).map(|_| hotspot.sample(&mut rng)).collect();
    println!("hotspot samples: {sample:?}");
    println!("one op: {:?}\n", generator.next_op(&mut rng).key());

    // Start from the wide 5-DC preset and tune it through the builder.
    // `build()` re-checks every invariant (matrix shape, window, ranges).
    let cfg = ClusterConfigBuilder::from_config(Scenario::wide_five_dc().cfg().clone())
        .replicas(2) // fault-tolerant Eunomia per DC
        .theta(units::ms(2)) // stabilization period
        .batch_interval(units::ms(2))
        .heartbeat_delta(units::ms(2))
        .duration(units::secs(15))
        .warmup(units::secs(3))
        .cooldown(units::secs(1))
        .workload(WorkloadConfig {
            keys: 10_000,
            read_pct: 90,
            value_size: 256,
            power_law: true,
            ..WorkloadConfig::default()
        })
        .build()
        .expect("deployment validates");
    let scenario = Scenario::custom("wide-5dc-hotspot", cfg).unwrap();

    // The validation in action: an asymmetric matrix is refused.
    let broken = ClusterConfigBuilder::new()
        .n_dcs(2)
        .rtt_matrix(Some(vec![vec![0, 10], vec![20, 0]]))
        .build();
    println!("validation demo: {}\n", broken.unwrap_err());

    println!("running 5-DC EunomiaKV (2 Eunomia replicas per DC, power-law keys)...");
    let report = run(SystemId::EunomiaKv, &scenario);
    println!(
        "\nthroughput {:.0} ops/s | client p50 {:.2} ms p99 {:.2} ms",
        report.throughput, report.p50_latency_ms, report.p99_latency_ms
    );
    println!("\nvisibility extra delay (p90, ms) between selected pairs:");
    for (o, d) in [(0u16, 1u16), (0, 4), (2, 3)] {
        if let Some(v) = report.visibility_percentile_ms(o, d, 90.0) {
            println!("  dc{o} -> dc{d}: {v:.2}");
        }
    }
    println!("\nvector clocks keep visibility tied to each pair's own distance,");
    println!("not to the farthest datacenter — even in a 5-site deployment.");
}
