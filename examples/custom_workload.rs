//! Driving EunomiaKV with a custom workload and deployment: a 5-datacenter
//! ring-ish topology, a hotspot key distribution, larger values, replica
//! fault tolerance and a tuned stabilization period.
//!
//! Run with: `cargo run --release --example custom_workload`

use eunomia::geo::{run_system, ClusterConfig, SystemKind};
use eunomia::sim::units;
use eunomia_workload::{KeyDistribution, OpGenerator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Key pickers are reusable on their own, e.g. to inspect skew:
    let mut hotspot = KeyDistribution::hotspot(10_000, 0.05, 0.8);
    let mut generator = OpGenerator::new(hotspot.clone(), 80, 256);
    let mut rng = StdRng::seed_from_u64(1);
    let sample: Vec<u64> = (0..5).map(|_| hotspot.sample(&mut rng)).collect();
    println!("hotspot samples: {sample:?}");
    println!("one op: {:?}\n", generator.next_op(&mut rng).key());

    // A 5-DC deployment with an explicit RTT matrix (ms).
    let ms = units::ms(1);
    let rtts: Vec<Vec<u64>> = vec![
        //  A      B       C       D       E
        vec![0, 30 * ms, 90 * ms, 150 * ms, 200 * ms],
        vec![30 * ms, 0, 70 * ms, 130 * ms, 180 * ms],
        vec![90 * ms, 70 * ms, 0, 80 * ms, 140 * ms],
        vec![150 * ms, 130 * ms, 80 * ms, 0, 90 * ms],
        vec![200 * ms, 180 * ms, 140 * ms, 90 * ms, 0],
    ];
    let mut cfg = ClusterConfig::default();
    cfg.n_dcs = 5;
    cfg.rtt_matrix = Some(rtts);
    cfg.partitions_per_dc = 4;
    cfg.clients_per_dc = 3;
    cfg.replicas = 2; // fault-tolerant Eunomia per DC
    cfg.theta = units::ms(2); // stabilization period
    cfg.batch_interval = units::ms(2);
    cfg.heartbeat_delta = units::ms(2);
    cfg.duration = units::secs(15);
    cfg.warmup = units::secs(3);
    cfg.cooldown = units::secs(1);
    // With 5 DCs each receiver absorbs four remote streams; the faithful
    // Alg. 5 receiver serializes applies, so keep the mix read-heavy and
    // enable the pipelined-receiver extension (one in-flight apply per
    // origin instead of one overall — see the `ablation_receiver` bench).
    cfg.pipelined_receiver = true;
    cfg.workload = WorkloadConfig {
        keys: 10_000,
        read_pct: 90,
        value_size: 256,
        power_law: true,
    };

    println!("running 5-DC EunomiaKV (2 Eunomia replicas per DC, power-law keys)...");
    let report = run_system(SystemKind::EunomiaKv, cfg);
    println!(
        "\nthroughput {:.0} ops/s | client p50 {:.2} ms p99 {:.2} ms",
        report.throughput, report.p50_latency_ms, report.p99_latency_ms
    );
    println!("\nvisibility extra delay (p90, ms) between selected pairs:");
    for (o, d) in [(0u16, 1u16), (0, 4), (2, 3)] {
        if let Some(v) = report.visibility_percentile_ms(o, d, 90.0) {
            println!("  dc{o} -> dc{d}: {v:.2}");
        }
    }
    println!("\nvector clocks keep visibility tied to each pair's own distance,");
    println!("not to the farthest datacenter — even in a 5-site deployment.");
}
