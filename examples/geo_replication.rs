//! Geo-replication: the paper's 3-datacenter EunomiaKV deployment on the
//! discrete-event simulator (Virginia / Oregon / Ireland RTTs), with
//! remote-update visibility measured the way §7.2.2 does.
//!
//! Run with: `cargo run --release --example geo_replication`

use eunomia::sim::units;
use eunomia::{run, Scenario, SystemId};
use eunomia_workload::WorkloadConfig;

fn main() {
    let scenario = Scenario::paper_three_dc()
        .seconds(20)
        .workload(WorkloadConfig::paper(90, false))
        .with(|c| {
            c.warmup = units::secs(4);
            c.cooldown = units::secs(2);
        });
    let cfg = scenario.cfg();
    println!(
        "running EunomiaKV: {} DCs x {} partitions, {} clients/DC, 90:10 uniform, 20 s sim...",
        cfg.n_dcs, cfg.partitions_per_dc, cfg.clients_per_dc
    );
    let report = run(SystemId::EunomiaKv, &scenario);

    println!(
        "\nthroughput: {:.0} ops/s across all datacenters",
        report.throughput
    );
    println!(
        "client latency: p50 {:.2} ms, p99 {:.2} ms",
        report.p50_latency_ms, report.p99_latency_ms
    );

    println!("\nremote update visibility — EXTRA delay past data arrival (network excluded):");
    for (origin, dest, oneway) in [(0u16, 1u16, 40), (0, 2, 40), (1, 2, 80)] {
        let p50 = report
            .visibility_percentile_ms(origin, dest, 50.0)
            .unwrap_or(0.0);
        let p95 = report
            .visibility_percentile_ms(origin, dest, 95.0)
            .unwrap_or(0.0);
        println!(
            "  dc{origin} -> dc{dest} ({oneway} ms one-way): p50 {p50:.2} ms, p95 {p95:.2} ms"
        );
    }
    println!(
        "\nan update is visible ~{:.0} ms + a few ms of stabilization after it happens —",
        40.0
    );
    println!("the deferred ordering never touched a client's critical path.");
}
