//! Fault tolerance: the replicated Eunomia service surviving its leader
//! (threaded runtime, §3.3 + Fig. 4).
//!
//! Three replicas ingest the same at-least-once stream from 8 feeder
//! partitions; the Ω-elected leader stabilizes. We kill the leader
//! mid-run and watch stabilization continue after a brief fail-over.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use eunomia::runtime::service::{run_eunomia_service, EunomiaBenchConfig};
use std::time::Duration;

fn main() {
    let cfg = EunomiaBenchConfig {
        feeders: 8,
        replicas: 3,
        duration: Duration::from_secs(6),
        omega_timeout: Duration::from_millis(120),
        crashes: vec![(Duration::from_secs(2), 0)], // kill the leader at t=2s
        ..EunomiaBenchConfig::default()
    };
    println!(
        "3-replica Eunomia, {} feeders; killing the leader at t=2s (fail-over ~{} ms)...\n",
        cfg.feeders,
        cfg.omega_timeout.as_millis()
    );
    let timeline = run_eunomia_service(&cfg);

    println!("stabilized operations per second:");
    for (s, ops) in timeline.per_second.iter().enumerate() {
        let marker = if s == 2 { "  <- leader killed" } else { "" };
        println!("  t={s}s  {:>9} ops{marker}", ops);
    }
    println!(
        "\ntotal {} ops in {:.1}s ({:.0} kops/s mean)",
        timeline.total,
        timeline.elapsed.as_secs_f64(),
        timeline.ops_per_sec() / 1000.0
    );
    let after: u64 = timeline.per_second.iter().skip(3).sum();
    assert!(after > 0, "stabilization must survive the leader crash");
    println!("replica 1 took over; the ordering service never returned wrong results —");
    println!("replicas do not coordinate, so fail-over is just 'someone else drains'.");
}
