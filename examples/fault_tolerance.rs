//! Fault tolerance: the replicated Eunomia service surviving its leader
//! (§3.3 + Fig. 4), both on the simulator and on the threaded runtime.
//!
//! Simulator: a 3-replica Eunomia per datacenter with a scheduled leader
//! crash mid-run, expressed directly in the scenario's crash schedule —
//! visibility of remote updates must continue across the fail-over.
//! Threaded runtime: the same story with OS threads and wall clocks.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use eunomia::runtime::service::{run_eunomia_service, EunomiaBenchConfig};
use eunomia::sim::units;
use eunomia::{run, ReplicaCrash, Scenario, SystemId};
use std::time::Duration;

fn main() {
    // --- Simulator: crash dc0's leader at t = 4 s of a 12 s run. ---
    let scenario = Scenario::paper_three_dc()
        .named("leader-crash")
        .seconds(12)
        .with(|c| {
            c.replicas = 3;
            c.omega_interval = units::ms(5);
            c.omega_timeout = units::ms(25);
            c.crashes = vec![ReplicaCrash {
                dc: 0,
                replica: 0, // the initial leader
                at: units::secs(4),
            }];
        });
    println!("simulated 3-DC EunomiaKV, 3 replicas/DC; dc0 leader dies at t=4s...");
    let report = run(SystemId::EunomiaKv, &scenario);
    let before = report
        .metrics
        .visibility_extras(0, 1, 0, units::secs(4))
        .len();
    let after = report
        .metrics
        .visibility_extras(0, 1, units::secs(6), units::secs(12))
        .len();
    println!("dc0->dc1 visibility samples: {before} before the crash, {after} after fail-over");
    assert!(after > 0, "stabilization must survive the leader crash");

    // --- Threaded runtime: same failure, real threads (§7.1 / Fig. 4). ---
    let cfg = EunomiaBenchConfig {
        feeders: 8,
        replicas: 3,
        duration: Duration::from_secs(6),
        omega_timeout: Duration::from_millis(120),
        crashes: vec![(Duration::from_secs(2), 0)], // kill the leader at t=2s
        ..EunomiaBenchConfig::default()
    };
    println!(
        "\nthreaded 3-replica Eunomia, {} feeders; killing the leader at t=2s (fail-over ~{} ms)...\n",
        cfg.feeders,
        cfg.omega_timeout.as_millis()
    );
    let timeline = run_eunomia_service(&cfg);

    println!("stabilized operations per second:");
    for (s, ops) in timeline.per_second.iter().enumerate() {
        let marker = if s == 2 { "  <- leader killed" } else { "" };
        println!("  t={s}s  {:>9} ops{marker}", ops);
    }
    println!(
        "\ntotal {} ops in {:.1}s ({:.0} kops/s mean)",
        timeline.total,
        timeline.elapsed.as_secs_f64(),
        timeline.ops_per_sec() / 1000.0
    );
    let after: u64 = timeline.per_second.iter().skip(3).sum();
    assert!(after > 0, "stabilization must survive the leader crash");
    println!("replica 1 took over; the ordering service never returned wrong results —");
    println!("replicas do not coordinate, so fail-over is just 'someone else drains'.");
}
