//! Quickstart: the whole system in three lines — pick a [`SystemId`],
//! pick a [`Scenario`], call [`run`].
//!
//! The run below deploys the paper's system (EunomiaKV) on the small
//! two-datacenter test topology, then shows the two numbers the paper is
//! about: client throughput (deferred stabilization stays off the
//! critical path) and remote-update visibility (only a few ms of extra
//! delay past network arrival).
//!
//! Run with: `cargo run --release --example quickstart`

use eunomia::{run, Scenario, SystemId};

fn main() {
    // 1. A scenario is a named, *validated* cluster configuration.
    let scenario = Scenario::small_test().seconds(10).seed(42);
    println!(
        "scenario {:?}: {} DCs, {} partitions/DC, {} clients/DC, 10 s sim\n",
        scenario.name(),
        scenario.cfg().n_dcs,
        scenario.cfg().partitions_per_dc,
        scenario.cfg().clients_per_dc,
    );

    // 2. One call builds the cluster, runs it, and reports.
    let report = run(SystemId::EunomiaKv, &scenario);

    println!("system      : {}", report.system);
    println!("throughput  : {:.0} ops/s", report.throughput);
    println!(
        "client lat  : p50 {:.2} ms, p99 {:.2} ms",
        report.p50_latency_ms, report.p99_latency_ms
    );
    for (origin, dest) in [(0u16, 1u16), (1, 0)] {
        if let Some(p90) = report.visibility_percentile_ms(origin, dest, 90.0) {
            println!("visibility  : dc{origin} -> dc{dest} p90 extra delay {p90:.2} ms");
        }
    }

    // 3. Any of the six systems runs the same way — parse names at will.
    let eventual = run("eventual".parse::<SystemId>().unwrap(), &scenario);
    println!(
        "\nvs {}: {:.1}% of its throughput, with causal consistency on top",
        eventual.system,
        report.throughput / eventual.throughput * 100.0
    );
    println!("\nupdates stabilize *after* clients are answered — that is the paper's point:");
    println!("causal ordering without a sequencer or stabilization wait in the critical path.");

    // Bad configurations fail loudly at construction, not mid-run:
    let bogus = Scenario::small_test().try_with(|c| c.warmup = c.duration);
    println!("\nvalidation demo: {}", bogus.unwrap_err().1);
}
