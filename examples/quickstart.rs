//! Quickstart: deferred update stabilization inside one datacenter.
//!
//! Three partitions timestamp client updates with scalar hybrid clocks
//! (Algorithm 2) and feed the Eunomia service (Algorithm 3), which emits
//! a single total order consistent with causality — without ever sitting
//! in a client's critical path.
//!
//! Run with: `cargo run --example quickstart`

use eunomia::core::eunomia::EunomiaState;
use eunomia::core::ids::PartitionId;
use eunomia::core::time::{ScalarHlc, Timestamp};
use eunomia::kv::client::ScalarClientState;

fn main() {
    const PARTITIONS: usize = 3;
    let mut clocks = vec![ScalarHlc::new(); PARTITIONS];
    let mut service: EunomiaState<String> = EunomiaState::new(PARTITIONS);

    // A client session whose causal past travels in its clock (Alg. 1).
    let mut alice = ScalarClientState::new();

    // Simulated wall clock, microsecond ticks. Partition 2's clock runs
    // 50 units behind to show skew tolerance.
    let mut wall = 1_000u64;
    let skew = [0i64, 0, -50];

    let update = |clocks: &mut Vec<ScalarHlc>,
                  service: &mut EunomiaState<String>,
                  alice: &mut ScalarClientState,
                  wall: u64,
                  p: usize,
                  what: &str| {
        let physical = Timestamp((wall as i64 + skew[p]) as u64);
        // Alg. 2 line 5: strictly above the client's past and this
        // partition's previous timestamps, without waiting out skew.
        let ts = clocks[p].tick(physical, alice.clock());
        service
            .add_op(
                PartitionId(p as u32),
                ts,
                format!("{what} @ {}", PartitionId(p as u32)),
            )
            .unwrap();
        alice.on_update_reply(ts);
        println!("update '{what}' -> partition {p}, timestamp {ts}");
        ts
    };

    update(
        &mut clocks,
        &mut service,
        &mut alice,
        wall,
        0,
        "cart := [book]",
    );
    wall += 10;
    update(
        &mut clocks,
        &mut service,
        &mut alice,
        wall,
        2,
        "cart += pen",
    );
    wall += 10;
    update(&mut clocks, &mut service, &mut alice, wall, 1, "checkout");

    // Nothing can ship yet: partitions 0 and 2 might still hold earlier
    // timestamps. Idle partitions cover themselves with heartbeats
    // (Alg. 2 lines 10-12).
    let mut stable = Vec::new();
    service.process_stable(&mut stable);
    println!("\nstable before heartbeats: {} operations", stable.len());

    // Give the skewed clock time to pass its own logical bump, then let
    // every idle partition cover itself.
    wall += 80;
    for p in 0..PARTITIONS {
        let physical = Timestamp((wall as i64 + skew[p]) as u64);
        if clocks[p].heartbeat_due(physical, 5) {
            let hb = clocks[p].heartbeat(physical);
            service.heartbeat(PartitionId(p as u32), hb).unwrap();
        }
    }
    service.process_stable(&mut stable);

    println!("\ntotal order shipped to remote datacenters:");
    for (key, op) in &stable {
        println!("  ts {:>6} | {}", key.ts.as_ticks(), op);
    }
    assert_eq!(stable.len(), 3, "all three causally related updates ship");
    // Causality: the order respects Alice's session.
    assert!(stable.windows(2).all(|w| w[0].0 < w[1].0));
    println!("\ncausal total order verified — and no client ever waited for it.");
}
