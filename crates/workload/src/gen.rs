//! Operation stream generation.

use crate::KeyDistribution;
use rand::rngs::StdRng;
use rand::Rng;

/// One client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the given key.
    Read(u64),
    /// Update the given key with a payload.
    Update(u64, bytes::Bytes),
}

impl Op {
    /// The target key.
    pub fn key(&self) -> u64 {
        match self {
            Op::Read(k) => *k,
            Op::Update(k, _) => *k,
        }
    }

    /// Whether this is an update.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Update(..))
    }
}

/// Turns a key distribution and a read percentage into an operation
/// stream. Values are a fixed-size payload (shared buffer — contents are
/// irrelevant to the protocols, matching the paper's fixed 100-byte
/// binaries).
#[derive(Clone, Debug)]
pub struct OpGenerator {
    dist: KeyDistribution,
    read_pct: u8,
    value: bytes::Bytes,
    generated: u64,
    updates: u64,
}

impl OpGenerator {
    /// Creates a generator; `read_pct` of operations are reads.
    ///
    /// # Panics
    ///
    /// Panics if `read_pct > 100`.
    pub fn new(dist: KeyDistribution, read_pct: u8, value_size: usize) -> Self {
        assert!(read_pct <= 100, "read percentage must be 0-100");
        OpGenerator {
            dist,
            read_pct,
            value: bytes::Bytes::from(vec![0xABu8; value_size]),
            generated: 0,
            updates: 0,
        }
    }

    /// Generates the next operation.
    pub fn next_op(&mut self, rng: &mut StdRng) -> Op {
        let key = self.dist.sample(rng);
        self.generated += 1;
        if rng.random_range(0..100u8) < self.read_pct {
            Op::Read(key)
        } else {
            self.updates += 1;
            Op::Update(key, self.value.clone())
        }
    }

    /// Total operations generated.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Updates among them.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The value payload size.
    pub fn value_size(&self) -> usize {
        self.value.len()
    }

    /// Folds the generator's configuration and progress counters into `h`
    /// for model-checking state hashing (the next op depends on the RNG,
    /// hashed separately by the engine, and on nothing else here).
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        self.dist.state_digest(h);
        h.write_u8(self.read_pct);
        h.write_usize(self.value.len());
        h.write_u64(self.generated);
        h.write_u64(self.updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_ratio_is_respected() {
        let mut g = OpGenerator::new(KeyDistribution::uniform(100), 90, 100);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut updates = 0;
        for _ in 0..n {
            if g.next_op(&mut rng).is_update() {
                updates += 1;
            }
        }
        let frac = updates as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.01, "update fraction {frac}");
        assert_eq!(g.generated(), n);
        assert_eq!(g.updates(), updates);
    }

    #[test]
    fn all_reads_and_all_writes() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut reads = OpGenerator::new(KeyDistribution::uniform(10), 100, 8);
        let mut writes = OpGenerator::new(KeyDistribution::uniform(10), 0, 8);
        for _ in 0..100 {
            assert!(!reads.next_op(&mut rng).is_update());
            assert!(writes.next_op(&mut rng).is_update());
        }
    }

    #[test]
    fn values_have_configured_size() {
        let mut g = OpGenerator::new(KeyDistribution::uniform(10), 0, 100);
        let mut rng = StdRng::seed_from_u64(13);
        match g.next_op(&mut rng) {
            Op::Update(_, v) => assert_eq!(v.len(), 100),
            Op::Read(_) => panic!("expected update"),
        }
        assert_eq!(g.value_size(), 100);
    }

    #[test]
    fn op_accessors() {
        let r = Op::Read(5);
        let u = Op::Update(6, bytes::Bytes::new());
        assert_eq!(r.key(), 5);
        assert_eq!(u.key(), 6);
        assert!(!r.is_update());
        assert!(u.is_update());
    }
}
