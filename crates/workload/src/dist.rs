//! Key distributions: uniform, zipfian (YCSB-style), hotspot, sequential.

use rand::rngs::StdRng;
use rand::Rng;

/// A stateful key picker over a key space `0..keys`.
#[derive(Clone, Debug)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform {
        /// Key-space size.
        keys: u64,
    },
    /// Power-law (zipfian) distribution with parameter `theta` using the
    /// Gray et al. generator popularized by YCSB; keys are scrambled with a
    /// multiplicative hash so rank and key id are decorrelated.
    Zipfian {
        /// Key-space size.
        keys: u64,
        /// Skew parameter in `(0, 1)`; YCSB default 0.99.
        theta: f64,
        /// Precomputed `zeta(keys, theta)`.
        zetan: f64,
        /// Precomputed `(1 - (2/n)^(1-theta)) / (1 - zeta(2)/zeta(n))`.
        eta: f64,
        /// `1 / (1 - theta)`.
        alpha: f64,
    },
    /// A fraction of accesses hits a contiguous hot set.
    HotSpot {
        /// Key-space size.
        keys: u64,
        /// Fraction of the key space that is hot (0, 1].
        hot_fraction: f64,
        /// Fraction of accesses that go to the hot set (0, 1].
        hot_access: f64,
    },
    /// Round-robin over the key space (for deterministic tests and
    /// population phases).
    Sequential {
        /// Key-space size.
        keys: u64,
        /// Next key to emit.
        next: u64,
    },
    /// Like [`KeyDistribution::HotSpot`], but the hot set rotates through
    /// the key space every `shift_every` draws — models a trending-topic
    /// workload where popularity migrates over time, defeating caches
    /// warmed on the previous hot set.
    ShiftingHotSpot {
        /// Key-space size.
        keys: u64,
        /// Fraction of the key space that is hot at any instant (0, 1).
        hot_fraction: f64,
        /// Fraction of accesses that go to the current hot set (0, 1].
        hot_access: f64,
        /// Draws between hot-set rotations.
        shift_every: u64,
        /// Draws made so far (drives the rotation).
        drawn: u64,
    },
}

fn zeta(n: u64, theta: f64) -> f64 {
    // O(n) of `powf` per evaluation, and every client generator over the
    // same key space needs the same value — on the multi-million-key
    // `huge` presets that is billions of calls at startup without this
    // memo. Thread-local (the simulator is single-threaded per run) and
    // keyed by exact bits, so memoization cannot change results.
    thread_local! {
        static ZETA_MEMO: std::cell::RefCell<Vec<((u64, u64), f64)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let key = (n, theta.to_bits());
    ZETA_MEMO.with(|memo| {
        if let Some(&(_, z)) = memo.borrow().iter().find(|(k, _)| *k == key) {
            return z;
        }
        let z = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        memo.borrow_mut().push((key, z));
        z
    })
}

/// Decorrelates zipf rank from key id (rank 0 should not always be key 0).
fn scramble(rank: u64, keys: u64) -> u64 {
    (rank + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % keys
}

impl KeyDistribution {
    /// Uniform over `keys`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn uniform(keys: u64) -> Self {
        assert!(keys > 0, "key space must be non-empty");
        KeyDistribution::Uniform { keys }
    }

    /// Zipfian over `keys` with skew `theta` (0 < theta < 1).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `theta` is outside `(0, 1)`.
    pub fn zipfian(keys: u64, theta: f64) -> Self {
        assert!(keys > 0, "key space must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0,1)"
        );
        let zetan = zeta(keys, theta);
        let zeta2 = zeta(2, theta);
        let eta = (1.0 - (2.0 / keys as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        KeyDistribution::Zipfian {
            keys,
            theta,
            zetan,
            eta,
            alpha: 1.0 / (1.0 - theta),
        }
    }

    /// Hotspot: `hot_access` of requests hit the first
    /// `hot_fraction * keys` keys (after scrambling).
    ///
    /// # Panics
    ///
    /// Panics on empty key space or fractions outside `(0, 1]`.
    pub fn hotspot(keys: u64, hot_fraction: f64, hot_access: f64) -> Self {
        assert!(keys > 0, "key space must be non-empty");
        assert!((0.0..=1.0).contains(&hot_fraction) && hot_fraction > 0.0);
        assert!((0.0..=1.0).contains(&hot_access) && hot_access > 0.0);
        KeyDistribution::HotSpot {
            keys,
            hot_fraction,
            hot_access,
        }
    }

    /// Sequential starting at key 0.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn sequential(keys: u64) -> Self {
        assert!(keys > 0, "key space must be non-empty");
        KeyDistribution::Sequential { keys, next: 0 }
    }

    /// Shifting hotspot: `hot_access` of requests hit a hot set of
    /// `hot_fraction * keys` keys that rotates by one hot-set width every
    /// `shift_every` draws.
    ///
    /// # Panics
    ///
    /// Panics on an empty key space, `hot_fraction` outside `(0, 1)`
    /// (strict — a cold remainder must exist for the shift to matter),
    /// `hot_access` outside `(0, 1]`, or a zero `shift_every`.
    pub fn shifting_hotspot(
        keys: u64,
        hot_fraction: f64,
        hot_access: f64,
        shift_every: u64,
    ) -> Self {
        assert!(keys > 0, "key space must be non-empty");
        assert!(
            hot_fraction > 0.0 && hot_fraction < 1.0,
            "hot_fraction must be in (0, 1)"
        );
        assert!((0.0..=1.0).contains(&hot_access) && hot_access > 0.0);
        assert!(shift_every > 0, "shift_every must be positive");
        KeyDistribution::ShiftingHotSpot {
            keys,
            hot_fraction,
            hot_access,
            shift_every,
            drawn: 0,
        }
    }

    /// Key-space size.
    pub fn keys(&self) -> u64 {
        match self {
            KeyDistribution::Uniform { keys }
            | KeyDistribution::Zipfian { keys, .. }
            | KeyDistribution::HotSpot { keys, .. }
            | KeyDistribution::Sequential { keys, .. }
            | KeyDistribution::ShiftingHotSpot { keys, .. } => *keys,
        }
    }

    /// Folds the distribution's configuration and mutable counters into
    /// `h` for model-checking state hashing (mirrors
    /// `OpGenerator::state_digest`; the RNG is hashed separately by the
    /// engine).
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u64(self.keys());
        match self {
            KeyDistribution::Uniform { .. } => h.write_u8(0),
            KeyDistribution::Zipfian { theta, .. } => {
                h.write_u8(1);
                h.write_u64(theta.to_bits());
            }
            KeyDistribution::HotSpot {
                hot_fraction,
                hot_access,
                ..
            } => {
                h.write_u8(2);
                h.write_u64(hot_fraction.to_bits());
                h.write_u64(hot_access.to_bits());
            }
            KeyDistribution::Sequential { next, .. } => {
                h.write_u8(3);
                h.write_u64(*next);
            }
            KeyDistribution::ShiftingHotSpot {
                hot_fraction,
                hot_access,
                shift_every,
                drawn,
                ..
            } => {
                h.write_u8(4);
                h.write_u64(hot_fraction.to_bits());
                h.write_u64(hot_access.to_bits());
                h.write_u64(*shift_every);
                h.write_u64(*drawn);
            }
        }
    }

    /// Samples the next key.
    pub fn sample(&mut self, rng: &mut StdRng) -> u64 {
        match self {
            KeyDistribution::Uniform { keys } => rng.random_range(0..*keys),
            KeyDistribution::Zipfian {
                keys,
                theta,
                zetan,
                eta,
                alpha,
            } => {
                let n = *keys;
                let u: f64 = rng.random();
                let uz = u * *zetan;
                let rank = if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(*theta) {
                    1
                } else {
                    ((n as f64) * (*eta * u - *eta + 1.0).powf(*alpha)) as u64
                };
                scramble(rank.min(n - 1), n)
            }
            KeyDistribution::HotSpot {
                keys,
                hot_fraction,
                hot_access,
            } => {
                let hot_keys = ((*keys as f64 * *hot_fraction) as u64).max(1);
                let rank = if rng.random::<f64>() < *hot_access {
                    rng.random_range(0..hot_keys)
                } else {
                    rng.random_range(hot_keys..*keys)
                };
                scramble(rank, *keys)
            }
            KeyDistribution::Sequential { keys, next } => {
                let k = *next;
                *next = (*next + 1) % *keys;
                k
            }
            KeyDistribution::ShiftingHotSpot {
                keys,
                hot_fraction,
                hot_access,
                shift_every,
                drawn,
            } => {
                let n = *keys;
                let hot_keys = ((n as f64 * *hot_fraction) as u64).max(1);
                // The hot window slides by one hot-set width per shift,
                // wrapping around the (scrambled) rank space.
                let offset = (*drawn / *shift_every).wrapping_mul(hot_keys) % n;
                *drawn += 1;
                let rank = if rng.random::<f64>() < *hot_access {
                    (offset + rng.random_range(0..hot_keys)) % n
                } else {
                    (offset + hot_keys + rng.random_range(0..n - hot_keys)) % n
                };
                scramble(rank, n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn frequencies(dist: &mut KeyDistribution, n: usize, seed: u64) -> HashMap<u64, u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = HashMap::new();
        for _ in 0..n {
            *f.entry(dist.sample(&mut rng)).or_insert(0) += 1;
        }
        f
    }

    #[test]
    fn uniform_covers_key_space_evenly() {
        let mut d = KeyDistribution::uniform(100);
        let f = frequencies(&mut d, 100_000, 1);
        assert!(f.len() == 100);
        let (min, max) = f
            .values()
            .fold((u64::MAX, 0), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(max < 2 * min, "uniform spread too skewed: {min}..{max}");
    }

    #[test]
    fn all_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in [
            &mut KeyDistribution::uniform(1000),
            &mut KeyDistribution::zipfian(1000, 0.99),
            &mut KeyDistribution::hotspot(1000, 0.1, 0.9),
            &mut KeyDistribution::sequential(1000),
            &mut KeyDistribution::shifting_hotspot(1000, 0.1, 0.9, 100),
        ] {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) < 1000);
            }
        }
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let mut d = KeyDistribution::zipfian(10_000, 0.99);
        let f = frequencies(&mut d, 200_000, 3);
        let mut counts: Vec<u64> = f.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts.iter().take(10).sum();
        // Under theta=0.99 the top 10 of 10k keys draw a large share;
        // under uniform they would draw ~0.1%.
        assert!(
            top10 as f64 / total as f64 > 0.20,
            "zipf not skewed enough: top10 {top10}/{total}"
        );
    }

    #[test]
    fn zipfian_scramble_decorellates_rank_from_key() {
        let mut d = KeyDistribution::zipfian(10_000, 0.99);
        let f = frequencies(&mut d, 100_000, 4);
        let hottest = f.iter().max_by_key(|(_, &c)| c).map(|(k, _)| *k).unwrap();
        assert_ne!(hottest, 0, "rank 0 must not map to key 0");
    }

    #[test]
    fn hotspot_routes_hot_share() {
        let keys = 1000u64;
        let mut d = KeyDistribution::hotspot(keys, 0.1, 0.9);
        // Reconstruct which keys are "hot" via the same scramble.
        let hot: std::collections::HashSet<u64> = (0..100).map(|r| scramble(r, keys)).collect();
        let f = frequencies(&mut d, 100_000, 5);
        let hot_hits: u64 = f
            .iter()
            .filter(|(k, _)| hot.contains(k))
            .map(|(_, &c)| c)
            .sum();
        let share = hot_hits as f64 / 100_000.0;
        assert!((share - 0.9).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn sequential_round_robins() {
        let mut d = KeyDistribution::sequential(3);
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u64> = (0..7).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_keys_panics() {
        let _ = KeyDistribution::uniform(0);
    }

    #[test]
    fn shifting_hotspot_moves_its_hot_set() {
        let keys = 1000u64;
        let shift_every = 50_000u64;
        let mut d = KeyDistribution::shifting_hotspot(keys, 0.1, 0.95, shift_every);
        // Window 0 and window 1 hot sets in key space.
        let w0: std::collections::HashSet<u64> = (0..100).map(|r| scramble(r, keys)).collect();
        let w1: std::collections::HashSet<u64> = (100..200).map(|r| scramble(r, keys)).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let hits =
            |d: &mut KeyDistribution, rng: &mut StdRng, set: &std::collections::HashSet<u64>| {
                let mut n = 0;
                for _ in 0..shift_every {
                    if set.contains(&d.sample(rng)) {
                        n += 1;
                    }
                }
                n as f64 / shift_every as f64
            };
        let first_window_share = hits(&mut d, &mut rng, &w0);
        let second_window_share = hits(&mut d, &mut rng, &w1);
        assert!(
            first_window_share > 0.9,
            "window 0 share {first_window_share}"
        );
        assert!(
            second_window_share > 0.9,
            "window 1 share {second_window_share}"
        );
    }

    #[test]
    fn state_digest_distinguishes_progress() {
        use std::hash::Hasher;
        fn digest(d: &KeyDistribution) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            d.state_digest(&mut h);
            h.finish()
        }
        let mut a = KeyDistribution::shifting_hotspot(100, 0.1, 0.9, 10);
        let b = a.clone();
        assert_eq!(digest(&a), digest(&b));
        let mut rng = StdRng::seed_from_u64(1);
        a.sample(&mut rng);
        assert_ne!(digest(&a), digest(&b), "drawn counter must feed the digest");
        assert_ne!(
            digest(&KeyDistribution::uniform(100)),
            digest(&KeyDistribution::sequential(100)),
            "different shapes must digest differently"
        );
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn shifting_hotspot_rejects_full_hot_set() {
        let _ = KeyDistribution::shifting_hotspot(100, 1.0, 0.9, 10);
    }
}
