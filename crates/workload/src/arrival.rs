//! Arrival processes for open-loop load generation.
//!
//! A closed-loop client issues the next operation when the previous reply
//! arrives, so a slow server silently throttles the generator and the
//! measured latency distribution omits exactly the requests that would
//! have hurt — coordinated omission. An *open-loop* client instead draws
//! **intended arrival times** from one of the processes below and measures
//! latency from that stamp, whether or not the system kept up.
//!
//! Every process is deterministic given a seeded [`StdRng`] and produces
//! gaps in simulated nanoseconds, so same-seed runs replay bit-identically
//! (see `ArrivalProcess::state_digest`). The available shapes:
//!
//! * [`ArrivalSpec::Poisson`] — memoryless arrivals at a constant
//!   `rate_hz`; exponential inter-arrival gaps. The baseline for
//!   throughput-vs-latency sweeps.
//! * [`ArrivalSpec::Mmpp`] — a two-state Markov-modulated Poisson
//!   process: arrivals alternate between a `low_hz` and a `high_hz`
//!   Poisson phase with exponentially distributed dwell times
//!   (`dwell_low` / `dwell_high` mean ns). Models bursty production
//!   traffic whose *average* rate hides multi-x peaks.
//! * [`ArrivalSpec::Diurnal`] — a sinusoidal rate
//!   `mean_hz * (1 + a * sin(2πt / period))` where `a` is derived from
//!   `peak_to_trough` so the peak:trough rate ratio is exactly that
//!   value. Models day/night cycles compressed to simulation scale.
//! * [`ArrivalSpec::FlashCrowd`] — a constant `base_hz` with one
//!   trapezoid spike: at time `at` the rate ramps linearly over `ramp`
//!   ns to `base_hz * multiplier`, holds for `hold` ns, then ramps back
//!   down. Models a thundering herd / breaking-news event.
//! * [`ArrivalSpec::Trace`] — replay of a committed [`CompactTrace`]
//!   (counts per fixed-width bucket, replayed cyclically with arrivals
//!   spread evenly inside each bucket). Zero RNG draws: fully
//!   deterministic regardless of seed.
//!
//! Time-varying shapes (diurnal, flash crowd) draw each gap from the
//! instantaneous rate at the current time; since their rates change over
//! seconds while gaps are sub-10 ms at the rates of interest, this is an
//! accurate thinning-free approximation. The MMPP resamples exactly at
//! phase boundaries (exponential gaps are memoryless, so restarting the
//! draw at the boundary is distribution-preserving, not an approximation).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A compact committed arrival trace: operation counts per fixed-width
/// bucket, replayed cyclically.
///
/// The text format is line-oriented: `#` comments, one `bucket_ms=<n>`
/// header, then whitespace-separated per-bucket counts (any line
/// structure). [`CompactTrace::parse`] and the [`fmt::Display`] impl
/// round-trip.
#[derive(Clone, Debug, PartialEq)]
pub struct CompactTrace {
    /// Bucket width in nanoseconds.
    pub bucket_ns: u64,
    /// Arrivals per bucket, one cycle.
    pub counts: Vec<u32>,
}

impl CompactTrace {
    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns a message if the header is missing/duplicated, a count is
    /// not a non-negative integer, or the trace has no arrivals at all.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut bucket_ns: Option<u64> = None;
        let mut counts = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(v) = line.strip_prefix("bucket_ms=") {
                if bucket_ns.is_some() {
                    return Err("duplicate bucket_ms header".into());
                }
                let ms: u64 = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad bucket_ms {v:?}: {e}"))?;
                if ms == 0 {
                    return Err("bucket_ms must be positive".into());
                }
                bucket_ns = Some(ms * 1_000_000);
                continue;
            }
            for tok in line.split_whitespace() {
                counts.push(tok.parse().map_err(|e| format!("bad count {tok:?}: {e}"))?);
            }
        }
        let bucket_ns = bucket_ns.ok_or("missing bucket_ms header")?;
        let trace = CompactTrace { bucket_ns, counts };
        trace.validate()?;
        Ok(trace)
    }

    /// Checks the invariants the replay code relies on.
    ///
    /// # Errors
    ///
    /// Returns a message on a zero bucket width, an empty bucket list, or
    /// an all-zero cycle (which would make replay spin forever).
    pub fn validate(&self) -> Result<(), String> {
        if self.bucket_ns == 0 {
            return Err("trace bucket width must be positive".into());
        }
        if self.counts.is_empty() {
            return Err("trace has no buckets".into());
        }
        if self.total_per_cycle() == 0 {
            return Err("trace has no arrivals".into());
        }
        Ok(())
    }

    /// Total arrivals in one cycle.
    pub fn total_per_cycle(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Duration of one cycle in nanoseconds.
    pub fn cycle_ns(&self) -> u64 {
        self.bucket_ns * self.counts.len() as u64
    }

    /// Mean offered rate over one cycle, in Hz.
    pub fn mean_rate_hz(&self) -> f64 {
        self.total_per_cycle() as f64 / (self.cycle_ns() as f64 / 1e9)
    }

    /// The committed sample trace: one diurnal cycle compressed to 12 s
    /// (120 × 100 ms buckets, sine between 20 and 200 Hz).
    pub fn sample_diurnal() -> Self {
        CompactTrace::parse(include_str!("../traces/sample_diurnal.trace"))
            .expect("committed sample trace must parse")
    }
}

impl fmt::Display for CompactTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "bucket_ms={}", self.bucket_ns / 1_000_000)?;
        for chunk in self.counts.chunks(20) {
            let line: Vec<String> = chunk.iter().map(|c| c.to_string()).collect();
            writeln!(f, "{}", line.join(" "))?;
        }
        Ok(())
    }
}

/// Declarative description of an arrival process (see the module docs for
/// what each shape models). Construct one, validate it (or let
/// [`ArrivalSpec::process`] panic on nonsense), and instantiate per
/// client with [`ArrivalSpec::process`].
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// Constant-rate memoryless arrivals.
    Poisson {
        /// Offered rate in operations per second.
        rate_hz: f64,
    },
    /// Two-state Markov-modulated Poisson process (bursty traffic).
    Mmpp {
        /// Rate while in the low phase, Hz.
        low_hz: f64,
        /// Rate while in the high (burst) phase, Hz.
        high_hz: f64,
        /// Mean dwell time in the low phase, ns.
        dwell_low: u64,
        /// Mean dwell time in the high phase, ns.
        dwell_high: u64,
    },
    /// Sinusoidal day/night rate.
    Diurnal {
        /// Mean rate over a full period, Hz.
        mean_hz: f64,
        /// Peak rate divided by trough rate (must be ≥ 1).
        peak_to_trough: f64,
        /// Period of one cycle, ns.
        period: u64,
    },
    /// Constant base rate with one trapezoid spike.
    FlashCrowd {
        /// Steady-state rate outside the crowd, Hz.
        base_hz: f64,
        /// Peak rate as a multiple of `base_hz` (must be ≥ 1).
        multiplier: f64,
        /// When the ramp-up starts, ns.
        at: u64,
        /// Ramp-up (and ramp-down) duration, ns.
        ramp: u64,
        /// How long the peak holds, ns.
        hold: u64,
    },
    /// Cyclic replay of a committed compact trace.
    Trace(CompactTrace),
}

impl ArrivalSpec {
    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on non-finite or non-positive
    /// rates, zero dwell times/periods, ratios below 1, or an invalid
    /// trace.
    pub fn validate(&self) -> Result<(), String> {
        fn rate(name: &str, hz: f64) -> Result<(), String> {
            if !hz.is_finite() || hz <= 0.0 {
                return Err(format!("{name} must be a positive finite rate, got {hz}"));
            }
            Ok(())
        }
        match self {
            ArrivalSpec::Poisson { rate_hz } => rate("rate_hz", *rate_hz),
            ArrivalSpec::Mmpp {
                low_hz,
                high_hz,
                dwell_low,
                dwell_high,
            } => {
                rate("low_hz", *low_hz)?;
                rate("high_hz", *high_hz)?;
                if *dwell_low == 0 || *dwell_high == 0 {
                    return Err("MMPP dwell times must be positive".into());
                }
                Ok(())
            }
            ArrivalSpec::Diurnal {
                mean_hz,
                peak_to_trough,
                period,
            } => {
                rate("mean_hz", *mean_hz)?;
                if !peak_to_trough.is_finite() || *peak_to_trough < 1.0 {
                    return Err(format!("peak_to_trough must be ≥ 1, got {peak_to_trough}"));
                }
                if *period == 0 {
                    return Err("diurnal period must be positive".into());
                }
                Ok(())
            }
            ArrivalSpec::FlashCrowd {
                base_hz,
                multiplier,
                ramp,
                ..
            } => {
                rate("base_hz", *base_hz)?;
                if !multiplier.is_finite() || *multiplier < 1.0 {
                    return Err(format!(
                        "flash-crowd multiplier must be ≥ 1, got {multiplier}"
                    ));
                }
                if *ramp == 0 {
                    return Err("flash-crowd ramp must be positive".into());
                }
                Ok(())
            }
            ArrivalSpec::Trace(trace) => trace.validate(),
        }
    }

    /// Long-run mean offered rate in Hz (the x-axis of a load sweep).
    pub fn mean_rate_hz(&self) -> f64 {
        match self {
            ArrivalSpec::Poisson { rate_hz } => *rate_hz,
            ArrivalSpec::Mmpp {
                low_hz,
                high_hz,
                dwell_low,
                dwell_high,
            } => {
                let (dl, dh) = (*dwell_low as f64, *dwell_high as f64);
                (low_hz * dl + high_hz * dh) / (dl + dh)
            }
            ArrivalSpec::Diurnal { mean_hz, .. } => *mean_hz,
            // The spike is transient; the steady-state rate is what a
            // sweep scales, so report the base.
            ArrivalSpec::FlashCrowd { base_hz, .. } => *base_hz,
            ArrivalSpec::Trace(trace) => trace.mean_rate_hz(),
        }
    }

    /// Instantaneous rate at simulated time `t_ns`, in Hz.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        match self {
            ArrivalSpec::Poisson { rate_hz } => *rate_hz,
            // The modulating chain is stochastic; report the mean.
            ArrivalSpec::Mmpp { .. } => self.mean_rate_hz(),
            ArrivalSpec::Diurnal {
                mean_hz,
                peak_to_trough,
                period,
            } => {
                // amplitude a such that (1+a)/(1-a) == peak_to_trough
                let a = (peak_to_trough - 1.0) / (peak_to_trough + 1.0);
                let phase = (t_ns % period) as f64 / *period as f64;
                mean_hz * (1.0 + a * (2.0 * std::f64::consts::PI * phase).sin())
            }
            ArrivalSpec::FlashCrowd {
                base_hz,
                multiplier,
                at,
                ramp,
                hold,
            } => {
                let peak = base_hz * multiplier;
                let (up_end, hold_end) = (at + ramp, at + ramp + hold);
                let down_end = hold_end + ramp;
                if t_ns < *at || t_ns >= down_end {
                    *base_hz
                } else if t_ns < up_end {
                    let f = (t_ns - at) as f64 / *ramp as f64;
                    base_hz + (peak - base_hz) * f
                } else if t_ns < hold_end {
                    peak
                } else {
                    let f = (t_ns - hold_end) as f64 / *ramp as f64;
                    peak - (peak - base_hz) * f
                }
            }
            ArrivalSpec::Trace(trace) => {
                let b = (t_ns % trace.cycle_ns()) / trace.bucket_ns;
                trace.counts[b as usize] as f64 / (trace.bucket_ns as f64 / 1e9)
            }
        }
    }

    /// Returns a copy with every rate multiplied by `factor` (dwell
    /// times, periods and spike timing are unchanged) — the lever a load
    /// sweep pulls.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite, got {factor}"
        );
        match self.clone() {
            ArrivalSpec::Poisson { rate_hz } => ArrivalSpec::Poisson {
                rate_hz: rate_hz * factor,
            },
            ArrivalSpec::Mmpp {
                low_hz,
                high_hz,
                dwell_low,
                dwell_high,
            } => ArrivalSpec::Mmpp {
                low_hz: low_hz * factor,
                high_hz: high_hz * factor,
                dwell_low,
                dwell_high,
            },
            ArrivalSpec::Diurnal {
                mean_hz,
                peak_to_trough,
                period,
            } => ArrivalSpec::Diurnal {
                mean_hz: mean_hz * factor,
                peak_to_trough,
                period,
            },
            ArrivalSpec::FlashCrowd {
                base_hz,
                multiplier,
                at,
                ramp,
                hold,
            } => ArrivalSpec::FlashCrowd {
                base_hz: base_hz * factor,
                multiplier,
                at,
                ramp,
                hold,
            },
            // Scaling a trace compresses the bucket width so the shape is
            // preserved while the rate scales.
            ArrivalSpec::Trace(trace) => {
                let bucket_ns = ((trace.bucket_ns as f64 / factor) as u64).max(1);
                ArrivalSpec::Trace(CompactTrace {
                    bucket_ns,
                    counts: trace.counts,
                })
            }
        }
    }

    /// Instantiates the stateful per-client process.
    ///
    /// # Panics
    ///
    /// Panics if [`ArrivalSpec::validate`] fails.
    pub fn process(&self) -> ArrivalProcess {
        if let Err(e) = self.validate() {
            panic!("invalid arrival spec: {e}");
        }
        ArrivalProcess {
            spec: self.clone(),
            in_high: false,
            state_until: None,
            cursor: 0,
            arrivals: 0,
        }
    }

    /// A short label for tables and JSON (`poisson`, `mmpp`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalSpec::Poisson { .. } => "poisson",
            ArrivalSpec::Mmpp { .. } => "mmpp",
            ArrivalSpec::Diurnal { .. } => "diurnal",
            ArrivalSpec::FlashCrowd { .. } => "flash-crowd",
            ArrivalSpec::Trace(..) => "trace",
        }
    }
}

/// Exponential gap at `rate_hz`, in whole nanoseconds (≥ 1 so simulated
/// time always advances).
fn exp_gap(rate_hz: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.random();
    let gap = -(1.0 - u).ln() / rate_hz * 1e9;
    (gap as u64).max(1)
}

/// The stateful side of an [`ArrivalSpec`]: owns the MMPP phase machine
/// and the trace replay cursor, and hands out inter-arrival gaps.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    spec: ArrivalSpec,
    /// MMPP only: currently in the high (burst) phase.
    in_high: bool,
    /// MMPP only: absolute ns at which the current phase ends (drawn
    /// lazily on first use).
    state_until: Option<u64>,
    /// Trace only: index of the next arrival to replay.
    cursor: u64,
    /// Total gaps handed out, all shapes.
    arrivals: u64,
}

impl ArrivalProcess {
    /// The spec this process was built from.
    pub fn spec(&self) -> &ArrivalSpec {
        &self.spec
    }

    /// Total arrivals generated so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Draws the gap from `now` to the next intended arrival, in ns
    /// (always ≥ 1).
    pub fn next_gap(&mut self, now: u64, rng: &mut StdRng) -> u64 {
        self.arrivals += 1;
        match &self.spec {
            ArrivalSpec::Poisson { rate_hz } => exp_gap(*rate_hz, rng),
            ArrivalSpec::Mmpp {
                low_hz,
                high_hz,
                dwell_low,
                dwell_high,
            } => {
                // Start in the low phase with a fresh dwell draw.
                let mut until = *self.state_until.get_or_insert_with(|| {
                    let d = exp_gap(1e9 / *dwell_low as f64, rng);
                    now + d
                });
                let mut from = now;
                loop {
                    if from >= until {
                        // Phase boundary passed: flip and extend from the
                        // boundary (not `now`) so dwell statistics hold.
                        self.in_high = !self.in_high;
                        let dwell = if self.in_high { dwell_high } else { dwell_low };
                        until += exp_gap(1e9 / *dwell as f64, rng);
                        self.state_until = Some(until);
                        continue;
                    }
                    let hz = if self.in_high { *high_hz } else { *low_hz };
                    let gap = exp_gap(hz, rng);
                    if from + gap <= until {
                        return (from + gap - now).max(1);
                    }
                    // Gap crosses the phase boundary: memorylessness lets
                    // us restart the draw at the boundary exactly.
                    from = until;
                }
            }
            ArrivalSpec::Diurnal { .. } | ArrivalSpec::FlashCrowd { .. } => {
                exp_gap(self.spec.rate_at(now), rng)
            }
            ArrivalSpec::Trace(trace) => {
                // Deterministic replay: arrival #cursor lives in a known
                // cycle/bucket, spread evenly inside its bucket.
                let per_cycle = trace.total_per_cycle();
                let cycle = self.cursor / per_cycle;
                let mut rem = self.cursor % per_cycle;
                self.cursor += 1;
                let mut bucket = 0usize;
                while rem >= trace.counts[bucket] as u64 {
                    rem -= trace.counts[bucket] as u64;
                    bucket += 1;
                }
                let count = trace.counts[bucket] as u64;
                let within = trace.bucket_ns * (2 * rem + 1) / (2 * count);
                let t = cycle * trace.cycle_ns() + bucket as u64 * trace.bucket_ns + within;
                // If replay fell behind simulated time, catch up with a
                // minimal gap rather than emitting arrivals in the past.
                t.saturating_sub(now).max(1)
            }
        }
    }

    /// Folds the process configuration and mutable state into `h` for
    /// model-checking state hashing, mirroring `OpGenerator::state_digest`.
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        fn f64_bits(h: &mut dyn std::hash::Hasher, x: f64) {
            h.write_u64(x.to_bits());
        }
        match &self.spec {
            ArrivalSpec::Poisson { rate_hz } => {
                h.write_u8(0);
                f64_bits(h, *rate_hz);
            }
            ArrivalSpec::Mmpp {
                low_hz,
                high_hz,
                dwell_low,
                dwell_high,
            } => {
                h.write_u8(1);
                f64_bits(h, *low_hz);
                f64_bits(h, *high_hz);
                h.write_u64(*dwell_low);
                h.write_u64(*dwell_high);
            }
            ArrivalSpec::Diurnal {
                mean_hz,
                peak_to_trough,
                period,
            } => {
                h.write_u8(2);
                f64_bits(h, *mean_hz);
                f64_bits(h, *peak_to_trough);
                h.write_u64(*period);
            }
            ArrivalSpec::FlashCrowd {
                base_hz,
                multiplier,
                at,
                ramp,
                hold,
            } => {
                h.write_u8(3);
                f64_bits(h, *base_hz);
                f64_bits(h, *multiplier);
                h.write_u64(*at);
                h.write_u64(*ramp);
                h.write_u64(*hold);
            }
            ArrivalSpec::Trace(trace) => {
                h.write_u8(4);
                h.write_u64(trace.bucket_ns);
                h.write_usize(trace.counts.len());
                for &c in &trace.counts {
                    h.write_u32(c);
                }
            }
        }
        h.write_u8(self.in_high as u8);
        h.write_u64(self.state_until.unwrap_or(u64::MAX));
        h.write_u64(self.cursor);
        h.write_u64(self.arrivals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Drives `p` for `secs` of simulated time; returns arrival stamps.
    fn drive(spec: &ArrivalSpec, secs: u64, seed: u64) -> Vec<u64> {
        let mut p = spec.process();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        let end = secs * 1_000_000_000;
        let mut out = Vec::new();
        loop {
            now += p.next_gap(now, &mut rng);
            if now >= end {
                return out;
            }
            out.push(now);
        }
    }

    #[test]
    fn poisson_hits_configured_rate() {
        let spec = ArrivalSpec::Poisson { rate_hz: 500.0 };
        let n = drive(&spec, 20, 1).len() as f64;
        let rate = n / 20.0;
        assert!((rate - 500.0).abs() / 500.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn trace_replay_is_seed_independent_and_cyclic() {
        let trace = CompactTrace {
            bucket_ns: 100_000_000,
            counts: vec![2, 0, 4],
        };
        let spec = ArrivalSpec::Trace(trace.clone());
        let a = drive(&spec, 3, 1);
        let b = drive(&spec, 3, 999);
        assert_eq!(a, b, "trace replay must not consume randomness");
        // 6 arrivals per 300 ms cycle → 60 over 3 s, minus any landing
        // exactly on the end boundary.
        assert_eq!(a.len(), 60);
        // Second cycle is the first shifted by one cycle length.
        assert_eq!(a[6], a[0] + trace.cycle_ns());
    }

    #[test]
    fn trace_round_trips_through_text() {
        let t = CompactTrace::sample_diurnal();
        assert_eq!(t.bucket_ns, 100_000_000);
        assert_eq!(t.counts.len(), 120);
        let reparsed = CompactTrace::parse(&t.to_string()).unwrap();
        assert_eq!(t, reparsed);
    }

    #[test]
    fn flash_crowd_rate_shape() {
        let spec = ArrivalSpec::FlashCrowd {
            base_hz: 100.0,
            multiplier: 5.0,
            at: 1_000_000_000,
            ramp: 500_000_000,
            hold: 2_000_000_000,
        };
        assert_eq!(spec.rate_at(0), 100.0);
        assert_eq!(spec.rate_at(2_000_000_000), 500.0); // inside hold
        assert_eq!(spec.rate_at(10_000_000_000), 100.0); // long after
        let mid_ramp = spec.rate_at(1_250_000_000);
        assert!((mid_ramp - 300.0).abs() < 1.0, "mid-ramp {mid_ramp}");
    }

    #[test]
    fn diurnal_peak_trough_ratio() {
        let spec = ArrivalSpec::Diurnal {
            mean_hz: 300.0,
            peak_to_trough: 4.0,
            period: 10_000_000_000,
        };
        let peak = spec.rate_at(2_500_000_000); // sin = +1
        let trough = spec.rate_at(7_500_000_000); // sin = -1
        assert!(
            (peak / trough - 4.0).abs() < 0.01,
            "ratio {}",
            peak / trough
        );
        assert!((spec.mean_rate_hz() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn mmpp_mean_rate_is_dwell_weighted() {
        let spec = ArrivalSpec::Mmpp {
            low_hz: 100.0,
            high_hz: 1000.0,
            dwell_low: 3_000_000_000,
            dwell_high: 1_000_000_000,
        };
        assert!((spec.mean_rate_hz() - 325.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_multiplies_rates() {
        let spec = ArrivalSpec::Poisson { rate_hz: 100.0 };
        assert_eq!(spec.scaled(3.0).mean_rate_hz(), 300.0);
        let t = ArrivalSpec::Trace(CompactTrace {
            bucket_ns: 1_000_000_000,
            counts: vec![10],
        });
        let scaled = t.scaled(2.0).mean_rate_hz();
        assert!((scaled - 20.0).abs() < 0.1, "scaled trace rate {scaled}");
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(ArrivalSpec::Poisson { rate_hz: 0.0 }.validate().is_err());
        assert!(ArrivalSpec::Poisson { rate_hz: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalSpec::Mmpp {
            low_hz: 10.0,
            high_hz: 100.0,
            dwell_low: 0,
            dwell_high: 1,
        }
        .validate()
        .is_err());
        assert!(ArrivalSpec::Diurnal {
            mean_hz: 10.0,
            peak_to_trough: 0.5,
            period: 1
        }
        .validate()
        .is_err());
        assert!(CompactTrace {
            bucket_ns: 1,
            counts: vec![0, 0]
        }
        .validate()
        .is_err());
        assert!(CompactTrace::parse("1 2 3").is_err(), "missing header");
    }

    #[test]
    fn state_digest_tracks_progress() {
        use std::hash::Hasher;
        fn digest(p: &ArrivalProcess) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            p.state_digest(&mut h);
            h.finish()
        }
        let spec = ArrivalSpec::Poisson { rate_hz: 100.0 };
        let mut a = spec.process();
        let b = spec.process();
        assert_eq!(digest(&a), digest(&b));
        let mut rng = StdRng::seed_from_u64(7);
        a.next_gap(0, &mut rng);
        assert_ne!(digest(&a), digest(&b), "progress must change the digest");
    }
}
