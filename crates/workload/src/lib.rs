#![warn(missing_docs)]

//! Workload generation — the Basho Bench equivalent.
//!
//! The paper's experiments use: 100 k keys, fixed 100-byte binary values,
//! uniform and power-law key distributions, and read:write ratios of
//! 99:1, 90:10, 75:25 and 50:50 (§7, "Workload Generator"). This crate
//! reproduces those knobs:
//!
//! * [`KeyDistribution`] — uniform, zipfian (YCSB-style power law),
//!   hotspot, sequential and shifting-hotspot key pickers;
//! * [`OpGenerator`] — turns a distribution plus a read:write mix into a
//!   stream of [`Op`]s with fixed-size values;
//! * [`WorkloadConfig`] — a bundle of the above with the paper's presets;
//! * [`arrival`] — open-loop arrival processes (Poisson, MMPP, diurnal,
//!   flash crowd, trace replay) for load generation that does not
//!   coordinate with the system under test.
//!
//! # Examples
//!
//! ```
//! use eunomia_workload::WorkloadConfig;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut gen = WorkloadConfig::paper(90, true).generator();
//! let mut rng = StdRng::seed_from_u64(7);
//! let op = gen.next_op(&mut rng);
//! assert!(op.key() < 100_000);
//! ```

pub mod arrival;
mod dist;
mod gen;

pub use arrival::{ArrivalProcess, ArrivalSpec, CompactTrace};
pub use dist::KeyDistribution;
pub use gen::{Op, OpGenerator};

/// Parameters of the shifting-hotspot key distribution, as carried by
/// [`WorkloadConfig::hot_shift`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotShift {
    /// Fraction of the key space that is hot at any instant (0, 1).
    pub hot_fraction: f64,
    /// Fraction of accesses that go to the current hot set (0, 1].
    pub hot_access: f64,
    /// Draws between hot-set rotations.
    pub shift_every: u64,
}

/// A complete workload description.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Key-space size.
    pub keys: u64,
    /// Percentage of reads (0–100); the rest are updates.
    pub read_pct: u8,
    /// Value payload size in bytes (the paper uses 100).
    pub value_size: usize,
    /// Whether keys follow the power-law (zipfian) distribution rather
    /// than uniform.
    pub power_law: bool,
    /// When set, keys follow the shifting-hotspot distribution instead
    /// (takes precedence over `power_law`).
    pub hot_shift: Option<HotShift>,
}

impl Default for WorkloadConfig {
    /// The paper's 90:10 uniform cell.
    fn default() -> Self {
        WorkloadConfig::paper(90, false)
    }
}

impl WorkloadConfig {
    /// The paper's base configuration: 100 k keys, 100-byte values.
    pub fn paper(read_pct: u8, power_law: bool) -> Self {
        WorkloadConfig {
            keys: 100_000,
            read_pct,
            value_size: 100,
            power_law,
            hot_shift: None,
        }
    }

    /// The eight workload cells of Fig. 5: `{50:50, 75:25, 90:10, 99:1}`
    /// crossed with `{uniform, power-law}`, labelled as in the paper.
    pub fn figure5_cells() -> Vec<(String, WorkloadConfig)> {
        let mut cells = Vec::new();
        for &power_law in &[false, true] {
            for &read_pct in &[50u8, 75, 90, 99] {
                let suffix = if power_law { "P" } else { "U" };
                cells.push((
                    format!("{}:{} {}", read_pct, 100 - read_pct, suffix),
                    WorkloadConfig::paper(read_pct, power_law),
                ));
            }
        }
        cells
    }

    /// Builds the operation generator for this config.
    pub fn generator(&self) -> OpGenerator {
        let dist = if let Some(hs) = self.hot_shift {
            KeyDistribution::shifting_hotspot(
                self.keys,
                hs.hot_fraction,
                hs.hot_access,
                hs.shift_every,
            )
        } else if self.power_law {
            KeyDistribution::zipfian(self.keys, 0.99)
        } else {
            KeyDistribution::uniform(self.keys)
        };
        OpGenerator::new(dist, self.read_pct, self.value_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section7() {
        let w = WorkloadConfig::paper(90, false);
        assert_eq!(w.keys, 100_000);
        assert_eq!(w.value_size, 100);
        assert_eq!(w.read_pct, 90);
    }

    #[test]
    fn hot_shift_takes_precedence_over_power_law() {
        let w = WorkloadConfig {
            power_law: true,
            hot_shift: Some(HotShift {
                hot_fraction: 0.1,
                hot_access: 0.9,
                shift_every: 1000,
            }),
            ..WorkloadConfig::default()
        };
        use rand::SeedableRng;
        let mut gen = w.generator();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(gen.next_op(&mut rng).key() < w.keys);
        }
    }

    #[test]
    fn figure5_has_eight_cells() {
        let cells = WorkloadConfig::figure5_cells();
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().any(|(l, _)| l == "90:10 U"));
        assert!(cells.iter().any(|(l, _)| l == "50:50 P"));
    }
}
