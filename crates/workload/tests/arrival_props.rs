//! Property tests for the arrival processes: empirical rates must track
//! the configured offered load, and the shaped processes (diurnal, flash
//! crowd) must hit their programmed peak/trough ratios.

use eunomia_workload::arrival::ArrivalSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEC: u64 = 1_000_000_000;

/// Drives `spec` over `[0, secs)` and returns arrival timestamps (ns).
fn arrivals(spec: &ArrivalSpec, secs: u64, seed: u64) -> Vec<u64> {
    let mut p = spec.process();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    let end = secs * SEC;
    let mut out = Vec::new();
    loop {
        now += p.next_gap(now, &mut rng);
        if now >= end {
            return out;
        }
        out.push(now);
    }
}

fn rate_in_window(stamps: &[u64], from: u64, to: u64) -> f64 {
    let n = stamps.iter().filter(|&&t| t >= from && t < to).count();
    n as f64 / ((to - from) as f64 / SEC as f64)
}

proptest! {
    #[test]
    fn poisson_empirical_rate_within_5pct(
        rate_hz in 50.0f64..2_000.0,
        seed in 0u64..1_000,
    ) {
        let spec = ArrivalSpec::Poisson { rate_hz };
        // Scale the horizon so every case sees ≥ ~20k arrivals.
        let secs = ((20_000.0 / rate_hz).ceil() as u64).max(10);
        let n = arrivals(&spec, secs, seed).len() as f64;
        let empirical = n / secs as f64;
        let err = (empirical - rate_hz).abs() / rate_hz;
        prop_assert!(err < 0.05, "offered {rate_hz} Hz, got {empirical} Hz ({err:.3} rel err)");
    }

    #[test]
    fn mmpp_empirical_rate_within_5pct(
        low_hz in 50.0f64..200.0,
        burst_factor in 2.0f64..6.0,
        seed in 0u64..1_000,
    ) {
        let spec = ArrivalSpec::Mmpp {
            low_hz,
            high_hz: low_hz * burst_factor,
            dwell_low: 150_000_000,
            dwell_high: 50_000_000,
        };
        let offered = spec.mean_rate_hz();
        // ~1500 dwell cycles per run so phase-occupancy noise (the
        // dominant error term) averages well below the 5% bound.
        let secs = 300;
        let n = arrivals(&spec, secs, seed).len() as f64;
        let empirical = n / secs as f64;
        let err = (empirical - offered).abs() / offered;
        prop_assert!(err < 0.05, "offered {offered} Hz, got {empirical} Hz ({err:.3} rel err)");
    }

    #[test]
    fn diurnal_hits_programmed_peak_trough_ratio(
        mean_hz in 200.0f64..800.0,
        ratio in 2.0f64..6.0,
        seed in 0u64..1_000,
    ) {
        let period = 10 * SEC;
        let spec = ArrivalSpec::Diurnal { mean_hz, peak_to_trough: ratio, period };
        let stamps = arrivals(&spec, 100, seed);
        // Measure rates in narrow windows around the sine's extremes
        // (phase 0.25 and 0.75), pooled across all 10 cycles.
        let (mut peak_n, mut trough_n) = (0usize, 0usize);
        let half_win = period / 20; // ±5% of the period
        for cycle in 0..10u64 {
            let peak_t = cycle * period + period / 4;
            let trough_t = cycle * period + 3 * period / 4;
            peak_n += stamps.iter()
                .filter(|&&t| t >= peak_t - half_win && t < peak_t + half_win)
                .count();
            trough_n += stamps.iter()
                .filter(|&&t| t >= trough_t - half_win && t < trough_t + half_win)
                .count();
        }
        prop_assert!(trough_n > 0, "no trough arrivals at mean {mean_hz} Hz");
        let measured = peak_n as f64 / trough_n as f64;
        // The ±5%-period window averages the sine slightly below its
        // extremes, so allow 15% slack on the ratio itself.
        let err = (measured - ratio).abs() / ratio;
        prop_assert!(err < 0.15, "programmed ratio {ratio}, measured {measured} ({err:.3} rel err)");
    }

    #[test]
    fn flash_crowd_peak_is_multiplier_times_base(
        base_hz in 100.0f64..500.0,
        multiplier in 2.0f64..8.0,
        seed in 0u64..1_000,
    ) {
        let spec = ArrivalSpec::FlashCrowd {
            base_hz,
            multiplier,
            at: 10 * SEC,
            ramp: 2 * SEC,
            hold: 10 * SEC,
        };
        let stamps = arrivals(&spec, 40, seed);
        // Baseline before the ramp, peak inside the hold.
        let base_rate = rate_in_window(&stamps, 0, 10 * SEC);
        let peak_rate = rate_in_window(&stamps, 12 * SEC, 22 * SEC);
        let measured = peak_rate / base_rate;
        let err = (measured - multiplier).abs() / multiplier;
        prop_assert!(
            err < 0.15,
            "programmed multiplier {multiplier}, measured {measured} \
             (base {base_rate} Hz, peak {peak_rate} Hz)"
        );
    }
}

#[test]
fn trace_replay_rate_matches_trace_mean() {
    use eunomia_workload::arrival::CompactTrace;
    let trace = CompactTrace::sample_diurnal();
    let offered = trace.mean_rate_hz();
    let spec = ArrivalSpec::Trace(trace);
    let secs = 60; // five full 12 s cycles
    let n = arrivals(&spec, secs, 0).len() as f64;
    let empirical = n / secs as f64;
    let err = (empirical - offered).abs() / offered;
    assert!(err < 0.02, "offered {offered} Hz, got {empirical} Hz");
}
