//! Threaded sequencer service with chain-replicated fault tolerance.
//!
//! Mimics the traditional implementations the paper measures (§7.1):
//! every client operation performs a *synchronous* request/reply round
//! trip to the sequencer before completing — that round trip, not the
//! counter increment, is what caps throughput. The fault-tolerant variant
//! organizes replicas in a chain (van Renesse & Schneider): requests
//! enter at the head, traverse every replica, and the tail replies.

use crate::ThroughputTimeline;
use crossbeam::channel::{bounded, Receiver, Sender};
use eunomia_core::ids::ReplicaId;
use eunomia_core::sequencer::{chain_roles, ChainAction, ChainNode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Messages a chain node drains per wake: requests are tiny, so draining
/// the whole backlog under one synchronization round is what keeps the
/// sequencer's serialization cost in the counter, not the channel.
const DRAIN_MAX: usize = 128;

/// Runs one chain node's receive loop: drain a batch off the ring (block
/// for the first message when idle), feed each message to `handle`, stop
/// when `handle` returns `false` or every sender is gone.
fn node_loop(rx: &Receiver<ChainMsg>, mut handle: impl FnMut(ChainMsg) -> bool) {
    let mut batch: Vec<ChainMsg> = Vec::with_capacity(DRAIN_MAX);
    loop {
        batch.clear();
        if rx.try_recv_batch(&mut batch, DRAIN_MAX) == 0 {
            match rx.recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => return,
            }
        }
        for msg in batch.drain(..) {
            if !handle(msg) {
                return;
            }
        }
    }
}

/// Configuration for one sequencer-throughput run.
#[derive(Clone, Debug)]
pub struct SequencerBenchConfig {
    /// Number of client (partition-simulating) threads issuing
    /// back-to-back synchronous requests.
    pub clients: usize,
    /// Chain length (1 = non-fault-tolerant sequencer).
    pub chain: usize,
    /// Measured duration.
    pub duration: Duration,
}

impl Default for SequencerBenchConfig {
    fn default() -> Self {
        SequencerBenchConfig {
            clients: 16,
            chain: 1,
            duration: Duration::from_secs(3),
        }
    }
}

enum ChainMsg {
    /// A client request entering the head; the payload routes the reply.
    Request {
        client: usize,
    },
    /// A sequence number travelling down the chain.
    Forward {
        client: usize,
        seq: u64,
    },
    Stop,
}

/// Runs the threaded sequencer benchmark and returns the per-second
/// timeline of completed client operations.
pub fn run_sequencer(cfg: &SequencerBenchConfig) -> ThroughputTimeline {
    assert!(cfg.clients > 0 && cfg.chain > 0, "need clients and a chain");
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    // Reply channel per client (bounded(1): a client has one outstanding
    // request by construction).
    let mut reply_txs = Vec::new();
    let mut reply_rxs = Vec::new();
    for _ in 0..cfg.clients {
        let (tx, rx) = bounded::<u64>(1);
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }

    // One ring per chain node; requests enter node 0. Every client has at
    // most one outstanding request and each node adds at most one Stop, so
    // `clients + 1` slots mean sends can never block mid-chain.
    let node_cap = cfg.clients + 1;
    let mut node_txs: Vec<Sender<ChainMsg>> = Vec::new();
    let mut node_rxs: Vec<Receiver<ChainMsg>> = Vec::new();
    for _ in 0..cfg.chain {
        let (tx, rx) = bounded::<ChainMsg>(node_cap);
        node_txs.push(tx);
        node_rxs.push(rx);
    }

    let mut handles = Vec::new();
    if cfg.chain == 1 {
        // Non-replicated sequencer: one counter thread.
        let rx = node_rxs.into_iter().next().expect("one node");
        let reply_txs = reply_txs.clone();
        handles.push(std::thread::spawn(move || {
            let mut seq = 0u64;
            node_loop(&rx, |msg| match msg {
                ChainMsg::Request { client } => {
                    seq += 1;
                    let _ = reply_txs[client].send(seq);
                    true
                }
                ChainMsg::Forward { .. } => unreachable!("no forwards in a 1-chain"),
                ChainMsg::Stop => false,
            });
        }));
    } else {
        let roles = chain_roles(cfg.chain);
        for (i, rx) in node_rxs.into_iter().enumerate() {
            let mut node = ChainNode::new(ReplicaId(i as u32), roles[i]);
            let next = node_txs.get(i + 1).cloned();
            let reply_txs = reply_txs.clone();
            handles.push(std::thread::spawn(move || {
                node_loop(&rx, |msg| {
                    let (client, action) = match msg {
                        ChainMsg::Request { client } => (client, node.on_request()),
                        ChainMsg::Forward { client, seq } => (client, node.on_forward(seq)),
                        ChainMsg::Stop => return false,
                    };
                    match action {
                        ChainAction::Forward { seq } => {
                            let next = next.as_ref().expect("non-tail nodes forward");
                            let _ = next.send(ChainMsg::Forward { client, seq });
                        }
                        ChainAction::Reply { seq } => {
                            let _ = reply_txs[client].send(seq);
                        }
                    }
                    true
                });
            }));
        }
    }

    // Client threads: synchronous request/reply per operation.
    for (c, rx) in reply_rxs.into_iter().enumerate() {
        let head = node_txs[0].clone();
        let stop = stop.clone();
        let completed = completed.clone();
        handles.push(std::thread::spawn(move || {
            let mut last_seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if head.send(ChainMsg::Request { client: c }).is_err() {
                    return;
                }
                match rx.recv_timeout(Duration::from_millis(200)) {
                    Ok(seq) => {
                        debug_assert!(seq > last_seq, "sequence numbers must increase");
                        last_seq = seq;
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => return,
                }
            }
        }));
    }

    let start = Instant::now();
    let mut per_second = Vec::new();
    let mut last = 0u64;
    while start.elapsed() < cfg.duration {
        std::thread::sleep(Duration::from_millis(50).min(cfg.duration));
        let elapsed = start.elapsed();
        let whole_secs = per_second.len();
        if elapsed >= Duration::from_secs(whole_secs as u64 + 1) {
            let count = completed.load(Ordering::Relaxed);
            per_second.push(count - last);
            last = count;
        }
    }
    stop.store(true, Ordering::SeqCst);
    let _ = node_txs[0].send(ChainMsg::Stop);
    for tx in node_txs.iter().skip(1) {
        let _ = tx.send(ChainMsg::Stop);
    }
    let elapsed = start.elapsed();
    let total = completed.load(Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    ThroughputTimeline {
        per_second,
        total,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sequencer_serves_clients() {
        let t = run_sequencer(&SequencerBenchConfig {
            clients: 4,
            chain: 1,
            duration: Duration::from_millis(600),
        });
        assert!(t.total > 1_000, "completed only {}", t.total);
    }

    #[test]
    fn chain_of_three_serves_clients() {
        let t = run_sequencer(&SequencerBenchConfig {
            clients: 4,
            chain: 3,
            duration: Duration::from_millis(600),
        });
        assert!(t.total > 500, "completed only {}", t.total);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn chain_preserves_per_client_monotonicity_under_concurrency() {
        // With many clients hammering a 3-node chain, every client sees
        // strictly increasing numbers (asserted inside the client loop)
        // and the totals add up.
        let t = run_sequencer(&SequencerBenchConfig {
            clients: 8,
            chain: 3,
            duration: Duration::from_millis(500),
        });
        assert!(t.total > 100);
        assert!(t.per_second.iter().sum::<u64>() <= t.total);
    }

    #[test]
    fn longer_chains_do_not_outrun_shorter_ones() {
        let short = run_sequencer(&SequencerBenchConfig {
            clients: 8,
            chain: 1,
            duration: Duration::from_millis(500),
        });
        let long = run_sequencer(&SequencerBenchConfig {
            clients: 8,
            chain: 3,
            duration: Duration::from_millis(500),
        });
        // Three serialized hops can never beat one on the same hardware
        // (generous 1.2x slack for scheduler noise on loaded hosts).
        assert!(
            long.ops_per_sec() < short.ops_per_sec() * 1.2,
            "chain {} vs single {}",
            long.ops_per_sec(),
            short.ops_per_sec()
        );
    }
}
