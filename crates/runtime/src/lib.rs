#![warn(missing_docs)]

//! Real-thread Eunomia and sequencer services (§7.1 of the paper).
//!
//! The paper's service-level experiments bypass the datastore: load
//! generators connect *directly* to the ordering service, each simulating
//! one partition of a very large datacenter. This crate reproduces that
//! setup with OS threads and crossbeam channels:
//!
//! * [`service`] — the (optionally replicated) Eunomia service: feeder
//!   threads batch timestamped operation ids to every replica (prefix
//!   property via [`eunomia_core::replica::ReplicatedSender`]), replicas
//!   ingest/deduplicate, the leader stabilizes; crash injection and
//!   heartbeat-based fail-over for the Fig. 4 experiment.
//! * [`sequencer`] — the synchronous sequencer: client threads block on a
//!   request/reply round trip per operation; chain replication for its
//!   fault-tolerant variant.
//!
//! The machines differ from the authors' testbed (and this host time-
//! shares threads on few cores), so absolute numbers differ from the
//! paper; the structural contrast — batched asynchronous ingestion versus
//! one synchronous round trip per update — is what the benchmarks
//! exercise, and it is hardware-independent.

pub mod sequencer;
pub mod service;

use std::time::Duration;

/// A per-second throughput timeline plus totals.
#[derive(Clone, Debug)]
pub struct ThroughputTimeline {
    /// Operations completed in each whole second of the run.
    pub per_second: Vec<u64>,
    /// Total operations completed.
    pub total: u64,
    /// Wall-clock duration actually measured.
    pub elapsed: Duration,
}

impl ThroughputTimeline {
    /// Mean throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total as f64 / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_rate() {
        let t = ThroughputTimeline {
            per_second: vec![10, 20],
            total: 30,
            elapsed: Duration::from_secs(2),
        };
        assert!((t.ops_per_sec() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_is_zero_rate() {
        let t = ThroughputTimeline {
            per_second: vec![],
            total: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(t.ops_per_sec(), 0.0);
    }
}
