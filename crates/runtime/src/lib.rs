#![warn(missing_docs)]

//! Real-thread Eunomia and sequencer services (§7.1 of the paper).
//!
//! The paper's service-level experiments bypass the datastore: load
//! generators connect *directly* to the ordering service, each simulating
//! one partition of a very large datacenter. This crate reproduces that
//! setup with OS threads:
//!
//! * [`service`] — the (optionally replicated) Eunomia service: feeder
//!   threads batch timestamped operation ids to every replica (prefix
//!   property via [`eunomia_core::shard::LaneSender`]), replicas ingest
//!   batch frames, dedupe by watermark, the leader stabilizes; crash
//!   injection and heartbeat-based fail-over for the Fig. 4 experiment.
//! * [`sequencer`] — the synchronous sequencer: client threads block on a
//!   request/reply round trip per operation; chain replication for its
//!   fault-tolerant variant.
//!
//! # Hot-path architecture: rings, frames, lanes
//!
//! The threaded hot path is built from three pieces, bottom up:
//!
//! 1. **Lock-free ring channels.** Every queue between threads is a
//!    bounded MPMC ring (the vendored `crossbeam::channel::bounded`:
//!    Vyukov sequence slots, cache-line-padded head/tail, spin-then-park
//!    blocking). Hot loops drain with `try_recv_batch`, amortizing
//!    synchronization over whole backlogs instead of paying a
//!    lock/condvar round trip per message — the channel-shim tax the
//!    ROADMAP flagged on both sides of every service comparison.
//! 2. **Flat batch frames.** Ids travel in
//!    [`eunomia_core::shard::BatchFrame`]s: one allocation per batch,
//!    built by [`eunomia_core::shard::LaneSender`] with a binary search
//!    plus bulk copies out of its ordered window ring.
//! 3. **Sharded stabilizer.** Replicas run
//!    [`eunomia_core::shard::ShardedReplicaState`]: one lane per feeder
//!    holding ids in arrival order, at-least-once dedup by slicing a
//!    frame's already-seen prefix (one `partition_point`, not a per-id
//!    ordered-map probe), and the stable cutoff maintained as a
//!    tournament-tree min over lane watermarks
//!    (`eunomia_collections::TournamentTree` via `eunomia-core`), so a
//!    watermark advance costs `O(log lanes)` and the θ-tick reads the
//!    cutoff in `O(1)`.
//!
//! Per-run measurements (ids/s at stabilization, batch-size histogram,
//! ingest-queue high-water, stabilization-latency percentiles) accumulate
//! in [`eunomia_stats::ServiceStats`], returned by
//! [`service::run_eunomia_service_with_stats`] and carried on
//! `eunomia_geo::RunReport` next to the simulator's `EngineStats`.
//!
//! The machines differ from the authors' testbed (and this host time-
//! shares threads on few cores), so absolute numbers differ from the
//! paper; the structural contrast — batched asynchronous ingestion versus
//! one synchronous round trip per update — is what the benchmarks
//! exercise, and it is hardware-independent.

pub mod sequencer;
pub mod service;

use std::time::Duration;

/// A per-second throughput timeline plus totals.
#[derive(Clone, Debug)]
pub struct ThroughputTimeline {
    /// Operations completed in each whole second of the run.
    pub per_second: Vec<u64>,
    /// Total operations completed.
    pub total: u64,
    /// Wall-clock duration actually measured.
    pub elapsed: Duration,
}

impl ThroughputTimeline {
    /// Mean throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total as f64 / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_rate() {
        let t = ThroughputTimeline {
            per_second: vec![10, 20],
            total: 30,
            elapsed: Duration::from_secs(2),
        };
        assert!((t.ops_per_sec() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_is_zero_rate() {
        let t = ThroughputTimeline {
            per_second: vec![],
            total: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(t.ops_per_sec(), 0.0);
    }
}
