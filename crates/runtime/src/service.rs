//! Threaded Eunomia service with optional replication and crash injection.
//!
//! Topology per run:
//!
//! * `feeders` producer threads, each simulating one datacenter partition:
//!   it stamps operation ids with a [`ScalarHlc`] over the process
//!   monotonic clock, keeps at most `window_cap` unacknowledged ids (the
//!   §5 id-only metadata — payloads travel the data path and never touch
//!   Eunomia) in a [`LaneSender`] ring, and every `batch_interval` ships
//!   each replica one flat [`BatchFrame`] of everything that replica has
//!   not acknowledged.
//! * `replicas` service threads running [`ShardedReplicaState`]: frames
//!   are drained in batches off a lock-free ring channel, deduplicated by
//!   per-lane watermark (one binary search per frame, not one probe per
//!   id), and acknowledged with watermarks; every `theta` the current
//!   leader advances the tournament-tree stable cutoff, drains stable ids
//!   and publishes the stable time; the leader is the lowest-indexed
//!   replica with a fresh liveness beat, so killing it fails over after
//!   roughly `omega_timeout`.
//!
//! Throughput is counted at stabilization (operations leaving the service
//! towards remote datacenters), the same quantity the paper plots.
//! [`run_eunomia_service_with_stats`] additionally returns the
//! [`ServiceStats`] the hot path accumulates: ids/s at stabilization,
//! batch-size and stabilization-latency distributions, and the ingest
//! queue's high-water mark.

use crate::ThroughputTimeline;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use eunomia_core::ids::{PartitionId, ReplicaId};
use eunomia_core::shard::{BatchFrame, LaneSender, ShardedReplicaState};
use eunomia_core::time::{ScalarHlc, Timestamp};
use eunomia_stats::ServiceStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for one service-throughput run.
#[derive(Clone, Debug)]
pub struct EunomiaBenchConfig {
    /// Number of feeder (partition-simulating) threads.
    pub feeders: usize,
    /// Number of Eunomia replicas (1 = the non-fault-tolerant service).
    pub replicas: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Feeder batching interval (the paper uses 1 ms).
    pub batch_interval: Duration,
    /// Stabilization period θ.
    pub theta: Duration,
    /// Maximum unacknowledged ids per feeder (backpressure bound).
    pub window_cap: usize,
    /// Crash schedule: `(when, replica_index)`.
    pub crashes: Vec<(Duration, usize)>,
    /// Liveness timeout for leader fail-over.
    pub omega_timeout: Duration,
}

impl Default for EunomiaBenchConfig {
    fn default() -> Self {
        EunomiaBenchConfig {
            feeders: 16,
            replicas: 1,
            duration: Duration::from_secs(3),
            batch_interval: Duration::from_millis(1),
            theta: Duration::from_millis(1),
            window_cap: 4096,
            crashes: Vec::new(),
            omega_timeout: Duration::from_millis(100),
        }
    }
}

enum ToReplica {
    Frame(BatchFrame),
    Stop,
}

/// Frames drained per replica wake (bounds the scratch buffer; the ring
/// capacity is `feeders * 4`, so one constant covers every config).
const DRAIN_MAX: usize = 256;

struct Shared {
    stop: AtomicBool,
    alive: Vec<AtomicBool>,
    beats: Vec<AtomicU64>,
    global_stable: AtomicU64,
    stabilized: AtomicU64,
    epoch: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Leader = lowest-indexed replica with a fresh beat; `None` while
    /// everyone looks dead.
    fn leader(&self, omega_timeout: Duration) -> Option<usize> {
        let now = self.now_ns();
        let timeout = omega_timeout.as_nanos() as u64;
        (0..self.alive.len()).find(|&r| {
            self.alive[r].load(Ordering::Relaxed)
                && now.saturating_sub(self.beats[r].load(Ordering::Relaxed)) <= timeout
        })
    }
}

fn feeder_loop(
    partition: PartitionId,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    to_replicas: &[Sender<ToReplica>],
    acks: &Receiver<(ReplicaId, Timestamp)>,
) {
    let mut hlc = ScalarHlc::new();
    let mut sender = LaneSender::new(cfg.replicas);
    let mut dead = vec![false; cfg.replicas];
    let mut ack_buf: Vec<(ReplicaId, Timestamp)> = Vec::with_capacity(64);
    // Send-window tracking: transmit each id once and retransmit from the
    // ack only after a timeout without ack progress (at-least-once; the
    // prefix property holds because replicas slice off duplicates by
    // watermark).
    let retransmit_after = cfg.batch_interval * 10 + Duration::from_millis(5);
    let mut last_sent = vec![Timestamp::ZERO; cfg.replicas];
    let mut last_progress = vec![Instant::now(); cfg.replicas];
    // Per-replica spare frame buffers: a frame that could not be sent
    // (ring full) hands its allocation back here, so a saturated replica
    // costs a binary search + copy per interval, not an alloc too.
    let mut spares: Vec<Vec<Timestamp>> = vec![Vec::new(); cfg.replicas];
    let mut backoff = cfg.batch_interval;
    while !shared.stop.load(Ordering::Relaxed) {
        // Drain acks in one batch (and detect replicas the supervisor
        // declared dead so their silence stops pinning the window).
        ack_buf.clear();
        acks.try_recv_batch(&mut ack_buf, usize::MAX);
        for &(r, ts) in &ack_buf {
            if ts > sender.ack_of(r) {
                last_progress[r.index()] = Instant::now();
            }
            sender.on_ack(r, ts);
        }
        for (r, dead_flag) in dead.iter_mut().enumerate() {
            if !*dead_flag && !shared.alive[r].load(Ordering::Relaxed) {
                *dead_flag = true;
                sender.mark_dead(ReplicaId(r as u32));
            }
        }
        // Generate eagerly up to the window cap (ids only, §5). The
        // physical clock is read once per refill; the HLC's logical bump
        // keeps ids strictly monotone within the burst.
        let room = cfg.window_cap.saturating_sub(sender.window_len());
        let physical = Timestamp(shared.now_ns());
        for _ in 0..room {
            sender.push(hlc.tick_local(physical));
        }
        // Ship per-replica frames.
        let heartbeat = if sender.window_len() == 0
            && hlc.heartbeat_due(physical, cfg.batch_interval.as_nanos() as u64)
        {
            Some(hlc.heartbeat(Timestamp(shared.now_ns())))
        } else {
            None
        };
        let mut sent_something = false;
        for (r, tx) in to_replicas.iter().enumerate() {
            if dead[r] {
                continue;
            }
            let rid = ReplicaId(r as u32);
            let floor = if last_progress[r].elapsed() > retransmit_after {
                last_progress[r] = Instant::now();
                Timestamp::ZERO // Retransmit everything unacked.
            } else {
                last_sent[r] // New ids only.
            };
            let spare = std::mem::take(&mut spares[r]);
            let frame = sender.build_frame(partition, rid, floor, heartbeat, spare);
            if frame.ids.is_empty() && heartbeat.is_none() {
                spares[r] = frame.ids;
                continue;
            }
            let newest = frame.ids.last().copied();
            // A full channel means the replica is saturated; drop and rely
            // on the retransmission timeout. `last_sent` advances only on
            // a successful send: advancing it for a dropped frame would
            // make the next frame skip the dropped ids, the replica's
            // watermark would jump the gap, and the ack would prune them
            // from the window unsent — every frame must stay a contiguous
            // suffix of the unacked stream (the `shard` dedup contract).
            match tx.try_send(ToReplica::Frame(frame)) {
                Ok(()) => {
                    sent_something = true;
                    if let Some(ts) = newest {
                        last_sent[r] = last_sent[r].max(ts);
                    }
                }
                Err(TrySendError::Full(ToReplica::Frame(f)))
                | Err(TrySendError::Disconnected(ToReplica::Frame(f))) => {
                    spares[r] = f.ids;
                }
                Err(_) => {}
            }
        }
        // Adaptive pacing: a feeder whose window is full and which shipped
        // nothing has nothing to contribute until acks arrive — back off so
        // idle feeders do not steal CPU from the service on small hosts
        // (the paper's feeders are separate machines).
        if sent_something || room > 0 {
            backoff = cfg.batch_interval;
        } else {
            backoff = (backoff * 2).min(cfg.batch_interval * 16);
        }
        std::thread::sleep(backoff);
    }
}

fn replica_loop(
    me: usize,
    n_partitions: usize,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    rx: &Receiver<ToReplica>,
    ack_txs: &[Sender<(ReplicaId, Timestamp)>],
) -> ServiceStats {
    let mut state = ShardedReplicaState::new(ReplicaId(me as u32), n_partitions);
    let mut stats = ServiceStats::default();
    let mut next_theta = Instant::now() + cfg.theta;
    let mut frames: Vec<ToReplica> = Vec::with_capacity(DRAIN_MAX);
    let mut latency_scratch: Vec<u64> = Vec::new();
    let rid = ReplicaId(me as u32);
    'run: loop {
        if shared.stop.load(Ordering::Relaxed) || !shared.alive[me].load(Ordering::Relaxed) {
            break 'run;
        }
        // Batch ingestion: drain whatever is queued in one sweep; park
        // until the next θ tick only when the ring is empty.
        frames.clear();
        stats.queue_depth_high_water = stats.queue_depth_high_water.max(rx.len() as u64);
        if rx.try_recv_batch(&mut frames, DRAIN_MAX) == 0 {
            let timeout = next_theta.saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok(msg) => frames.push(msg),
                Err(RecvTimeoutError::Disconnected) => break 'run,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        for msg in frames.drain(..) {
            let frame = match msg {
                ToReplica::Frame(f) => f,
                ToReplica::Stop => break 'run,
            };
            let ack = state
                .ingest(&frame)
                .expect("bench wiring guarantees valid partitions");
            stats.frames += 1;
            stats.batch_sizes.record(frame.ids.len() as u64);
            let _ = ack_txs[frame.partition.index()].try_send((rid, ack));
        }
        if Instant::now() >= next_theta {
            next_theta = Instant::now() + cfg.theta;
            shared.beats[me].store(shared.now_ns(), Ordering::Relaxed);
            let leader = shared.leader(cfg.omega_timeout);
            state.set_leader(ReplicaId(leader.unwrap_or(me) as u32));
            if leader == Some(me) {
                // Tentatively drain, buffering latencies; count (and
                // flush the latency samples) only if this drain advanced
                // the globally published stable time, so overlapping
                // leaders during fail-over can neither double-count nor
                // double-sample the histogram.
                let now = shared.now_ns();
                latency_scratch.clear();
                let scratch = &mut latency_scratch;
                let stable = state.leader_process_stable_with(|_, ts| {
                    scratch.push(now.saturating_sub(ts.0));
                });
                if let Some(stable) = stable {
                    let prev = shared.global_stable.fetch_max(stable.0, Ordering::SeqCst);
                    if prev < stable.0 {
                        stats.stabilized_ids += latency_scratch.len() as u64;
                        shared
                            .stabilized
                            .fetch_add(latency_scratch.len() as u64, Ordering::Relaxed);
                        for &ns in &latency_scratch {
                            stats.stabilization_latency.record(ns);
                        }
                    }
                }
            } else {
                let stable = Timestamp(shared.global_stable.load(Ordering::Relaxed));
                state.apply_stable(stable);
            }
        }
    }
    stats.accepted_ids = state.total_accepted();
    stats.duplicate_ids = state.total_duplicates();
    stats
}

/// Runs the threaded Eunomia service benchmark.
///
/// Returns the per-second stabilization timeline. With `cfg.crashes`
/// non-empty, replicas die at the scheduled offsets (the Fig. 4 setup).
pub fn run_eunomia_service(cfg: &EunomiaBenchConfig) -> ThroughputTimeline {
    run_eunomia_service_with_stats(cfg).0
}

/// Runs the threaded Eunomia service benchmark and also returns the
/// merged [`ServiceStats`] of all replicas (batch sizes, queue depths,
/// stabilization latency, ids/s).
pub fn run_eunomia_service_with_stats(
    cfg: &EunomiaBenchConfig,
) -> (ThroughputTimeline, ServiceStats) {
    assert!(
        cfg.feeders > 0 && cfg.replicas > 0,
        "need feeders and replicas"
    );
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        alive: (0..cfg.replicas).map(|_| AtomicBool::new(true)).collect(),
        beats: (0..cfg.replicas).map(|_| AtomicU64::new(0)).collect(),
        global_stable: AtomicU64::new(0),
        stabilized: AtomicU64::new(0),
        epoch: Instant::now(),
    });

    let mut replica_txs = Vec::new();
    let mut replica_rxs = Vec::new();
    for _ in 0..cfg.replicas {
        let (tx, rx) = bounded::<ToReplica>(cfg.feeders * 4);
        replica_txs.push(tx);
        replica_rxs.push(rx);
    }
    let mut ack_txs = Vec::new();
    let mut ack_rxs = Vec::new();
    for _ in 0..cfg.feeders {
        // Watermark acks supersede each other: a full ring just drops an
        // ack the next one covers.
        let (tx, rx) = bounded::<(ReplicaId, Timestamp)>(cfg.replicas * 16);
        ack_txs.push(tx);
        ack_rxs.push(rx);
    }

    let mut replica_handles = Vec::new();
    let mut feeder_handles = Vec::new();
    for (me, rx) in replica_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let shared = shared.clone();
        let ack_txs = ack_txs.clone();
        replica_handles.push(std::thread::spawn(move || {
            replica_loop(me, cfg.feeders, &cfg, &shared, &rx, &ack_txs)
        }));
    }
    for (p, rx) in ack_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let shared = shared.clone();
        let txs = replica_txs.clone();
        feeder_handles.push(std::thread::spawn(move || {
            feeder_loop(PartitionId(p as u32), &cfg, &shared, &txs, &rx);
        }));
    }

    // Sampling + crash-injection loop.
    let start = Instant::now();
    let mut per_second = Vec::new();
    let mut last_count = 0u64;
    let mut crashes = cfg.crashes.clone();
    crashes.sort_by_key(|(t, _)| *t);
    let mut crash_idx = 0;
    let mut next_sample = start + Duration::from_secs(1);
    while start.elapsed() < cfg.duration {
        let next_crash = crashes.get(crash_idx).map(|(t, _)| start + *t);
        let wake = match next_crash {
            Some(c) if c < next_sample => c,
            _ => next_sample,
        };
        let now = Instant::now();
        if wake > now {
            std::thread::sleep((wake - now).min(Duration::from_millis(50)));
        }
        if let Some((t, r)) = crashes.get(crash_idx) {
            if start.elapsed() >= *t {
                shared.alive[*r].store(false, Ordering::SeqCst);
                crash_idx += 1;
            }
        }
        if Instant::now() >= next_sample {
            let count = shared.stabilized.load(Ordering::Relaxed);
            per_second.push(count - last_count);
            last_count = count;
            next_sample += Duration::from_secs(1);
        }
    }
    shared.stop.store(true, Ordering::SeqCst);
    for tx in &replica_txs {
        let _ = tx.try_send(ToReplica::Stop);
    }
    let elapsed = start.elapsed();
    for h in feeder_handles {
        let _ = h.join();
    }
    let mut stats = ServiceStats::default();
    for h in replica_handles {
        if let Ok(s) = h.join() {
            stats.merge(&s);
        }
    }
    stats.elapsed = elapsed;
    // The shared counter is authoritative (a replica killed mid-update
    // may not have flushed its local copy).
    let total = shared.stabilized.load(Ordering::Relaxed);
    stats.stabilized_ids = total;
    (
        ThroughputTimeline {
            per_second,
            total,
            elapsed,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(feeders: usize, replicas: usize) -> EunomiaBenchConfig {
        EunomiaBenchConfig {
            feeders,
            replicas,
            duration: Duration::from_millis(800),
            window_cap: 512,
            ..EunomiaBenchConfig::default()
        }
    }

    #[test]
    fn single_replica_stabilizes_operations() {
        let (t, stats) = run_eunomia_service_with_stats(&quick(4, 1));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        assert_eq!(stats.stabilized_ids, t.total);
        assert!(stats.frames > 0);
        assert!(stats.batch_sizes.count() > 0);
        assert!(
            stats.stabilization_latency.count() >= t.total,
            "every stabilized id contributes a latency sample"
        );
        let p50 = stats.stabilization_latency_ms(50.0).unwrap();
        assert!(p50 > 0.0, "stabilization takes nonzero time: {p50}");
    }

    #[test]
    fn replicated_service_still_makes_progress() {
        let (t, stats) = run_eunomia_service_with_stats(&quick(4, 3));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        // All three replicas ingest every frame at least once.
        assert!(stats.accepted_ids >= 3 * t.total, "replicas ingest 3x");
    }

    #[test]
    fn crash_of_only_replica_halts_progress() {
        let mut cfg = quick(2, 1);
        cfg.duration = Duration::from_millis(2300);
        cfg.crashes = vec![(Duration::from_millis(300), 0)];
        let t = run_eunomia_service(&cfg);
        // Something was stabilized before the crash, and the second whole
        // second (entirely post-crash) shows nothing.
        assert!(t.total > 0);
        assert!(
            t.per_second.len() >= 2,
            "timeline too short: {:?}",
            t.per_second
        );
        assert_eq!(
            t.per_second[1], 0,
            "progress should stop after the crash: {:?}",
            t.per_second
        );
    }

    #[test]
    fn crash_of_leader_fails_over_with_three_replicas() {
        let mut cfg = quick(2, 3);
        cfg.duration = Duration::from_millis(2500);
        cfg.omega_timeout = Duration::from_millis(60);
        cfg.crashes = vec![(Duration::from_millis(600), 0)];
        let t = run_eunomia_service(&cfg);
        // Ops continue to stabilize after the leader dies.
        let tail: u64 = t.per_second.iter().skip(1).sum();
        assert!(tail > 0, "no progress after fail-over: {:?}", t.per_second);
    }
}
