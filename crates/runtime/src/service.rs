//! Threaded Eunomia service with optional replication and crash injection.
//!
//! Topology per run:
//!
//! * `feeders` producer threads, each simulating one datacenter partition:
//!   it stamps operation ids with a [`ScalarHlc`] over the process
//!   monotonic clock, keeps at most `window_cap` unacknowledged ids (the
//!   §5 id-only metadata — payloads travel the data path and never touch
//!   Eunomia) in a [`LaneSender`] ring, and every `batch_interval` ships
//!   each replica one flat [`BatchFrame`] of everything that replica has
//!   not acknowledged.
//! * `replicas` service threads running [`ShardedReplicaState`]: frames
//!   are drained in batches off a lock-free ring channel, deduplicated by
//!   per-lane watermark (one binary search per frame, not one probe per
//!   id), and acknowledged with watermarks; every `theta` the current
//!   leader advances the tournament-tree stable cutoff, drains stable ids
//!   and publishes the stable time; the leader is the lowest-indexed
//!   replica with a fresh liveness beat, so killing it fails over after
//!   roughly `omega_timeout`.
//!
//! # Flow control: credits, not drops
//!
//! Every ack a replica returns is a [`CreditGrant`]: its watermark plus
//! how many more ids it will accept from that lane
//! (`credit = (budget - lane_backlog) * (1 - queue_fill)`, see
//! [`ShardedReplicaState::advertise`]) and a pressure byte (ingest-ring
//! fill). Feeders honour the grant — a lane whose credit is exhausted
//! ships nothing and backs off instead of blind-resending — and size
//! frames by pressure: at low pressure whatever is pending ships
//! immediately (latency), near the high-water mark small dribbles are
//! held back until a full frame accumulates (throughput, and 256+
//! feeders stop churning the ring with tiny frames). Replicas
//! re-advertise throttled lanes on the stabilization tick so a parked
//! feeder reopens without polling. The retransmission timeout survives
//! only as a safety net for lost grants; it is bounded by the credit
//! window, so a slow replica throttles its feeders instead of amplifying
//! them into a duplicate storm.
//!
//! Throughput is counted at stabilization (operations leaving the service
//! towards remote datacenters), the same quantity the paper plots.
//! [`run_eunomia_service_with_stats`] additionally returns the
//! [`ServiceStats`] the hot path accumulates: ids/s at stabilization,
//! batch-size and stabilization-latency distributions, the ingest
//! queue's high-water mark, and the flow-control signals (credit stalls,
//! retransmitted ids, the advertised-window timeline).

use crate::ThroughputTimeline;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use eunomia_core::ids::{PartitionId, ReplicaId};
use eunomia_core::shard::{BatchFrame, CreditGrant, LaneSender, ShardedReplicaState};
use eunomia_core::time::{ScalarHlc, Timestamp};
use eunomia_stats::ServiceStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for one service-throughput run.
#[derive(Clone, Debug)]
pub struct EunomiaBenchConfig {
    /// Number of feeder (partition-simulating) threads.
    pub feeders: usize,
    /// Number of Eunomia replicas (1 = the non-fault-tolerant service).
    pub replicas: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Feeder batching interval (the paper uses 1 ms).
    pub batch_interval: Duration,
    /// Stabilization period θ.
    pub theta: Duration,
    /// Maximum unacknowledged ids per feeder (backpressure bound).
    pub window_cap: usize,
    /// Per-lane credit budget at each replica: the most
    /// accepted-but-unstable ids a replica buffers for one lane before
    /// its advertised credit reaches zero. By Little's law the budget
    /// caps per-lane throughput at `credit_budget / stabilization
    /// latency`, so it must cover the lane's bandwidth-delay product —
    /// size it as a memory-exposure bound (the default is 16x the
    /// default window), not a rate limiter.
    pub credit_budget: usize,
    /// Ack-progress timeout after which a feeder re-ships a lane's
    /// unacknowledged ids (still inside the credit window) — the
    /// at-least-once safety net for lost grants.
    pub retransmit_after: Duration,
    /// Offered load per feeder in ids/s; `None` means closed-loop (each
    /// feeder generates as fast as its window drains — a capacity probe).
    /// The paper's deployment model is the rate-limited one: each feeder
    /// is a datacenter partition with its own bounded operation stream,
    /// and scaling the partition count scales the offered load until the
    /// service saturates.
    pub feeder_rate: Option<u64>,
    /// Crash schedule: `(when, replica_index)`.
    pub crashes: Vec<(Duration, usize)>,
    /// Liveness timeout for leader fail-over.
    pub omega_timeout: Duration,
}

impl Default for EunomiaBenchConfig {
    fn default() -> Self {
        EunomiaBenchConfig {
            feeders: 16,
            replicas: 1,
            duration: Duration::from_secs(3),
            batch_interval: Duration::from_millis(1),
            theta: Duration::from_millis(1),
            window_cap: 4096,
            credit_budget: 65536,
            retransmit_after: Duration::from_secs(5),
            feeder_rate: None,
            crashes: Vec::new(),
            omega_timeout: Duration::from_millis(100),
        }
    }
}

enum ToReplica {
    Frame(BatchFrame),
    Stop,
}

/// Frames drained per replica wake. Small enough that a saturated
/// replica still checks the θ clock every few milliseconds (a 256-frame
/// sweep is ~15 ms of ingest — late θ ticks inflate the unstable
/// backlog and stabilization latency), large enough to amortize the
/// ring's batch drain.
const DRAIN_MAX: usize = 64;

/// Hard cap on ids per frame, bounding the per-frame allocation.
const MAX_FRAME_IDS: usize = 4096;

/// How long a pressure-gated lane may hold small frames back before
/// shipping anyway (x `batch_interval`) — bounds the latency cost of
/// coalescing for throughput.
const COALESCE_DEADLINE_INTERVALS: u32 = 8;

/// Frame ring capacity per replica; one definition shared by channel
/// construction and the replica's queue-fill (pressure) computation.
/// Scales with the feeder count: shallower rings concentrate producer
/// contention on the ring's head (hundreds of feeders retrying a full
/// ring slow the consumer too), which costs more than the queued frames'
/// cache footprint saves.
fn frame_ring_capacity(cfg: &EunomiaBenchConfig) -> usize {
    cfg.feeders * 4
}

struct Shared {
    stop: AtomicBool,
    alive: Vec<AtomicBool>,
    beats: Vec<AtomicU64>,
    global_stable: AtomicU64,
    stabilized: AtomicU64,
    epoch: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Leader as seen by replica `me`: the lowest-indexed live replica
    /// with a fresh beat. A replica executing this check is trivially
    /// alive to itself — the beat freshness test applies only to *other*
    /// replicas, else a tick delayed past `omega_timeout` by ingest load
    /// makes a lone replica disown its own leadership and stabilization
    /// halts. `None` while everyone looks dead.
    fn leader(&self, me: usize, omega_timeout: Duration) -> Option<usize> {
        let now = self.now_ns();
        let timeout = omega_timeout.as_nanos() as u64;
        (0..self.alive.len()).find(|&r| {
            self.alive[r].load(Ordering::Relaxed)
                && (r == me || now.saturating_sub(self.beats[r].load(Ordering::Relaxed)) <= timeout)
        })
    }
}

/// Lowers the calling thread's scheduling priority (nice +5). The
/// paper's feeders are separate machines; in-process they compete with
/// the replica threads for CPU, and a fair scheduler gives N feeders N
/// shares against the one replica that needs most of a core — at 256
/// feeders the service starves in its own benchmark. Raising nice is
/// unprivileged; raw syscalls keep the crate dependency-free.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn deprioritize_current_thread() {
    // SAFETY: gettid takes no arguments and setpriority(PRIO_PROCESS,
    // tid, 5) only affects this thread; both are harmless on failure.
    unsafe {
        let tid: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 186i64 => tid, // SYS_gettid
            out("rcx") _,
            out("r11") _,
        );
        let mut ret: i64 = 141; // SYS_setpriority
        std::arch::asm!(
            "syscall",
            inlateout("rax") ret,
            in("rdi") 0i64, // PRIO_PROCESS
            in("rsi") tid,
            in("rdx") 5i64, // nice +5
            out("rcx") _,
            out("r11") _,
        );
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn deprioritize_current_thread() {}

fn feeder_loop(
    partition: PartitionId,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    to_replicas: &[Sender<ToReplica>],
    grants: &Receiver<CreditGrant>,
) -> ServiceStats {
    deprioritize_current_thread();
    let mut stats = ServiceStats::default();
    let mut hlc = ScalarHlc::new();
    let mut sender = LaneSender::new(cfg.replicas);
    let mut dead = vec![false; cfg.replicas];
    let mut grant_buf: Vec<CreditGrant> = Vec::with_capacity(64);
    // Per-replica pressure (last grant's ingest-ring fill, 0..=255) and
    // the coalescing clock: under pressure a lane holds small frames back
    // until a full one accumulates or the deadline passes.
    let mut pressure = vec![0u8; cfg.replicas];
    let mut last_ship = vec![Instant::now(); cfg.replicas];
    let mut last_progress = vec![Instant::now(); cfg.replicas];
    // Per-replica EWMA of the ship-to-grant round trip — the retransmit
    // threshold's unit and the park-timeout fallback. Wakes themselves
    // are event-driven: the replica unparks this thread when it issues
    // the lane a grant, so the estimate measures the true round trip
    // rather than the feeder's own sleep.
    let mut rtt_est = vec![cfg.batch_interval; cfg.replicas];
    // Pacing jitter (xorshift, seeded by lane id): feeders sharing one
    // RTT phase-lock into convoys — everyone ships together, the replica
    // chews the burst, everyone sleeps together and the ring runs dry.
    // Randomizing each sleep +/-a third keeps arrivals spread out.
    let mut jitter_state = (0x9E37_79B9_7F4A_7C15u64 ^ u64::from(partition.0)) | 1;
    let mut jitter = move |d: Duration| {
        jitter_state ^= jitter_state << 13;
        jitter_state ^= jitter_state >> 7;
        jitter_state ^= jitter_state << 17;
        d * (667 + (jitter_state % 667) as u32) / 1000
    };
    let coalesce_deadline = cfg.batch_interval * COALESCE_DEADLINE_INTERVALS;
    // Open-loop rate limiting: ids this feeder was entitled to generate
    // so far is `rate * elapsed`; the deficit after a stall is burned
    // down as fast as the window drains (queue-building semantics, the
    // same contract as the open-loop load subsystem). Rate-limited lanes
    // also wake on accumulation, not the closed-loop cadence: a wake is
    // only worth its context switch if a quarter-frame of ids accrued.
    let rate_start = Instant::now();
    let mut generated: u64 = 0;
    let accrual_floor = cfg.feeder_rate.map(|r| {
        Duration::from_nanos((MAX_FRAME_IDS as u64 / 4).saturating_mul(1_000_000_000) / r.max(1))
    });
    // Per-replica spare frame buffers: a frame that could not be sent
    // (ring full) hands its allocation back here, so a saturated replica
    // costs a binary search + copy per interval, not an alloc too.
    let mut spares: Vec<Vec<Timestamp>> = vec![Vec::new(); cfg.replicas];
    let mut backoff = cfg.batch_interval;
    while !shared.stop.load(Ordering::Relaxed) {
        // Drain grants in one batch (and detect replicas the supervisor
        // declared dead so their silence stops pinning the window).
        grant_buf.clear();
        grants.try_recv_batch(&mut grant_buf, usize::MAX);
        for &g in &grant_buf {
            let r = g.replica.index();
            // Any grant is progress: the replica is alive and talking, so
            // the retransmission timeout (a lost-grant safety net, not a
            // liveness probe) must not fire merely because the watermark
            // paused while the replica drains a deep ring.
            last_progress[r] = Instant::now();
            pressure[r] = g.pressure;
            if g.ack > sender.ack_of(g.replica) {
                // Elapsed-since-last-ship under-estimates the true round
                // trip when several frames are in flight; an EWMA biased
                // low only shortens the park-timeout fallback, which is
                // the safe direction.
                let sample = last_ship[r].elapsed();
                rtt_est[r] = (rtt_est[r] * 7 + sample) / 8;
            }
            sender.on_grant(g);
        }
        for (r, dead_flag) in dead.iter_mut().enumerate() {
            if !*dead_flag && !shared.alive[r].load(Ordering::Relaxed) {
                *dead_flag = true;
                sender.mark_dead(ReplicaId(r as u32));
            }
        }
        // Generate eagerly up to the window cap (ids only, §5). The
        // physical clock is read once per refill; the HLC's logical bump
        // keeps ids strictly monotone within the burst.
        let mut room = cfg.window_cap.saturating_sub(sender.window_len());
        if let Some(rate) = cfg.feeder_rate {
            let entitled =
                (rate_start.elapsed().as_nanos() as u64).saturating_mul(rate) / 1_000_000_000;
            room = room.min(entitled.saturating_sub(generated) as usize);
        }
        generated += room as u64;
        let physical = Timestamp(shared.now_ns());
        for _ in 0..room {
            sender.push(hlc.tick_local(physical));
        }
        // Ship per-replica frames, honouring each replica's credit.
        let heartbeat = if sender.window_len() == 0
            && hlc.heartbeat_due(physical, cfg.batch_interval.as_nanos() as u64)
        {
            Some(hlc.heartbeat(Timestamp(shared.now_ns())))
        } else {
            None
        };
        let mut sent_something = false;
        for (r, tx) in to_replicas.iter().enumerate() {
            if dead[r] {
                continue;
            }
            let rid = ReplicaId(r as u32);
            // The retransmission timeout scales with the observed round
            // trip: a fixed constant misfires the moment scheduling delay
            // exceeds it (1024 threads on one core see multi-second acks)
            // and every misfire is a duplicate storm in miniature.
            let timed_out = sender.in_flight(rid) > 0
                && last_progress[r].elapsed() > cfg.retransmit_after.max(rtt_est[r] * 8);
            let sendable = sender.sendable(rid);
            if sendable == 0 && !timed_out && heartbeat.is_none() {
                // EXHAUSTED: the credit window admits nothing. Park the
                // lane; the replica re-advertises on its theta tick.
                if sender.starved(rid) {
                    stats.credit_stalls += 1;
                }
                continue;
            }
            // Pressure-adaptive frame sizing: at pressure 0 ship whatever
            // is pending (small frames, low latency); as the replica's
            // ring fills, hold dribbles back until a full frame (or the
            // deadline) so overload ships few, large frames. Rate-limited
            // lanes floor this at a quarter frame — a grant doorbell must
            // not flush every dribble the accrual clock has admitted.
            let rate_floor = if cfg.feeder_rate.is_some() {
                MAX_FRAME_IDS / 4
            } else {
                0
            };
            let min_ship = (pressure[r] as usize * MAX_FRAME_IDS / 255)
                .max(rate_floor)
                .min(sender.credit_of(rid) as usize)
                .min(cfg.window_cap);
            // A rate-limited lane takes `min_ship / rate` to accrue a
            // frame worth shipping; holding it to the closed-loop
            // deadline would flush pressure-sized frames as dribbles and
            // melt the overload regime into a wake storm.
            let deadline = match cfg.feeder_rate {
                Some(rate) if rate > 0 => coalesce_deadline.max(Duration::from_nanos(
                    (min_ship as u64).saturating_mul(1_000_000_000) / rate,
                )),
                _ => coalesce_deadline,
            };
            if sendable < min_ship
                && !timed_out
                && heartbeat.is_none()
                && last_ship[r].elapsed() < deadline
            {
                continue;
            }
            let floor = if timed_out {
                last_progress[r] = Instant::now();
                Timestamp::ZERO // Re-ship everything unacked (credit-bounded).
            } else {
                sender.sent_of(rid) // New ids only.
            };
            let sent_before = sender.sent_of(rid);
            let spare = std::mem::take(&mut spares[r]);
            let frame = sender.build_frame(partition, rid, floor, heartbeat, MAX_FRAME_IDS, spare);
            if frame.ids.is_empty() && heartbeat.is_none() {
                spares[r] = frame.ids;
                continue;
            }
            let newest = frame.ids.last().copied();
            let resent = frame.ids.partition_point(|&ts| ts <= sent_before) as u64;
            // A full channel defers the frame; nothing is counted as sent
            // (`note_sent` advances only on success: skipping ids would
            // break the contiguous-suffix contract the watermark dedup
            // relies on), so the next pass re-builds the same suffix.
            match tx.try_send(ToReplica::Frame(frame)) {
                Ok(()) => {
                    sent_something = true;
                    last_ship[r] = Instant::now();
                    stats.retransmitted_ids += resent;
                    if let Some(ts) = newest {
                        sender.note_sent(rid, ts);
                    }
                }
                Err(TrySendError::Full(ToReplica::Frame(f)))
                | Err(TrySendError::Disconnected(ToReplica::Frame(f))) => {
                    stats.ring_full_stalls += 1;
                    spares[r] = f.ids;
                }
                Err(_) => {}
            }
        }
        // Event-driven pacing. After shipping, the next actionable moment
        // is the grant for that frame — and the replica *unparks* this
        // thread when it issues one, so the park timeout is only a
        // fallback (lost grant, dead replica). Earlier revisions paced by
        // sleeping a guessed fraction of the RTT; at 256 feeders the
        // estimate absorbed ring-queueing delay, the lanes phase-locked
        // into burst/starve oscillation, and the replica sat idle a third
        // of the run. A pass that neither shipped nor heard grants —
        // window fully in flight, credit-starved, ring full — backs off
        // exponentially instead of stealing CPU from the service on small
        // hosts (the paper's feeders are separate machines).
        backoff = if sent_something {
            let next_grant = dead
                .iter()
                .zip(&rtt_est)
                .filter(|(d, _)| !**d)
                .map(|(_, rtt)| *rtt * 2)
                .min()
                .unwrap_or(cfg.batch_interval);
            next_grant.clamp(cfg.batch_interval, cfg.batch_interval * 64)
        } else {
            // Shipped nothing: every wake until the window reopens is a
            // context switch taken from the replica that would have
            // refilled the credits, so back off exponentially. Hearing a
            // grant is no reason to reset — an actionable grant would
            // have made the ship loop send (the branch above); a
            // zero-credit grant is just the replica saying "still full".
            // Starved lanes are woken by the grant doorbell, not the
            // clock — they may park for whole seconds without adding
            // latency.
            (backoff * 2).min(cfg.batch_interval * 1024)
        };
        let mut park = backoff;
        if let Some(floor) = accrual_floor {
            // A rate-limited lane whose window is not full is waiting on
            // its own accrual, not on the service.
            if sender.window_len() < cfg.window_cap {
                park = park.max(floor);
            }
        }
        std::thread::park_timeout(jitter(park));
    }
    stats
}

fn replica_loop(
    me: usize,
    n_partitions: usize,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    rx: &Receiver<ToReplica>,
    ack_txs: &[Sender<CreditGrant>],
    feeders: &[std::thread::Thread],
) -> ServiceStats {
    let mut state = ShardedReplicaState::new(ReplicaId(me as u32), n_partitions);
    let mut stats = ServiceStats::default();
    let mut next_theta = Instant::now() + cfg.theta;
    let mut frames: Vec<ToReplica> = Vec::with_capacity(DRAIN_MAX);
    let mut latency_scratch: Vec<u64> = Vec::new();
    let ring_cap = frame_ring_capacity(cfg) as f64;
    let budget = cfg.credit_budget.min(u32::MAX as usize) as u32;
    // Last credit advertised per lane: the theta tick re-advertises lanes
    // it throttled (a parked feeder must not have to poll to reopen).
    let mut advertised: Vec<u32> = vec![u32::MAX; n_partitions];
    'run: loop {
        if shared.stop.load(Ordering::Relaxed) || !shared.alive[me].load(Ordering::Relaxed) {
            break 'run;
        }
        // Batch ingestion: drain whatever is queued in one sweep; park
        // until the next θ tick only when the ring is empty.
        frames.clear();
        stats.queue_depth_high_water = stats.queue_depth_high_water.max(rx.len() as u64);
        if rx.try_recv_batch(&mut frames, DRAIN_MAX) == 0 {
            let timeout = next_theta.saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok(msg) => frames.push(msg),
                Err(RecvTimeoutError::Disconnected) => break 'run,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // Beat per sweep, not just per theta tick: a replica buried in
        // ingest is alive, and its peers must not steal leadership from
        // it merely because its theta clock ran late.
        shared.beats[me].store(shared.now_ns(), Ordering::Relaxed);
        for msg in frames.drain(..) {
            let frame = match msg {
                ToReplica::Frame(f) => f,
                ToReplica::Stop => break 'run,
            };
            let lane = frame.partition;
            let n_ids = frame.ids.len() as u64;
            state
                .ingest_owned(frame)
                .expect("bench wiring guarantees valid partitions");
            stats.frames += 1;
            stats.batch_sizes.record(n_ids);
            // Watermark + credit in one grant: the ack the feeder prunes
            // by, the window it may fill, the pressure it sizes frames by.
            // The unpark is the grant's doorbell — feeders park between
            // frames rather than poll, so delivery must wake them. But
            // only a credit worth a context switch rings it: unparking a
            // thousand overloaded lanes to hand each a zero is a wake
            // storm that starves the very drain that would refill the
            // credits (the grant still flows; parked feeders pick it up
            // at their next timeout wake).
            let fill = rx.len() as f64 / ring_cap;
            if let Some(grant) = state.advertise(lane, fill, budget) {
                let lane = lane.index();
                advertised[lane] = grant.credit;
                stats.advertised_credits.record(grant.credit as u64);
                let sec = (shared.now_ns() / 1_000_000_000) as usize;
                stats.record_credit(sec, grant.credit as u64);
                if ack_txs[lane].try_send(grant).is_ok()
                    && grant.credit as usize >= MAX_FRAME_IDS / 4
                {
                    feeders[lane].unpark();
                }
            }
        }
        if Instant::now() >= next_theta {
            next_theta = Instant::now() + cfg.theta;
            shared.beats[me].store(shared.now_ns(), Ordering::Relaxed);
            let leader = shared.leader(me, cfg.omega_timeout);
            state.set_leader(ReplicaId(leader.unwrap_or(me) as u32));
            if leader == Some(me) {
                // Tentatively drain, buffering latencies; count (and
                // flush the latency samples) only if this drain advanced
                // the globally published stable time, so overlapping
                // leaders during fail-over can neither double-count nor
                // double-sample the histogram.
                let now = shared.now_ns();
                latency_scratch.clear();
                let scratch = &mut latency_scratch;
                let stable = state.leader_process_stable_with(|_, ts| {
                    scratch.push(now.saturating_sub(ts.0));
                });
                if let Some(stable) = stable {
                    let prev = shared.global_stable.fetch_max(stable.0, Ordering::SeqCst);
                    if prev < stable.0 {
                        stats.stabilized_ids += latency_scratch.len() as u64;
                        shared
                            .stabilized
                            .fetch_add(latency_scratch.len() as u64, Ordering::Relaxed);
                        for &ns in &latency_scratch {
                            stats.stabilization_latency.record(ns);
                        }
                    }
                }
            } else {
                let stable = Timestamp(shared.global_stable.load(Ordering::Relaxed));
                state.apply_stable(stable);
            }
            // Re-advertise throttled lanes: stabilization just freed
            // backlog (and the drain above freed ring slots), so parked
            // feeders learn their window reopened without polling. Lanes
            // advertised at half the budget or more are still OPEN and
            // will be refreshed by their own next frame's grant.
            let fill = rx.len() as f64 / ring_cap;
            for lane in 0..n_partitions {
                if advertised[lane] >= budget / 2 {
                    continue;
                }
                if let Some(grant) = state.advertise(PartitionId(lane as u32), fill, budget) {
                    // Ring the doorbell only on the reopening *edge*: a
                    // lane already holding workable credit is pacing on
                    // its own accrual, and re-waking every throttled
                    // lane every tick is the wake storm all over again.
                    let reopened = advertised[lane] < (MAX_FRAME_IDS / 4) as u32
                        && grant.credit as usize >= MAX_FRAME_IDS / 4;
                    advertised[lane] = grant.credit;
                    stats.advertised_credits.record(grant.credit as u64);
                    let sec = (shared.now_ns() / 1_000_000_000) as usize;
                    stats.record_credit(sec, grant.credit as u64);
                    if ack_txs[lane].try_send(grant).is_ok() && reopened {
                        feeders[lane].unpark();
                    }
                }
            }
        }
    }
    stats.accepted_ids = state.total_accepted();
    stats.duplicate_ids = state.total_duplicates();
    stats
}

/// Runs the threaded Eunomia service benchmark.
///
/// Returns the per-second stabilization timeline. With `cfg.crashes`
/// non-empty, replicas die at the scheduled offsets (the Fig. 4 setup).
pub fn run_eunomia_service(cfg: &EunomiaBenchConfig) -> ThroughputTimeline {
    run_eunomia_service_with_stats(cfg).0
}

/// Runs the threaded Eunomia service benchmark and also returns the
/// merged [`ServiceStats`] of all replicas (batch sizes, queue depths,
/// stabilization latency, ids/s).
pub fn run_eunomia_service_with_stats(
    cfg: &EunomiaBenchConfig,
) -> (ThroughputTimeline, ServiceStats) {
    assert!(
        cfg.feeders > 0 && cfg.replicas > 0,
        "need feeders and replicas"
    );
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        alive: (0..cfg.replicas).map(|_| AtomicBool::new(true)).collect(),
        beats: (0..cfg.replicas).map(|_| AtomicU64::new(0)).collect(),
        global_stable: AtomicU64::new(0),
        stabilized: AtomicU64::new(0),
        epoch: Instant::now(),
    });

    let mut replica_txs = Vec::new();
    let mut replica_rxs = Vec::new();
    for _ in 0..cfg.replicas {
        let (tx, rx) = bounded::<ToReplica>(frame_ring_capacity(cfg));
        replica_txs.push(tx);
        replica_rxs.push(rx);
    }
    let mut ack_txs = Vec::new();
    let mut ack_rxs = Vec::new();
    for _ in 0..cfg.feeders {
        // Credit grants supersede each other: a full ring just drops a
        // grant the next one covers. Sized so a backed-off feeder (up to
        // 16 intervals asleep) cannot miss a window-reopening refresh.
        let (tx, rx) = bounded::<CreditGrant>(cfg.replicas * 64);
        ack_txs.push(tx);
        ack_rxs.push(rx);
    }

    // Feeders first: replicas need their `Thread` handles to ring the
    // grant doorbell (`unpark`) when a credit window reopens.
    let mut feeder_handles = Vec::new();
    for (p, rx) in ack_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let shared = shared.clone();
        let txs = replica_txs.clone();
        feeder_handles.push(std::thread::spawn(move || {
            feeder_loop(PartitionId(p as u32), &cfg, &shared, &txs, &rx)
        }));
    }
    let feeder_threads: Arc<Vec<std::thread::Thread>> =
        Arc::new(feeder_handles.iter().map(|h| h.thread().clone()).collect());
    let mut replica_handles = Vec::new();
    for (me, rx) in replica_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let shared = shared.clone();
        let ack_txs = ack_txs.clone();
        let feeder_threads = feeder_threads.clone();
        replica_handles.push(std::thread::spawn(move || {
            replica_loop(
                me,
                cfg.feeders,
                &cfg,
                &shared,
                &rx,
                &ack_txs,
                &feeder_threads,
            )
        }));
    }

    // Sampling + crash-injection loop.
    let start = Instant::now();
    let mut per_second = Vec::new();
    let mut last_count = 0u64;
    let mut crashes = cfg.crashes.clone();
    crashes.sort_by_key(|(t, _)| *t);
    let mut crash_idx = 0;
    let mut next_sample = start + Duration::from_secs(1);
    while start.elapsed() < cfg.duration {
        let next_crash = crashes.get(crash_idx).map(|(t, _)| start + *t);
        let wake = match next_crash {
            Some(c) if c < next_sample => c,
            _ => next_sample,
        };
        let now = Instant::now();
        if wake > now {
            std::thread::sleep((wake - now).min(Duration::from_millis(50)));
        }
        if let Some((t, r)) = crashes.get(crash_idx) {
            if start.elapsed() >= *t {
                shared.alive[*r].store(false, Ordering::SeqCst);
                crash_idx += 1;
            }
        }
        if Instant::now() >= next_sample {
            let count = shared.stabilized.load(Ordering::Relaxed);
            per_second.push(count - last_count);
            last_count = count;
            next_sample += Duration::from_secs(1);
        }
    }
    shared.stop.store(true, Ordering::SeqCst);
    for tx in &replica_txs {
        let _ = tx.try_send(ToReplica::Stop);
    }
    for t in feeder_threads.iter() {
        t.unpark();
    }
    let elapsed = start.elapsed();
    let mut stats = ServiceStats::default();
    for h in feeder_handles {
        if let Ok(s) = h.join() {
            stats.merge(&s);
        }
    }
    for h in replica_handles {
        if let Ok(s) = h.join() {
            stats.merge(&s);
        }
    }
    stats.elapsed = elapsed;
    // The shared counter is authoritative (a replica killed mid-update
    // may not have flushed its local copy).
    let total = shared.stabilized.load(Ordering::Relaxed);
    stats.stabilized_ids = total;
    (
        ThroughputTimeline {
            per_second,
            total,
            elapsed,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(feeders: usize, replicas: usize) -> EunomiaBenchConfig {
        EunomiaBenchConfig {
            feeders,
            replicas,
            duration: Duration::from_millis(800),
            window_cap: 512,
            ..EunomiaBenchConfig::default()
        }
    }

    #[test]
    fn single_replica_stabilizes_operations() {
        let (t, stats) = run_eunomia_service_with_stats(&quick(4, 1));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        assert_eq!(stats.stabilized_ids, t.total);
        assert!(stats.frames > 0);
        assert!(stats.batch_sizes.count() > 0);
        assert!(
            stats.stabilization_latency.count() >= t.total,
            "every stabilized id contributes a latency sample"
        );
        let p50 = stats.stabilization_latency_ms(50.0).unwrap();
        assert!(p50 > 0.0, "stabilization takes nonzero time: {p50}");
    }

    #[test]
    fn replicated_service_still_makes_progress() {
        let (t, stats) = run_eunomia_service_with_stats(&quick(4, 3));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        // All three replicas ingest every frame at least once.
        assert!(stats.accepted_ids >= 3 * t.total, "replicas ingest 3x");
    }

    /// The regression the credit protocol exists for: at 256 feeders the
    /// drop-on-full ack ring re-sent hundreds of millions of ids
    /// (238M at 256x3 in the pre-credit committed sweep). With flow
    /// control and the retransmission timeout effectively disabled,
    /// overload must throttle at the source: zero duplicates, while the
    /// service still makes progress.
    #[test]
    fn overloaded_256_feeders_produce_zero_duplicates() {
        let cfg = EunomiaBenchConfig {
            feeders: 256,
            replicas: 1,
            duration: Duration::from_millis(900),
            window_cap: 512,
            // No safety-net retransmissions: every duplicate would be a
            // flow-control bug, so pin the count to exactly zero.
            retransmit_after: Duration::from_secs(3600),
            ..EunomiaBenchConfig::default()
        };
        let (t, stats) = run_eunomia_service_with_stats(&cfg);
        assert!(t.total > 0, "overloaded service must still make progress");
        assert_eq!(
            stats.duplicate_ids, 0,
            "credit flow control must not re-send ids under overload"
        );
        assert_eq!(stats.retransmitted_ids, 0);
        assert!(
            stats.advertised_credits.count() > 0,
            "replicas must advertise credit windows"
        );
    }

    #[test]
    fn crash_of_only_replica_halts_progress() {
        let mut cfg = quick(2, 1);
        cfg.duration = Duration::from_millis(2300);
        cfg.crashes = vec![(Duration::from_millis(300), 0)];
        let t = run_eunomia_service(&cfg);
        // Something was stabilized before the crash, and the second whole
        // second (entirely post-crash) shows nothing.
        assert!(t.total > 0);
        assert!(
            t.per_second.len() >= 2,
            "timeline too short: {:?}",
            t.per_second
        );
        assert_eq!(
            t.per_second[1], 0,
            "progress should stop after the crash: {:?}",
            t.per_second
        );
    }

    #[test]
    fn crash_of_leader_fails_over_with_three_replicas() {
        let mut cfg = quick(2, 3);
        cfg.duration = Duration::from_millis(2500);
        cfg.omega_timeout = Duration::from_millis(60);
        cfg.crashes = vec![(Duration::from_millis(600), 0)];
        let t = run_eunomia_service(&cfg);
        // Ops continue to stabilize after the leader dies.
        let tail: u64 = t.per_second.iter().skip(1).sum();
        assert!(tail > 0, "no progress after fail-over: {:?}", t.per_second);
    }
}
