//! Threaded Eunomia service with optional replication and crash injection.
//!
//! Topology per run:
//!
//! * `feeders` producer threads, each simulating one datacenter partition:
//!   it stamps operation ids with a [`ScalarHlc`] over the process
//!   monotonic clock, keeps at most `window_cap` unacknowledged ids (the
//!   §5 id-only metadata — payloads travel the data path and never touch
//!   Eunomia), and every `batch_interval` sends each replica everything
//!   that replica has not acknowledged.
//! * `replicas` service threads running [`ReplicaState`]: ingest batches,
//!   deduplicate (at-least-once delivery), ack; every `theta` the current
//!   leader drains stable operations and publishes the stable time; the
//!   leader is the lowest-indexed replica with a fresh liveness beat, so
//!   killing it fails over after roughly `omega_timeout`.
//!
//! Throughput is counted at stabilization (operations leaving the service
//! towards remote datacenters), the same quantity the paper plots.

use crate::ThroughputTimeline;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use eunomia_core::ids::{PartitionId, ReplicaId};
use eunomia_core::replica::{ReplicaState, ReplicatedSender};
use eunomia_core::time::{ScalarHlc, Timestamp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for one service-throughput run.
#[derive(Clone, Debug)]
pub struct EunomiaBenchConfig {
    /// Number of feeder (partition-simulating) threads.
    pub feeders: usize,
    /// Number of Eunomia replicas (1 = the non-fault-tolerant service).
    pub replicas: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Feeder batching interval (the paper uses 1 ms).
    pub batch_interval: Duration,
    /// Stabilization period θ.
    pub theta: Duration,
    /// Maximum unacknowledged ids per feeder (backpressure bound).
    pub window_cap: usize,
    /// Crash schedule: `(when, replica_index)`.
    pub crashes: Vec<(Duration, usize)>,
    /// Liveness timeout for leader fail-over.
    pub omega_timeout: Duration,
}

impl Default for EunomiaBenchConfig {
    fn default() -> Self {
        EunomiaBenchConfig {
            feeders: 16,
            replicas: 1,
            duration: Duration::from_secs(3),
            batch_interval: Duration::from_millis(1),
            theta: Duration::from_millis(1),
            window_cap: 4096,
            crashes: Vec::new(),
            omega_timeout: Duration::from_millis(100),
        }
    }
}

enum ToReplica {
    Batch {
        partition: PartitionId,
        ops: Vec<(Timestamp, ())>,
        heartbeat: Option<Timestamp>,
    },
    Stop,
}

struct Shared {
    stop: AtomicBool,
    alive: Vec<AtomicBool>,
    beats: Vec<AtomicU64>,
    global_stable: AtomicU64,
    stabilized: AtomicU64,
    epoch: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Leader = lowest-indexed replica with a fresh beat; `None` while
    /// everyone looks dead.
    fn leader(&self, omega_timeout: Duration) -> Option<usize> {
        let now = self.now_ns();
        let timeout = omega_timeout.as_nanos() as u64;
        (0..self.alive.len()).find(|&r| {
            self.alive[r].load(Ordering::Relaxed)
                && now.saturating_sub(self.beats[r].load(Ordering::Relaxed)) <= timeout
        })
    }
}

fn feeder_loop(
    partition: PartitionId,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    to_replicas: &[Sender<ToReplica>],
    acks: &Receiver<(ReplicaId, Timestamp)>,
) {
    let mut hlc = ScalarHlc::new();
    let mut sender: ReplicatedSender<()> = ReplicatedSender::new(cfg.replicas);
    let mut dead = vec![false; cfg.replicas];
    // Send-window tracking: transmit each id once and retransmit from the
    // ack only after a timeout without ack progress (at-least-once; the
    // prefix property holds because replicas deduplicate by timestamp).
    let retransmit_after = cfg.batch_interval * 10 + Duration::from_millis(5);
    let mut last_sent = vec![Timestamp::ZERO; cfg.replicas];
    let mut last_progress = vec![Instant::now(); cfg.replicas];
    let mut backoff = cfg.batch_interval;
    while !shared.stop.load(Ordering::Relaxed) {
        // Drain acks (and detect replicas the supervisor declared dead so
        // their silence stops pinning the window).
        while let Ok((r, ts)) = acks.try_recv() {
            if ts > sender.ack_of(r) {
                last_progress[r.index()] = Instant::now();
            }
            sender.on_ack(r, ts);
        }
        for (r, dead_flag) in dead.iter_mut().enumerate() {
            if !*dead_flag && !shared.alive[r].load(Ordering::Relaxed) {
                *dead_flag = true;
                sender.mark_dead(ReplicaId(r as u32));
            }
        }
        // Generate eagerly up to the window cap (ids only, §5).
        let room = cfg.window_cap.saturating_sub(sender.window_len());
        for _ in 0..room {
            let ts = hlc.tick_local(Timestamp(shared.now_ns()));
            sender.push(ts, ());
        }
        // Ship per-replica batches.
        let physical = Timestamp(shared.now_ns());
        let heartbeat = if sender.window_len() == 0
            && hlc.heartbeat_due(physical, cfg.batch_interval.as_nanos() as u64)
        {
            Some(hlc.heartbeat(physical))
        } else {
            None
        };
        let mut sent_something = false;
        for (r, tx) in to_replicas.iter().enumerate() {
            if dead[r] {
                continue;
            }
            let rid = ReplicaId(r as u32);
            let floor = if last_progress[r].elapsed() > retransmit_after {
                last_progress[r] = Instant::now();
                sender.ack_of(rid) // Retransmit everything unacked.
            } else {
                sender.ack_of(rid).max(last_sent[r]) // New ids only.
            };
            let ops = sender.batch_above(floor);
            if ops.is_empty() && heartbeat.is_none() {
                continue;
            }
            if let Some((ts, _)) = ops.last() {
                last_sent[r] = last_sent[r].max(*ts);
            }
            // A full channel means the replica is saturated; drop and rely
            // on the retransmission timeout.
            if tx
                .try_send(ToReplica::Batch {
                    partition,
                    ops,
                    heartbeat,
                })
                .is_ok()
            {
                sent_something = true;
            }
        }
        // Adaptive pacing: a feeder whose window is full and which shipped
        // nothing has nothing to contribute until acks arrive — back off so
        // idle feeders do not steal CPU from the service on small hosts
        // (the paper's feeders are separate machines).
        if sent_something || room > 0 {
            backoff = cfg.batch_interval;
        } else {
            backoff = (backoff * 2).min(cfg.batch_interval * 16);
        }
        std::thread::sleep(backoff);
    }
}

fn replica_loop(
    me: usize,
    n_partitions: usize,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    rx: &Receiver<ToReplica>,
    ack_txs: &[Sender<(ReplicaId, Timestamp)>],
) {
    let mut state: ReplicaState<()> = ReplicaState::new(ReplicaId(me as u32), n_partitions);
    let mut next_theta = Instant::now() + cfg.theta;
    let mut drained: Vec<(eunomia_core::buffer::OpKey, ())> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) || !shared.alive[me].load(Ordering::Relaxed) {
            return;
        }
        let timeout = next_theta.saturating_duration_since(Instant::now());
        match rx.recv_timeout(timeout) {
            Ok(ToReplica::Batch {
                partition,
                ops,
                heartbeat,
            }) => {
                let mut ack = state
                    .new_batch(partition, ops)
                    .expect("bench wiring guarantees valid partitions");
                if let Some(hb) = heartbeat {
                    ack = state.heartbeat(partition, hb).expect("valid partition");
                }
                let _ = ack_txs[partition.index()].try_send((ReplicaId(me as u32), ack));
            }
            Ok(ToReplica::Stop) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
        if Instant::now() >= next_theta {
            next_theta = Instant::now() + cfg.theta;
            shared.beats[me].store(shared.now_ns(), Ordering::Relaxed);
            let leader = shared.leader(cfg.omega_timeout);
            state.set_leader(ReplicaId(leader.unwrap_or(me) as u32));
            if leader == Some(me) {
                drained.clear();
                if let Some(stable) = state.leader_process_stable(&mut drained) {
                    // Publish the stable time; count each stabilized op
                    // exactly once across leaders via a max-CAS.
                    let new = stable.0;
                    let prev = shared.global_stable.fetch_max(new, Ordering::SeqCst);
                    if prev < new {
                        shared
                            .stabilized
                            .fetch_add(drained.len() as u64, Ordering::Relaxed);
                    }
                }
            } else {
                let stable = Timestamp(shared.global_stable.load(Ordering::Relaxed));
                state.apply_stable(stable);
            }
        }
    }
}

/// Runs the threaded Eunomia service benchmark.
///
/// Returns the per-second stabilization timeline. With `cfg.crashes`
/// non-empty, replicas die at the scheduled offsets (the Fig. 4 setup).
pub fn run_eunomia_service(cfg: &EunomiaBenchConfig) -> ThroughputTimeline {
    assert!(
        cfg.feeders > 0 && cfg.replicas > 0,
        "need feeders and replicas"
    );
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        alive: (0..cfg.replicas).map(|_| AtomicBool::new(true)).collect(),
        beats: (0..cfg.replicas).map(|_| AtomicU64::new(0)).collect(),
        global_stable: AtomicU64::new(0),
        stabilized: AtomicU64::new(0),
        epoch: Instant::now(),
    });

    let mut replica_txs = Vec::new();
    let mut replica_rxs = Vec::new();
    for _ in 0..cfg.replicas {
        let (tx, rx) = bounded::<ToReplica>(cfg.feeders * 4);
        replica_txs.push(tx);
        replica_rxs.push(rx);
    }
    let mut ack_txs = Vec::new();
    let mut ack_rxs = Vec::new();
    for _ in 0..cfg.feeders {
        let (tx, rx) = unbounded::<(ReplicaId, Timestamp)>();
        ack_txs.push(tx);
        ack_rxs.push(rx);
    }

    let mut handles = Vec::new();
    for (me, rx) in replica_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let shared = shared.clone();
        let ack_txs = ack_txs.clone();
        handles.push(std::thread::spawn(move || {
            replica_loop(me, cfg.feeders, &cfg, &shared, &rx, &ack_txs);
        }));
    }
    for (p, rx) in ack_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let shared = shared.clone();
        let txs = replica_txs.clone();
        handles.push(std::thread::spawn(move || {
            feeder_loop(PartitionId(p as u32), &cfg, &shared, &txs, &rx);
        }));
    }

    // Sampling + crash-injection loop.
    let start = Instant::now();
    let mut per_second = Vec::new();
    let mut last_count = 0u64;
    let mut crashes = cfg.crashes.clone();
    crashes.sort_by_key(|(t, _)| *t);
    let mut crash_idx = 0;
    let mut next_sample = start + Duration::from_secs(1);
    while start.elapsed() < cfg.duration {
        let next_crash = crashes.get(crash_idx).map(|(t, _)| start + *t);
        let wake = match next_crash {
            Some(c) if c < next_sample => c,
            _ => next_sample,
        };
        let now = Instant::now();
        if wake > now {
            std::thread::sleep((wake - now).min(Duration::from_millis(50)));
        }
        if let Some((t, r)) = crashes.get(crash_idx) {
            if start.elapsed() >= *t {
                shared.alive[*r].store(false, Ordering::SeqCst);
                crash_idx += 1;
            }
        }
        if Instant::now() >= next_sample {
            let count = shared.stabilized.load(Ordering::Relaxed);
            per_second.push(count - last_count);
            last_count = count;
            next_sample += Duration::from_secs(1);
        }
    }
    shared.stop.store(true, Ordering::SeqCst);
    for tx in &replica_txs {
        let _ = tx.try_send(ToReplica::Stop);
    }
    let elapsed = start.elapsed();
    for h in handles {
        let _ = h.join();
    }
    let total = shared.stabilized.load(Ordering::Relaxed);
    ThroughputTimeline {
        per_second,
        total,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(feeders: usize, replicas: usize) -> EunomiaBenchConfig {
        EunomiaBenchConfig {
            feeders,
            replicas,
            duration: Duration::from_millis(800),
            window_cap: 512,
            ..EunomiaBenchConfig::default()
        }
    }

    #[test]
    fn single_replica_stabilizes_operations() {
        let t = run_eunomia_service(&quick(4, 1));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
    }

    #[test]
    fn replicated_service_still_makes_progress() {
        let t = run_eunomia_service(&quick(4, 3));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
    }

    #[test]
    fn crash_of_only_replica_halts_progress() {
        let mut cfg = quick(2, 1);
        cfg.duration = Duration::from_millis(2300);
        cfg.crashes = vec![(Duration::from_millis(300), 0)];
        let t = run_eunomia_service(&cfg);
        // Something was stabilized before the crash, and the second whole
        // second (entirely post-crash) shows nothing.
        assert!(t.total > 0);
        assert!(
            t.per_second.len() >= 2,
            "timeline too short: {:?}",
            t.per_second
        );
        assert_eq!(
            t.per_second[1], 0,
            "progress should stop after the crash: {:?}",
            t.per_second
        );
    }

    #[test]
    fn crash_of_leader_fails_over_with_three_replicas() {
        let mut cfg = quick(2, 3);
        cfg.duration = Duration::from_millis(2500);
        cfg.omega_timeout = Duration::from_millis(60);
        cfg.crashes = vec![(Duration::from_millis(600), 0)];
        let t = run_eunomia_service(&cfg);
        // Ops continue to stabilize after the leader dies.
        let tail: u64 = t.per_second.iter().skip(1).sum();
        assert!(tail > 0, "no progress after fail-over: {:?}", t.per_second);
    }
}
