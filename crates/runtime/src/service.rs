//! Threaded Eunomia service with optional replication and crash injection.
//!
//! Topology per run:
//!
//! * `feeders` logical partition lanes, driven by
//!   `feeders / lanes_per_feeder` producer threads. Each thread owns a
//!   [`MuxSender`] — the paper's proxy deployment, one node fronting many
//!   partitions: per lane it stamps operation ids with a [`ScalarHlc`]
//!   (the §5 id-only metadata — payloads travel the data path and never
//!   touch Eunomia) and keeps the lane's unacknowledged ids in an ordered
//!   window ring, while the thread shares one pooled id budget, one grant
//!   ring, and one park/unpark doorbell across all its lanes. Every
//!   `batch_interval` it ships each replica one flat [`BatchFrame`] per
//!   lane with pending ids; frames carry the lane tag, so the replica's
//!   dedup semantics are identical to one-thread-per-lane.
//! * `replicas` service replicas, each split into `stabilizers` shard
//!   threads: every shard owns a contiguous slice of the lane table as a
//!   [`ShardedReplicaState`], drains its own frame ring in batches,
//!   dedups by per-lane watermark (one binary search per frame, not one
//!   probe per id) and coalesces the sweep's acks into one [`GrantBatch`]
//!   per feeder thread. Every `theta` each shard runs the tournament-tree
//!   cutoff over *its* lanes, publishes the per-shard minimum, folds the
//!   other shards' published minima into the global stable cutoff, and —
//!   on the current leader — drains its lanes' stable prefix up to that
//!   cutoff. The leader is the lowest-indexed replica with a fresh
//!   liveness beat, so killing it fails over after roughly
//!   `omega_timeout`; a killed replica can be revived mid-run
//!   ([`EunomiaBenchConfig::revives`]) and rejoins by resend from the
//!   feeders' window floors (state transfer, not replay).
//!
//! # Flow control: credits, not drops
//!
//! Every ack a replica returns is a
//! [`CreditGrant`](eunomia_core::shard::CreditGrant): its watermark plus
//! how many more ids it will accept from that lane
//! (`credit = (budget - lane_backlog) * (1 - queue_fill)`, see
//! [`ShardedReplicaState::advertise`]) and a pressure byte (ingest-ring
//! fill). Feeders honour the grant — a lane whose credit is exhausted
//! ships nothing and backs off instead of blind-resending — and size
//! frames by pressure: at low pressure whatever is pending ships
//! immediately (latency), near the high-water mark small dribbles are
//! held back until a full frame accumulates (throughput). The
//! retransmission timeout survives only as a safety net for lost grants.
//!
//! # Grant batching: one doorbell per feeder thread, not per lane
//!
//! Acks are not sent per frame: a shard folds every grant of one drain
//! sweep into a single [`GrantBatch`] ring entry per feeder thread (max
//! ack, latest credit per lane) and rings that thread's doorbell at most
//! once per batch — and only when the batch carries a credit worth a
//! context switch (per-frame grants) or a lane's window crossed the
//! reopening edge (theta re-advertisements). At 1024 lanes the
//! per-lane doorbell storm used to starve the very drain that refills
//! the credits; one enqueue + one unpark amortized over all lanes a
//! thread owns is what breaks that knee.
//!
//! Throughput is counted at stabilization (operations leaving the service
//! towards remote datacenters), the same quantity the paper plots.
//! [`run_eunomia_service_with_stats`] additionally returns the
//! [`ServiceStats`] the hot path accumulates: ids/s at stabilization,
//! batch-size and stabilization-latency distributions, per-shard theta
//! sweep timings, grant-batch occupancy, and the flow-control signals
//! (credit stalls, retransmitted ids, the advertised-window timeline).

use crate::ThroughputTimeline;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use eunomia_core::ids::{PartitionId, ReplicaId};
use eunomia_core::shard::{BatchFrame, GrantBatch, GrantCoalescer, MuxSender, ShardedReplicaState};
use eunomia_core::time::{ScalarHlc, Timestamp};
use eunomia_stats::ServiceStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Configuration for one service-throughput run.
#[derive(Clone, Debug)]
pub struct EunomiaBenchConfig {
    /// Number of logical feeder lanes (partitions). Each lane is one
    /// bounded operation stream; `lanes_per_feeder` controls how many of
    /// them share one OS thread.
    pub feeders: usize,
    /// Logical lanes multiplexed onto one feeder thread (the paper's
    /// proxy model: one node fronts many partitions). `1` reproduces the
    /// thread-per-lane deployment; the spawned thread count is
    /// `feeders.div_ceil(lanes_per_feeder)`.
    pub lanes_per_feeder: usize,
    /// Number of Eunomia replicas (1 = the non-fault-tolerant service).
    pub replicas: usize,
    /// Stabilizer shard threads per replica: the lane table is split
    /// into this many contiguous slices, each swept by its own thread
    /// (per-shard tournament-tree minima folded into the global cutoff
    /// by a cheap combiner). `1` reproduces the single-threaded sweep.
    pub stabilizers: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Feeder batching interval (the paper uses 1 ms).
    pub batch_interval: Duration,
    /// Stabilization period θ.
    pub theta: Duration,
    /// Maximum unacknowledged ids per lane (backpressure bound). A mux
    /// thread pools this: its budget is `window_cap x lanes`, any single
    /// lane may borrow up to `2 x window_cap` of it.
    pub window_cap: usize,
    /// Per-lane credit budget at each replica: the most
    /// accepted-but-unstable ids a replica buffers for one lane before
    /// its advertised credit reaches zero. By Little's law the budget
    /// caps per-lane throughput at `credit_budget / stabilization
    /// latency`, so it must cover the lane's bandwidth-delay product —
    /// size it as a memory-exposure bound (the default is 16x the
    /// default window), not a rate limiter.
    pub credit_budget: usize,
    /// Ack-progress timeout after which a feeder re-ships a lane's
    /// unacknowledged ids (still inside the credit window) — the
    /// at-least-once safety net for lost grants.
    pub retransmit_after: Duration,
    /// Offered load per lane in ids/s; `None` means closed-loop (each
    /// lane generates as fast as its window drains — a capacity probe).
    /// The paper's deployment model is the rate-limited one: each lane
    /// is a datacenter partition with its own bounded operation stream,
    /// and scaling the partition count scales the offered load until the
    /// service saturates.
    pub feeder_rate: Option<u64>,
    /// Crash schedule: `(when, replica_index)`.
    pub crashes: Vec<(Duration, usize)>,
    /// Revival schedule: `(when, replica_index)`. A revived replica
    /// restarts with fresh state and rejoins by resend from each lane's
    /// window floor (the `mark_alive` state-transfer contract); pair with
    /// `crashes` for kill/restart fault cells.
    pub revives: Vec<(Duration, usize)>,
    /// Liveness timeout for leader fail-over.
    pub omega_timeout: Duration,
}

impl Default for EunomiaBenchConfig {
    fn default() -> Self {
        EunomiaBenchConfig {
            feeders: 16,
            lanes_per_feeder: 1,
            replicas: 1,
            stabilizers: 1,
            duration: Duration::from_secs(3),
            batch_interval: Duration::from_millis(1),
            theta: Duration::from_millis(1),
            window_cap: 4096,
            credit_budget: 65536,
            retransmit_after: Duration::from_secs(5),
            feeder_rate: None,
            crashes: Vec::new(),
            revives: Vec::new(),
            omega_timeout: Duration::from_millis(100),
        }
    }
}

enum ToReplica {
    Frame(BatchFrame),
    Stop,
}

/// Frames drained per replica wake. Small enough that a saturated
/// replica still checks the θ clock every few milliseconds (a 256-frame
/// sweep is ~15 ms of ingest — late θ ticks inflate the unstable
/// backlog and stabilization latency), large enough to amortize the
/// ring's batch drain.
const DRAIN_MAX: usize = 64;

/// Hard cap on ids per frame, bounding the per-frame allocation.
const MAX_FRAME_IDS: usize = 4096;

/// How long a pressure-gated lane may hold small frames back before
/// shipping anyway (x `batch_interval`) — bounds the latency cost of
/// coalescing for throughput.
const COALESCE_DEADLINE_INTERVALS: u32 = 8;

/// Geometry of one run: lane-to-thread and lane-to-shard maps shared by
/// feeders, shard threads, and the supervisor.
#[derive(Clone, Debug)]
struct Geometry {
    n_lanes: usize,
    lanes_per_feeder: usize,
    n_groups: usize,
    n_shards: usize,
}

impl Geometry {
    fn new(cfg: &EunomiaBenchConfig) -> Self {
        let lanes_per_feeder = cfg.lanes_per_feeder.max(1);
        Geometry {
            n_lanes: cfg.feeders,
            lanes_per_feeder,
            n_groups: cfg.feeders.div_ceil(lanes_per_feeder),
            n_shards: cfg.stabilizers.clamp(1, cfg.feeders),
        }
    }

    /// Feeder-thread group owning `lane`.
    fn group_of(&self, lane: usize) -> usize {
        lane / self.lanes_per_feeder
    }

    /// Stabilizer shard owning `lane` (contiguous slices).
    fn shard_of(&self, lane: usize) -> usize {
        lane * self.n_shards / self.n_lanes
    }

    /// Lane range `[lo, hi)` of feeder-thread group `g`.
    fn group_lanes(&self, g: usize) -> (usize, usize) {
        let lo = g * self.lanes_per_feeder;
        (lo, ((g + 1) * self.lanes_per_feeder).min(self.n_lanes))
    }

    /// Lane range `[lo, hi)` of stabilizer shard `s`.
    fn shard_lanes(&self, s: usize) -> (usize, usize) {
        let lo = (s * self.n_lanes).div_ceil(self.n_shards);
        let hi = ((s + 1) * self.n_lanes).div_ceil(self.n_shards);
        (lo, hi)
    }

    /// Capacity of one shard's frame ring. Scales with the shard's lane
    /// count: shallower rings concentrate producer contention on the
    /// ring's head, which costs more than the queued frames' cache
    /// footprint saves.
    fn shard_ring_capacity(&self, s: usize) -> usize {
        let (lo, hi) = self.shard_lanes(s);
        ((hi - lo) * 4).max(16)
    }
}

struct Shared {
    stop: AtomicBool,
    alive: Vec<AtomicBool>,
    beats: Vec<AtomicU64>,
    /// `[replica][shard]`: the shard thread's published tournament-tree
    /// minimum over its own lanes. The combiner (any shard of the same
    /// replica) folds these into the replica's global stable cutoff.
    shard_watermark: Vec<Vec<AtomicU64>>,
    /// `[shard]`: highest stable time any leader has published for the
    /// shard's lane slice — what followers discard by, and the
    /// count-once guard across overlapping leaders during fail-over.
    stable_published: Vec<AtomicU64>,
    stabilized: AtomicU64,
    epoch: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Leader as seen by replica `me`: the lowest-indexed live replica
    /// with a fresh beat. A replica executing this check is trivially
    /// alive to itself — the beat freshness test applies only to *other*
    /// replicas, else a tick delayed past `omega_timeout` by ingest load
    /// makes a lone replica disown its own leadership and stabilization
    /// halts. `None` while everyone looks dead.
    fn leader(&self, me: usize, omega_timeout: Duration) -> Option<usize> {
        let now = self.now_ns();
        let timeout = omega_timeout.as_nanos() as u64;
        (0..self.alive.len()).find(|&r| {
            self.alive[r].load(Ordering::Relaxed)
                && (r == me || now.saturating_sub(self.beats[r].load(Ordering::Relaxed)) <= timeout)
        })
    }
}

/// Lowers the calling thread's scheduling priority (nice +5). The
/// paper's feeders are separate machines; in-process they compete with
/// the replica threads for CPU, and a fair scheduler gives N feeders N
/// shares against the one replica that needs most of a core — at 256
/// feeders the service starves in its own benchmark. Raising nice is
/// unprivileged; raw syscalls keep the crate dependency-free.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn deprioritize_current_thread() {
    // SAFETY: gettid takes no arguments and setpriority(PRIO_PROCESS,
    // tid, 5) only affects this thread; both are harmless on failure.
    unsafe {
        let tid: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 186i64 => tid, // SYS_gettid
            out("rcx") _,
            out("r11") _,
        );
        let mut ret: i64 = 141; // SYS_setpriority
        std::arch::asm!(
            "syscall",
            inlateout("rax") ret,
            in("rdi") 0i64, // PRIO_PROCESS
            in("rsi") tid,
            in("rdx") 5i64, // nice +5
            out("rcx") _,
            out("r11") _,
        );
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn deprioritize_current_thread() {}

/// One feeder thread driving `geo.group_lanes(group)` logical lanes
/// through a [`MuxSender`]: one pooled window budget, one grant ring,
/// one doorbell, one physical-clock read per pass.
#[allow(clippy::too_many_arguments)]
fn feeder_loop(
    group: usize,
    geo: &Geometry,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    frame_txs: &[Vec<Sender<ToReplica>>],
    grants: &Receiver<GrantBatch>,
    start: &Barrier,
) -> ServiceStats {
    deprioritize_current_thread();
    let (lane_lo, lane_hi) = geo.group_lanes(group);
    let n_lanes = lane_hi - lane_lo;
    let n_replicas = cfg.replicas;
    let mut stats = ServiceStats::default();
    let mut mux = MuxSender::new(PartitionId(lane_lo as u32), n_lanes, n_replicas);
    let mut hlc: Vec<ScalarHlc> = vec![ScalarHlc::new(); n_lanes];
    let mut dead = vec![false; n_replicas];
    let mut grant_buf: Vec<GrantBatch> = Vec::with_capacity(8);
    // Per-replica pressure (last grant's ingest-ring fill, 0..=255); the
    // coalescing clock and ack-progress clock are per (lane, replica) —
    // flat `lane * n_replicas + r` indexed.
    let mut pressure = vec![0u8; n_replicas];
    let slot = |lane: usize, r: usize| lane * n_replicas + r;
    // Pacing jitter (xorshift, seeded by group id): feeders sharing one
    // RTT phase-lock into convoys — everyone ships together, the replica
    // chews the burst, everyone sleeps together and the ring runs dry.
    // Randomizing each sleep +/-a third keeps arrivals spread out.
    let mut jitter_state = (0x9E37_79B9_7F4A_7C15u64 ^ group as u64) | 1;
    let mut jitter = move |d: Duration| {
        jitter_state ^= jitter_state << 13;
        jitter_state ^= jitter_state >> 7;
        jitter_state ^= jitter_state << 17;
        d * (667 + (jitter_state % 667) as u32) / 1000
    };
    let coalesce_deadline = cfg.batch_interval * COALESCE_DEADLINE_INTERVALS;
    // Rate-limited lanes wake on accumulation, not the closed-loop
    // cadence: a wake is only worth its context switch if a quarter-frame
    // of ids accrued on some lane (lanes accrue in parallel, so the floor
    // is per lane, not per thread).
    let accrual_floor = cfg.feeder_rate.map(|r| {
        Duration::from_nanos((MAX_FRAME_IDS as u64 / 4).saturating_mul(1_000_000_000) / r.max(1))
    });
    // The pooled window budget: any lane may borrow up to 2x its own cap
    // from siblings the replica has throttled, but the thread as a whole
    // never holds more than `window_cap x lanes` unacknowledged ids.
    let pool_cap = cfg.window_cap * n_lanes;
    let lane_soft_cap = cfg.window_cap * 2;
    // Spare frame buffers (any lane): a frame that could not be sent
    // (ring full) hands its allocation back, so a saturated replica
    // costs a binary search + copy per interval, not an alloc too.
    let mut spares: Vec<Vec<Timestamp>> = Vec::new();
    let mut backoff = cfg.batch_interval;
    let mut rotate = 0usize;

    // Wait for every replica shard to come up before generating: without
    // the barrier the feeder fleet floods the rings while replicas are
    // still spawning, and the first seconds of the credit timeline show
    // zero-credit grants that are a startup artifact, not flow control.
    start.wait();
    let rate_start = Instant::now();
    let mut generated: Vec<u64> = vec![0; n_lanes];
    let mut last_ship = vec![Instant::now(); n_lanes * n_replicas];
    let mut last_progress = vec![Instant::now(); n_lanes * n_replicas];
    // Per-replica EWMA of the ship-to-grant round trip — the retransmit
    // threshold's unit and the park-timeout fallback. Wakes themselves
    // are event-driven: the replica unparks this thread when it issues
    // one of its lanes a grant batch, so the estimate measures the true
    // round trip rather than the feeder's own sleep.
    let mut rtt_est = vec![cfg.batch_interval; n_replicas];
    while !shared.stop.load(Ordering::Relaxed) {
        // Drain grant batches in one sweep; each batch carries at most
        // one folded grant per lane this thread owns.
        grant_buf.clear();
        grants.try_recv_batch(&mut grant_buf, usize::MAX);
        for batch in grant_buf.drain(..) {
            for lg in &batch.grants {
                let lane = lg.lane.index() - lane_lo;
                let r = lg.grant.replica.index();
                // Any grant is progress: the replica is alive and
                // talking, so the retransmission timeout (a lost-grant
                // safety net, not a liveness probe) must not fire merely
                // because the watermark paused while the replica drains
                // a deep ring.
                last_progress[slot(lane, r)] = Instant::now();
                pressure[r] = lg.grant.pressure;
                if lg.grant.ack > mux.ack_of(lane, lg.grant.replica) {
                    // Elapsed-since-last-ship under-estimates the true
                    // round trip when several frames are in flight; an
                    // EWMA biased low only shortens the park-timeout
                    // fallback, which is the safe direction.
                    let sample = last_ship[slot(lane, r)].elapsed();
                    rtt_est[r] = (rtt_est[r] * 7 + sample) / 8;
                }
                mux.on_grant(lane, lg.grant);
            }
        }
        // Crash/revival transitions, once per replica for all lanes.
        for (r, dead_flag) in dead.iter_mut().enumerate() {
            let alive = shared.alive[r].load(Ordering::Relaxed);
            if !*dead_flag && !alive {
                *dead_flag = true;
                mux.mark_dead(ReplicaId(r as u32));
            } else if *dead_flag && alive {
                // Revived: rejoin by resend from the window floor (state
                // transfer, not replay — `mark_alive`'s contract).
                *dead_flag = false;
                mux.mark_alive(ReplicaId(r as u32));
                pressure[r] = 0;
                for lane in 0..n_lanes {
                    last_progress[slot(lane, r)] = Instant::now();
                }
            }
        }
        // Generate eagerly up to the pooled window budget (ids only,
        // §5). The physical clock is read once per pass; each lane's
        // HLC logical bump keeps its ids strictly monotone within the
        // burst. The rotating start index keeps pool borrowing fair.
        let mut pool_room = pool_cap.saturating_sub(mux.window_len());
        let entitled_ns = cfg
            .feeder_rate
            .map(|rate| (rate_start.elapsed().as_nanos() as u64).saturating_mul(rate));
        let physical = Timestamp(shared.now_ns());
        for i in 0..n_lanes {
            let lane = (i + rotate) % n_lanes;
            let mut room = lane_soft_cap
                .saturating_sub(mux.lane_window_len(lane))
                .min(pool_room);
            if let Some(total_ns) = entitled_ns {
                let entitled = total_ns / 1_000_000_000;
                room = room.min(entitled.saturating_sub(generated[lane]) as usize);
            }
            generated[lane] += room as u64;
            pool_room -= room;
            for _ in 0..room {
                let ts = hlc[lane].tick_local(physical);
                mux.push(lane, ts);
            }
        }
        rotate = rotate.wrapping_add(1);
        // Ship per-(lane, replica) frames, honouring each credit window.
        let mut sent_something = false;
        for lane in 0..n_lanes {
            let heartbeat = if mux.lane_window_len(lane) == 0
                && hlc[lane].heartbeat_due(physical, cfg.batch_interval.as_nanos() as u64)
            {
                Some(hlc[lane].heartbeat(Timestamp(shared.now_ns())))
            } else {
                None
            };
            for (r, txs) in frame_txs.iter().enumerate() {
                if dead[r] {
                    continue;
                }
                let rid = ReplicaId(r as u32);
                // The retransmission timeout scales with the observed
                // round trip: a fixed constant misfires the moment
                // scheduling delay exceeds it, and every misfire is a
                // duplicate storm in miniature.
                let timed_out = mux.in_flight(lane, rid) > 0
                    && last_progress[slot(lane, r)].elapsed()
                        > cfg.retransmit_after.max(rtt_est[r] * 8);
                let sendable = mux.sendable(lane, rid);
                if sendable == 0 && !timed_out && heartbeat.is_none() {
                    // EXHAUSTED: the credit window admits nothing. Park
                    // the lane; the replica re-advertises on its theta
                    // tick.
                    if mux.starved(lane, rid) {
                        stats.credit_stalls += 1;
                    }
                    continue;
                }
                // Pressure-adaptive frame sizing: at pressure 0 ship
                // whatever is pending (small frames, low latency); as the
                // replica's ring fills, hold dribbles back until a full
                // frame (or the deadline) so overload ships few, large
                // frames. Rate-limited lanes floor this at a quarter
                // frame — a grant doorbell must not flush every dribble
                // the accrual clock has admitted.
                let rate_floor = if cfg.feeder_rate.is_some() {
                    MAX_FRAME_IDS / 4
                } else {
                    0
                };
                let min_ship = (pressure[r] as usize * MAX_FRAME_IDS / 255)
                    .max(rate_floor)
                    .min(mux.credit_of(lane, rid) as usize)
                    .min(cfg.window_cap);
                // A rate-limited lane takes `min_ship / rate` to accrue a
                // frame worth shipping; holding it to the closed-loop
                // deadline would flush pressure-sized frames as dribbles
                // and melt the overload regime into a wake storm.
                let deadline = match cfg.feeder_rate {
                    Some(rate) if rate > 0 => coalesce_deadline.max(Duration::from_nanos(
                        (min_ship as u64).saturating_mul(1_000_000_000) / rate,
                    )),
                    _ => coalesce_deadline,
                };
                if sendable < min_ship
                    && !timed_out
                    && heartbeat.is_none()
                    && last_ship[slot(lane, r)].elapsed() < deadline
                {
                    continue;
                }
                let floor = if timed_out {
                    last_progress[slot(lane, r)] = Instant::now();
                    Timestamp::ZERO // Re-ship everything unacked (credit-bounded).
                } else {
                    mux.sent_of(lane, rid) // New ids only.
                };
                let sent_before = mux.sent_of(lane, rid);
                let spare = spares.pop().unwrap_or_default();
                let frame = mux.build_frame(lane, rid, floor, heartbeat, MAX_FRAME_IDS, spare);
                if frame.ids.is_empty() && heartbeat.is_none() {
                    spares.push(frame.ids);
                    continue;
                }
                let newest = frame.ids.last().copied();
                let resent = frame.ids.partition_point(|&ts| ts <= sent_before) as u64;
                let shard = geo.shard_of(lane_lo + lane);
                // A full channel defers the frame; nothing is counted as
                // sent (`note_sent` advances only on success: skipping
                // ids would break the contiguous-suffix contract the
                // watermark dedup relies on), so the next pass re-builds
                // the same suffix.
                match txs[shard].try_send(ToReplica::Frame(frame)) {
                    Ok(()) => {
                        sent_something = true;
                        last_ship[slot(lane, r)] = Instant::now();
                        stats.retransmitted_ids += resent;
                        if let Some(ts) = newest {
                            mux.note_sent(lane, rid, ts);
                        }
                    }
                    Err(TrySendError::Full(ToReplica::Frame(f)))
                    | Err(TrySendError::Disconnected(ToReplica::Frame(f))) => {
                        stats.ring_full_stalls += 1;
                        spares.push(f.ids);
                    }
                    Err(_) => {}
                }
            }
        }
        // Event-driven pacing. After shipping, the next actionable moment
        // is the grant batch for those frames — and the replica *unparks*
        // this thread when it enqueues one, so the park timeout is only a
        // fallback (lost grant, dead replica). A pass that neither
        // shipped nor heard grants — window fully in flight,
        // credit-starved, ring full — backs off exponentially instead of
        // stealing CPU from the service on small hosts (the paper's
        // feeders are separate machines).
        backoff = if sent_something {
            let next_grant = dead
                .iter()
                .zip(&rtt_est)
                .filter(|(d, _)| !**d)
                .map(|(_, rtt)| *rtt * 2)
                .min()
                .unwrap_or(cfg.batch_interval);
            next_grant.clamp(cfg.batch_interval, cfg.batch_interval * 64)
        } else {
            // Shipped nothing: every wake until some window reopens is a
            // context switch taken from the replica that would have
            // refilled the credits, so back off exponentially. Hearing a
            // grant is no reason to reset — an actionable grant would
            // have made the ship loop send (the branch above); a
            // zero-credit grant is just the replica saying "still full".
            // Starved lanes are woken by the grant doorbell, not the
            // clock — they may park for whole seconds without adding
            // latency.
            (backoff * 2).min(cfg.batch_interval * 1024)
        };
        let mut park = backoff;
        if let Some(floor) = accrual_floor {
            // A rate-limited thread whose pooled window is not full is
            // waiting on its own accrual, not on the service.
            if mux.window_len() < pool_cap {
                park = park.max(floor);
            }
        }
        std::thread::park_timeout(jitter(park));
    }
    stats
}

/// One stabilizer shard thread: replica `me`, lane slice
/// `geo.shard_lanes(shard)`, its own frame ring and
/// [`ShardedReplicaState`]. Grants are coalesced per feeder-thread group
/// and flushed as one [`GrantBatch`] (plus at most one doorbell unpark)
/// per sweep.
#[allow(clippy::too_many_arguments)]
fn replica_shard_loop(
    me: usize,
    shard: usize,
    geo: &Geometry,
    cfg: &EunomiaBenchConfig,
    shared: &Shared,
    rx: &Receiver<ToReplica>,
    grant_txs: &[Sender<GrantBatch>],
    feeders: &[std::thread::Thread],
    start: Option<&Barrier>,
) -> ServiceStats {
    let (lane_lo, lane_hi) = geo.shard_lanes(shard);
    let n_local = lane_hi - lane_lo;
    let mut state = ShardedReplicaState::new(ReplicaId(me as u32), n_local);
    let mut stats = ServiceStats::default();
    let mut frames: Vec<ToReplica> = Vec::with_capacity(DRAIN_MAX);
    let mut latency_scratch: Vec<u64> = Vec::new();
    let ring_cap = geo.shard_ring_capacity(shard) as f64;
    let budget = cfg.credit_budget.min(u32::MAX as usize) as u32;
    // Last credit advertised per local lane. Starting at zero makes the
    // first theta tick advertise every lane — on a fresh start that is
    // the opening grant, and on revival it is what tells parked feeders
    // the replica is back without them having to poll.
    let mut advertised: Vec<u32> = vec![0; n_local];
    // One grant coalescer per feeder-thread group whose lanes intersect
    // this shard, plus its doorbell-worthiness flag and a spare batch
    // allocation.
    let group_lo = geo.group_of(lane_lo);
    let group_hi = geo.group_of(lane_hi - 1);
    let n_groups_local = group_hi - group_lo + 1;
    let mut coalescers: Vec<GrantCoalescer> = (group_lo..=group_hi)
        .map(|g| {
            let (glo, ghi) = geo.group_lanes(g);
            GrantCoalescer::new(PartitionId(glo as u32), ghi - glo)
        })
        .collect();
    let mut ring_worthy = vec![false; n_groups_local];
    let mut batch_spares: Vec<GrantBatch> = Vec::new();
    let reopen = (MAX_FRAME_IDS / 4) as u32;
    if let Some(b) = start {
        b.wait();
    }
    let mut next_theta = Instant::now() + cfg.theta;
    'run: loop {
        if shared.stop.load(Ordering::Relaxed) || !shared.alive[me].load(Ordering::Relaxed) {
            break 'run;
        }
        // Batch ingestion: drain whatever is queued in one sweep; park
        // until the next θ tick only when the ring is empty.
        frames.clear();
        stats.queue_depth_high_water = stats.queue_depth_high_water.max(rx.len() as u64);
        if rx.try_recv_batch(&mut frames, DRAIN_MAX) == 0 {
            let timeout = next_theta.saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok(msg) => frames.push(msg),
                Err(RecvTimeoutError::Disconnected) => break 'run,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        let ring_still_deep = frames.len() == DRAIN_MAX;
        // Beat per sweep, not just per theta tick: a replica buried in
        // ingest is alive, and its peers must not steal leadership from
        // it merely because its theta clock ran late.
        shared.beats[me].store(shared.now_ns(), Ordering::Relaxed);
        let fill = rx.len() as f64 / ring_cap;
        for msg in frames.drain(..) {
            let mut frame = match msg {
                ToReplica::Frame(f) => f,
                ToReplica::Stop => break 'run,
            };
            let global_lane = frame.partition.index();
            let local_lane = global_lane - lane_lo;
            frame.partition = PartitionId(local_lane as u32);
            let n_ids = frame.ids.len() as u64;
            state
                .ingest_owned(frame)
                .expect("bench wiring guarantees valid partitions");
            stats.frames += 1;
            stats.batch_sizes.record(n_ids);
            // Watermark + credit in one grant: the ack the feeder prunes
            // by, the window it may fill, the pressure it sizes frames
            // by. Not sent per frame — folded into this sweep's batch for
            // the owning feeder thread (max ack, latest credit), flushed
            // below as one ring entry + at most one doorbell unpark.
            if let Some(mut grant) = state.advertise(PartitionId(local_lane as u32), fill, budget) {
                grant.pressure = (fill * 255.0) as u8;
                advertised[local_lane] = grant.credit;
                let g = geo.group_of(global_lane) - group_lo;
                coalescers[g].note(PartitionId(global_lane as u32), grant);
                // A per-frame grant is doorbell-worthy when the credit is
                // worth a context switch: unparking a thousand overloaded
                // lanes to hand each a zero is a wake storm that starves
                // the very drain that would refill the credits.
                if grant.credit >= reopen {
                    ring_worthy[g] = true;
                }
            }
        }
        let theta_ticked = Instant::now() >= next_theta;
        if theta_ticked {
            let sweep_start = Instant::now();
            next_theta = sweep_start + cfg.theta;
            shared.beats[me].store(shared.now_ns(), Ordering::Relaxed);
            let leader = shared.leader(me, cfg.omega_timeout);
            state.set_leader(ReplicaId(leader.unwrap_or(me) as u32));
            // Publish this shard's tournament-tree minimum and fold every
            // shard's published minimum into the replica's global stable
            // cutoff — the combiner is this handful of atomic loads.
            shared.shard_watermark[me][shard].store(state.stable_time().0, Ordering::Release);
            let mut cutoff = u64::MAX;
            for w in &shared.shard_watermark[me] {
                cutoff = cutoff.min(w.load(Ordering::Acquire));
            }
            if leader == Some(me) {
                // Tentatively drain this shard's lanes up to the combined
                // cutoff, buffering 1-in-64 sampled latencies (a drain
                // can cover tens of millions of ids; a per-id sample
                // vector is tens of megabytes re-written every sweep and
                // evicts the very backlog chunks the drain is scanning).
                // Count and flush the samples only if this drain advanced
                // the shard's globally published stable time, so
                // overlapping leaders during fail-over can neither
                // double-count nor double-sample the histogram.
                let now = shared.now_ns();
                latency_scratch.clear();
                let scratch = &mut latency_scratch;
                let mut emitted = 0u64;
                let stable = state.leader_process_stable_up_to(Timestamp(cutoff), |_, ts| {
                    if emitted.is_multiple_of(64) {
                        scratch.push(now.saturating_sub(ts.0));
                    }
                    emitted += 1;
                });
                if let Some(stable) = stable {
                    let prev = shared.stable_published[shard].fetch_max(stable.0, Ordering::SeqCst);
                    if prev < stable.0 {
                        stats.stabilized_ids += emitted;
                        shared.stabilized.fetch_add(emitted, Ordering::Relaxed);
                        for &ns in &latency_scratch {
                            stats.stabilization_latency.record(ns);
                        }
                    }
                }
            } else {
                let stable = Timestamp(shared.stable_published[shard].load(Ordering::Relaxed));
                state.apply_stable(stable);
            }
            // Re-advertise throttled lanes: stabilization just freed
            // backlog (and the drain above freed ring slots), so parked
            // feeders learn their window reopened without polling. Lanes
            // advertised at half the budget or more are still OPEN and
            // will be refreshed by their own next frame's grant.
            let fill = rx.len() as f64 / ring_cap;
            for (local_lane, adv) in advertised.iter_mut().enumerate() {
                if *adv >= budget / 2 {
                    continue;
                }
                if let Some(grant) = state.advertise(PartitionId(local_lane as u32), fill, budget) {
                    // Ring the doorbell only on the reopening *edge*: a
                    // lane already holding workable credit is pacing on
                    // its own accrual, and re-waking every throttled lane
                    // every tick is the wake storm all over again.
                    let reopened = *adv < reopen && grant.credit >= reopen;
                    *adv = grant.credit;
                    let global_lane = lane_lo + local_lane;
                    let g = geo.group_of(global_lane) - group_lo;
                    coalescers[g].note(PartitionId(global_lane as u32), grant);
                    if reopened {
                        ring_worthy[g] = true;
                    }
                }
            }
            stats
                .theta_sweep_ns
                .record(sweep_start.elapsed().as_nanos() as u64);
        }
        // Flush the coalesced grants: one ring entry per feeder thread
        // with pending grants, one doorbell unpark at most — however
        // many lanes and frames were covered. While the ring stays deep
        // the flush is deferred (bounded by the theta tick): under
        // backlog each batch then folds a whole interval's worth of a
        // thread's lanes instead of one ring entry per 64-frame sweep.
        if !ring_still_deep || theta_ticked {
            for (g, coalescer) in coalescers.iter_mut().enumerate() {
                let Some(batch) = coalescer.drain(batch_spares.pop().unwrap_or_default()) else {
                    continue;
                };
                let sec = (shared.now_ns() / 1_000_000_000) as usize;
                for lg in &batch.grants {
                    stats.advertised_credits.record(lg.grant.credit as u64);
                    stats.record_credit(sec, lg.grant.credit as u64);
                }
                let worthy = ring_worthy[g] && batch.workable(reopen);
                let lanes_in_batch = batch.grants.len() as u64;
                match grant_txs[group_lo + g].try_send(batch) {
                    Ok(()) => {
                        stats.grant_batches += 1;
                        stats.grant_batch_lanes.record(lanes_in_batch);
                        if worthy {
                            feeders[group_lo + g].unpark();
                            stats.doorbell_unparks += 1;
                        }
                        ring_worthy[g] = false;
                    }
                    Err(TrySendError::Full(b)) | Err(TrySendError::Disconnected(b)) => {
                        // Grant ring full: put the grants back (without
                        // clobbering anything fresher) so the next sweep
                        // retries; keep the doorbell flag so the retry still
                        // rings it.
                        coalescer.restore(&b);
                        batch_spares.push(b);
                    }
                }
            }
        }
    }
    stats.accepted_ids = state.total_accepted();
    stats.duplicate_ids = state.total_duplicates();
    stats
}

/// Runs the threaded Eunomia service benchmark.
///
/// Returns the per-second stabilization timeline. With `cfg.crashes`
/// non-empty, replicas die at the scheduled offsets (the Fig. 4 setup);
/// `cfg.revives` restarts them.
pub fn run_eunomia_service(cfg: &EunomiaBenchConfig) -> ThroughputTimeline {
    run_eunomia_service_with_stats(cfg).0
}

/// Runs the threaded Eunomia service benchmark and also returns the
/// merged [`ServiceStats`] of all feeder and stabilizer threads (batch
/// sizes, queue depths, stabilization latency, theta sweep timings,
/// grant-batch occupancy, ids/s).
pub fn run_eunomia_service_with_stats(
    cfg: &EunomiaBenchConfig,
) -> (ThroughputTimeline, ServiceStats) {
    assert!(
        cfg.feeders > 0 && cfg.replicas > 0,
        "need feeders and replicas"
    );
    assert!(
        cfg.lanes_per_feeder > 0 && cfg.stabilizers > 0,
        "need at least one lane per feeder thread and one stabilizer"
    );
    let geo = Arc::new(Geometry::new(cfg));
    let n_shards = geo.n_shards;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        alive: (0..cfg.replicas).map(|_| AtomicBool::new(true)).collect(),
        beats: (0..cfg.replicas).map(|_| AtomicU64::new(0)).collect(),
        shard_watermark: (0..cfg.replicas)
            .map(|_| (0..n_shards).map(|_| AtomicU64::new(0)).collect())
            .collect(),
        stable_published: (0..n_shards).map(|_| AtomicU64::new(0)).collect(),
        stabilized: AtomicU64::new(0),
        epoch: Instant::now(),
    });

    // Frame rings: one per (replica, shard).
    let mut frame_txs: Vec<Vec<Sender<ToReplica>>> = Vec::new();
    let mut frame_rxs: Vec<Vec<Receiver<ToReplica>>> = Vec::new();
    for _ in 0..cfg.replicas {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for s in 0..n_shards {
            let (tx, rx) = bounded::<ToReplica>(geo.shard_ring_capacity(s));
            txs.push(tx);
            rxs.push(rx);
        }
        frame_txs.push(txs);
        frame_rxs.push(rxs);
    }
    // Grant rings: one per feeder thread, carrying coalesced batches from
    // every (replica, shard). Batches supersede per lane (and a failed
    // send is restored into the next sweep's batch), so the ring only
    // needs to cover the shards' natural burstiness.
    let mut grant_txs = Vec::new();
    let mut grant_rxs = Vec::new();
    for _ in 0..geo.n_groups {
        let (tx, rx) = bounded::<GrantBatch>((cfg.replicas * n_shards * 8).max(32));
        grant_txs.push(tx);
        grant_rxs.push(rx);
    }

    // The start barrier covers every feeder, every stabilizer shard, and
    // the supervisor: measurement (and generation) begins only once the
    // whole topology is up. Without it the feeder fleet spawns first,
    // floods the rings, and the first seconds of every run measure the
    // spawn storm instead of the service.
    let start = Arc::new(Barrier::new(geo.n_groups + cfg.replicas * n_shards + 1));

    // Feeders first: stabilizers need their `Thread` handles to ring the
    // grant doorbell (`unpark`) when a credit window reopens.
    let mut feeder_handles = Vec::new();
    for (g, rx) in grant_rxs.into_iter().enumerate() {
        let cfg = cfg.clone();
        let geo = geo.clone();
        let shared = shared.clone();
        let txs = frame_txs.clone();
        let start = start.clone();
        feeder_handles.push(std::thread::spawn(move || {
            feeder_loop(g, &geo, &cfg, &shared, &txs, &rx, &start)
        }));
    }
    let feeder_threads: Arc<Vec<std::thread::Thread>> =
        Arc::new(feeder_handles.iter().map(|h| h.thread().clone()).collect());
    let spawn_shard = |me: usize, s: usize, with_barrier: bool| {
        let cfg = cfg.clone();
        let geo = geo.clone();
        let shared = shared.clone();
        let rx = frame_rxs[me][s].clone();
        let grant_txs = grant_txs.clone();
        let feeder_threads = feeder_threads.clone();
        let start = with_barrier.then(|| start.clone());
        std::thread::spawn(move || {
            replica_shard_loop(
                me,
                s,
                &geo,
                &cfg,
                &shared,
                &rx,
                &grant_txs,
                &feeder_threads,
                start.as_deref(),
            )
        })
    };
    let mut shard_handles: Vec<Vec<Option<std::thread::JoinHandle<ServiceStats>>>> = (0..cfg
        .replicas)
        .map(|me| {
            (0..n_shards)
                .map(|s| Some(spawn_shard(me, s, true)))
                .collect()
        })
        .collect();
    start.wait();

    // Sampling + crash/revival-injection loop.
    let start_t = Instant::now();
    let mut per_second = Vec::new();
    let mut last_count = 0u64;
    let mut stats = ServiceStats::default();
    // Crash and revival events interleaved in time order.
    let mut events: Vec<(Duration, usize, bool)> = cfg
        .crashes
        .iter()
        .map(|&(t, r)| (t, r, false))
        .chain(cfg.revives.iter().map(|&(t, r)| (t, r, true)))
        .collect();
    events.sort_by_key(|&(t, _, _)| t);
    let mut event_idx = 0;
    let mut next_sample = start_t + Duration::from_secs(1);
    let mut stale: Vec<ToReplica> = Vec::new();
    while start_t.elapsed() < cfg.duration {
        let next_event = events.get(event_idx).map(|(t, _, _)| start_t + *t);
        let wake = match next_event {
            Some(c) if c < next_sample => c,
            _ => next_sample,
        };
        let now = Instant::now();
        if wake > now {
            std::thread::sleep((wake - now).min(Duration::from_millis(50)));
        }
        if let Some(&(t, r, revive)) = events.get(event_idx) {
            if start_t.elapsed() >= t {
                event_idx += 1;
                if !revive {
                    shared.alive[r].store(false, Ordering::SeqCst);
                } else if !shared.alive[r].load(Ordering::SeqCst) {
                    // Revive: reap the dead shard threads (folding their
                    // stats in), discard frames that went stale in the
                    // rings while the replica was down (a fresh replica
                    // re-learns the stream from the feeders' resend — a
                    // stale frame would land as duplicates), then restart
                    // the shards with fresh state.
                    for slot in &mut shard_handles[r] {
                        if let Some(h) = slot.take() {
                            if let Ok(s) = h.join() {
                                stats.merge(&s);
                            }
                        }
                    }
                    for (s, rx) in frame_rxs[r].iter().enumerate() {
                        stale.clear();
                        rx.try_recv_batch(&mut stale, usize::MAX);
                        stale.clear();
                        shared.shard_watermark[r][s].store(0, Ordering::Release);
                    }
                    shared.alive[r].store(true, Ordering::SeqCst);
                    for (s, slot) in shard_handles[r].iter_mut().enumerate() {
                        *slot = Some(spawn_shard(r, s, false));
                    }
                }
            }
        }
        if Instant::now() >= next_sample {
            let count = shared.stabilized.load(Ordering::Relaxed);
            per_second.push(count - last_count);
            last_count = count;
            next_sample += Duration::from_secs(1);
        }
    }
    shared.stop.store(true, Ordering::SeqCst);
    for txs in &frame_txs {
        for tx in txs {
            let _ = tx.try_send(ToReplica::Stop);
        }
    }
    for t in feeder_threads.iter() {
        t.unpark();
    }
    let elapsed = start_t.elapsed();
    for h in feeder_handles {
        if let Ok(s) = h.join() {
            stats.merge(&s);
        }
    }
    for replica in shard_handles {
        for h in replica.into_iter().flatten() {
            if let Ok(s) = h.join() {
                stats.merge(&s);
            }
        }
    }
    stats.elapsed = elapsed;
    // The shared counter is authoritative (a replica killed mid-update
    // may not have flushed its local copy).
    let total = shared.stabilized.load(Ordering::Relaxed);
    stats.stabilized_ids = total;
    (
        ThroughputTimeline {
            per_second,
            total,
            elapsed,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(feeders: usize, replicas: usize) -> EunomiaBenchConfig {
        EunomiaBenchConfig {
            feeders,
            replicas,
            duration: Duration::from_millis(800),
            window_cap: 512,
            ..EunomiaBenchConfig::default()
        }
    }

    #[test]
    fn single_replica_stabilizes_operations() {
        let (t, stats) = run_eunomia_service_with_stats(&quick(4, 1));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        assert_eq!(stats.stabilized_ids, t.total);
        assert!(stats.frames > 0);
        assert!(stats.batch_sizes.count() > 0);
        assert!(
            stats.stabilization_latency.count() >= t.total / 64,
            "stabilized ids are latency-sampled at 1-in-64: {} samples for {} ids",
            stats.stabilization_latency.count(),
            t.total
        );
        let p50 = stats.stabilization_latency_ms(50.0).unwrap();
        assert!(p50 > 0.0, "stabilization takes nonzero time: {p50}");
        assert!(stats.theta_sweep_ns.count() > 0, "theta sweeps are timed");
    }

    #[test]
    fn replicated_service_still_makes_progress() {
        let (t, stats) = run_eunomia_service_with_stats(&quick(4, 3));
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        // All three replicas ingest every frame at least once.
        assert!(stats.accepted_ids >= 3 * t.total, "replicas ingest 3x");
    }

    /// A multiplexed topology (lanes sharing feeder threads) and sharded
    /// stabilizers must preserve the service semantics: progress on every
    /// lane, zero duplicates, and grants batched with at most one unpark
    /// per enqueued batch.
    #[test]
    fn muxed_lanes_and_sharded_stabilizers_preserve_semantics() {
        let cfg = EunomiaBenchConfig {
            feeders: 16,
            lanes_per_feeder: 4,
            replicas: 2,
            stabilizers: 2,
            duration: Duration::from_millis(900),
            window_cap: 512,
            retransmit_after: Duration::from_secs(3600),
            ..EunomiaBenchConfig::default()
        };
        let (t, stats) = run_eunomia_service_with_stats(&cfg);
        assert!(t.total > 1_000, "stabilized only {} ops", t.total);
        assert_eq!(stats.duplicate_ids, 0, "mux must not re-send ids");
        assert_eq!(stats.retransmitted_ids, 0);
        assert!(stats.grant_batches > 0, "grants must travel as batches");
        assert!(
            stats.doorbell_unparks <= stats.grant_batches,
            "at most one unpark per enqueued grant batch: {} unparks, {} batches",
            stats.doorbell_unparks,
            stats.grant_batches
        );
        assert!(
            stats.mean_grant_batch_lanes() >= 1.0,
            "batches carry at least one lane"
        );
    }

    /// The regression the credit protocol exists for: at 256 feeders the
    /// drop-on-full ack ring re-sent hundreds of millions of ids
    /// (238M at 256x3 in the pre-credit committed sweep). With flow
    /// control and the retransmission timeout effectively disabled,
    /// overload must throttle at the source: zero duplicates, while the
    /// service still makes progress.
    #[test]
    fn overloaded_256_feeders_produce_zero_duplicates() {
        let cfg = EunomiaBenchConfig {
            feeders: 256,
            lanes_per_feeder: 16,
            replicas: 1,
            duration: Duration::from_millis(900),
            window_cap: 512,
            // No safety-net retransmissions: every duplicate would be a
            // flow-control bug, so pin the count to exactly zero.
            retransmit_after: Duration::from_secs(3600),
            ..EunomiaBenchConfig::default()
        };
        let (t, stats) = run_eunomia_service_with_stats(&cfg);
        assert!(t.total > 0, "overloaded service must still make progress");
        assert_eq!(
            stats.duplicate_ids, 0,
            "credit flow control must not re-send ids under overload"
        );
        assert_eq!(stats.retransmitted_ids, 0);
        assert!(
            stats.advertised_credits.count() > 0,
            "replicas must advertise credit windows"
        );
    }

    #[test]
    fn crash_of_only_replica_halts_progress() {
        let mut cfg = quick(2, 1);
        cfg.duration = Duration::from_millis(2300);
        cfg.crashes = vec![(Duration::from_millis(300), 0)];
        let t = run_eunomia_service(&cfg);
        // Something was stabilized before the crash, and the second whole
        // second (entirely post-crash) shows nothing.
        assert!(t.total > 0);
        assert!(
            t.per_second.len() >= 2,
            "timeline too short: {:?}",
            t.per_second
        );
        assert_eq!(
            t.per_second[1], 0,
            "progress should stop after the crash: {:?}",
            t.per_second
        );
    }

    #[test]
    fn crash_of_leader_fails_over_with_three_replicas() {
        let mut cfg = quick(2, 3);
        cfg.duration = Duration::from_millis(2500);
        cfg.omega_timeout = Duration::from_millis(60);
        cfg.crashes = vec![(Duration::from_millis(600), 0)];
        let t = run_eunomia_service(&cfg);
        // Ops continue to stabilize after the leader dies.
        let tail: u64 = t.per_second.iter().skip(1).sum();
        assert!(tail > 0, "no progress after fail-over: {:?}", t.per_second);
    }

    /// Kill a replica mid-run, then revive it: the service must keep
    /// stabilizing through the outage (the surviving replicas hold
    /// quorumless Eunomia up fine — stabilization only needs the leader)
    /// and the revived replica must rejoin without duplicate emissions.
    #[test]
    fn killed_replica_revives_and_rejoins() {
        let cfg = EunomiaBenchConfig {
            feeders: 4,
            replicas: 3,
            duration: Duration::from_millis(3300),
            window_cap: 512,
            omega_timeout: Duration::from_millis(60),
            crashes: vec![(Duration::from_millis(500), 0)],
            revives: vec![(Duration::from_millis(1300), 0)],
            ..EunomiaBenchConfig::default()
        };
        let (t, stats) = run_eunomia_service_with_stats(&cfg);
        let tail: u64 = t.per_second.iter().skip(2).sum();
        assert!(tail > 0, "no progress after revival: {:?}", t.per_second);
        // The revived replica accepted a resend of the in-flight window,
        // not a replay of history: nothing was emitted twice, so the
        // stabilized total counts every id at most once.
        assert!(
            stats.stabilized_ids <= stats.accepted_ids,
            "stabilized {} > accepted {}",
            stats.stabilized_ids,
            stats.accepted_ids
        );
    }
}
