//! Network messages of the EunomiaKV / Eventual systems.

use eunomia_core::ids::{DcId, PartitionId, ReplicaId};
use eunomia_core::time::{Timestamp, VectorTime};
use eunomia_kv::{Key, Update, UpdateId, Value};

/// Metadata record a partition sends to Eunomia for one update (§5:
/// identifier plus the vector needed by remote dependency checks — never
/// the value payload).
#[derive(Clone, Debug, Hash)]
pub struct OpMeta {
    /// Lightweight update identifier.
    pub id: UpdateId,
    /// Full vector timestamp (receivers check dependencies against it).
    pub vts: VectorTime,
}

/// One entry of a [`Msg::MetaBundle`].
#[derive(Clone, Debug, Hash)]
pub struct BundleEntry {
    /// The Eunomia replica this batch is destined for.
    pub replica: ReplicaId,
    /// The partition that produced the batch.
    pub partition: PartitionId,
    /// Batched metadata, ascending by timestamp.
    pub ops: Vec<OpMeta>,
    /// Heartbeat timestamp, if the partition was idle.
    pub heartbeat: Option<Timestamp>,
}

/// One stabilized operation as shipped to remote receivers, in stable
/// order.
#[derive(Clone, Debug, Hash)]
pub struct StableOp {
    /// Origin partition (the remote sibling holds the payload).
    pub partition: PartitionId,
    /// Update identifier.
    pub id: UpdateId,
    /// Vector timestamp.
    pub vts: VectorTime,
}

/// All messages exchanged in the EunomiaKV and Eventual systems.
#[derive(Clone, Debug, Hash)]
pub enum Msg {
    /// Client → partition: read request.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Partition → client: read reply.
    ReadReply {
        /// Stored value (empty if the key was never written).
        value: Value,
        /// Version vector of the returned value.
        vts: VectorTime,
        /// Origin datacenter of the returned version (`vts[origin]` is
        /// its LWW rank timestamp); `DcId(0)` with the zero vector for
        /// never-written keys.
        origin: DcId,
    },
    /// Client → partition: update request carrying the session's
    /// dependency vector (`VClock_c`).
    Update {
        /// Key to update.
        key: Key,
        /// New value.
        value: Value,
        /// Client dependency vector.
        deps: VectorTime,
    },
    /// Partition → client: update reply with the update's vector time.
    UpdateReply {
        /// Assigned vector timestamp.
        vts: VectorTime,
    },
    /// Partition → Eunomia replica: a timestamp-ordered batch of metadata
    /// records (possibly empty) and an optional heartbeat (Alg. 2 l. 10–12).
    MetaBatch {
        /// Sending partition.
        partition: PartitionId,
        /// Batched metadata, ascending by timestamp.
        ops: Vec<OpMeta>,
        /// Heartbeat timestamp, if the partition has been idle.
        heartbeat: Option<Timestamp>,
    },
    /// Partition → parent partition (or tree root → Eunomia replica): a
    /// merged bundle of per-partition batches climbing the §5 fan-in tree.
    /// Each entry addresses one Eunomia replica; acks flow back directly
    /// from replica to originating partition.
    MetaBundle {
        /// Bundled batches: `(target replica, origin partition, ops,
        /// heartbeat)`.
        entries: Vec<BundleEntry>,
    },
    /// Eunomia replica → partition: cumulative ack (prefix property).
    MetaAck {
        /// Acking replica.
        replica: ReplicaId,
        /// Highest timestamp the replica now holds from this partition.
        upto: Timestamp,
    },
    /// Partition → remote sibling partition: the §5 data path (full
    /// update, no ordering constraints).
    RemoteData {
        /// The update payload.
        update: Update,
    },
    /// Eunomia leader → remote receiver: newly stable operations in stable
    /// (timestamp) order.
    ///
    /// Batches are chained: `prev_stable` is the stable time covered by
    /// the previous batch and `stable` the new one, so a receiver can
    /// detect (and reorder around) batches that raced across a leader
    /// fail-over, and drop duplicates a new leader may re-ship.
    StableOps {
        /// Originating datacenter.
        origin: DcId,
        /// Stable time before this batch (exclusive lower bound).
        prev_stable: Timestamp,
        /// Stable time of this batch (inclusive upper bound).
        stable: Timestamp,
        /// Operations, in stabilization order.
        ops: Vec<StableOp>,
    },
    /// Eunomia leader → follower replicas: the new stable time (Alg. 4
    /// l. 12).
    StableAnnounce {
        /// Stable time the leader just processed.
        stable: Timestamp,
    },
    /// Replica ↔ replica: Ω liveness heartbeat.
    ReplicaAlive {
        /// Sending replica.
        replica: ReplicaId,
    },
    /// Receiver → partition: apply a remote update (Alg. 5 l. 14).
    Apply {
        /// Originating datacenter of the update.
        origin: DcId,
        /// Update identifier.
        id: UpdateId,
    },
    /// Partition → receiver: the APPLY completed (Alg. 5 l. 15).
    ApplyOk {
        /// Originating datacenter of the applied update.
        origin: DcId,
        /// Update identifier.
        id: UpdateId,
    },
}
