//! Open-loop client machinery shared by every system's client process.
//!
//! A closed-loop client re-issues on each reply, so a struggling server
//! slows the generator down and the latency histogram never sees the
//! requests that *would* have been issued — coordinated omission. The
//! [`OpenLoopDriver`] instead schedules intended arrivals from an
//! [`ArrivalSpec`] on a timer, stamps each operation with its intended
//! time, and lets the client measure completion − intended. The wire
//! protocols carry no correlation ids (and the baselines' partitions can
//! reorder replies under clock-skew waiting), so the driver keeps **one
//! op in flight** and parks later arrivals in a bounded backlog: overload
//! therefore shows up as queue wait first, then as drops — both recorded
//! in `LoadStats` — never as generator stall.

use crate::metrics::GeoMetrics;
use eunomia_sim::{Context, SimTime};
use eunomia_workload::{ArrivalProcess, ArrivalSpec, Op};
use std::collections::VecDeque;

/// Timer tag used by open-loop clients for arrival wake-ups. Client
/// processes use no other timers, so a single tag is collision-free.
pub const TIMER_ARRIVAL: u64 = 100;

/// What became of one intended arrival.
#[derive(Debug, PartialEq)]
pub enum Admission {
    /// The channel was free: send this op now (its intended time is the
    /// current time, already tracked by the driver).
    Issue(Op),
    /// An op is in flight: the arrival was parked in the backlog.
    Queued,
    /// The backlog was full: the arrival was dropped (counted, not
    /// issued).
    Dropped,
}

/// Per-client open-loop state machine: the arrival process, the bounded
/// backlog, and the intended-time stamp of the op in flight.
#[derive(Clone, Debug)]
pub struct OpenLoopDriver {
    process: ArrivalProcess,
    /// Arrived-but-unissued ops with their intended times.
    queue: VecDeque<(SimTime, Op)>,
    queue_limit: usize,
    /// Intended time of the op currently in flight.
    in_flight: Option<SimTime>,
}

impl OpenLoopDriver {
    /// Builds a driver from a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ArrivalSpec::validate`] or
    /// `queue_limit` is zero (both checked earlier by
    /// `ClusterConfig::validate`).
    pub fn new(spec: &ArrivalSpec, queue_limit: usize) -> Self {
        assert!(queue_limit > 0, "open-loop queue limit must be positive");
        OpenLoopDriver {
            process: spec.process(),
            queue: VecDeque::new(),
            queue_limit,
            in_flight: None,
        }
    }

    /// Schedules the first arrival timer; call from the client's
    /// `on_start`.
    pub fn start<M>(&mut self, ctx: &mut Context<'_, M>) {
        let gap = self.process.next_gap(ctx.now(), ctx.rng());
        ctx.set_timer(gap, TIMER_ARRIVAL);
    }

    /// Handles one arrival timer firing: schedules the next arrival and
    /// admits `op` (issue now / queue / drop). The caller records the
    /// outcome in `LoadStats` and, on [`Admission::Issue`], sends the op.
    pub fn on_arrival<M>(
        &mut self,
        ctx: &mut Context<'_, M>,
        op: Op,
        metrics: &GeoMetrics,
    ) -> Admission {
        let now = ctx.now();
        let gap = self.process.next_gap(now, ctx.rng());
        ctx.set_timer(gap, TIMER_ARRIVAL);
        metrics.record_load_arrival(now);
        if self.in_flight.is_none() {
            self.in_flight = Some(now);
            Admission::Issue(op)
        } else if self.queue.len() < self.queue_limit {
            self.queue.push_back((now, op));
            metrics.record_load_queue_depth(self.queue.len() as u64);
            Admission::Queued
        } else {
            metrics.record_load_drop();
            Admission::Dropped
        }
    }

    /// Handles the in-flight op completing at `now`: records the
    /// coordinated-omission-free latency (now − intended) plus the
    /// service/queue-wait split, and returns the completed op's intended
    /// time (for the client's own latency recording) along with the next
    /// backlogged op to issue, if any.
    ///
    /// `issued_at` is when the completed op actually went on the wire.
    ///
    /// # Panics
    ///
    /// Panics if no op was in flight (a protocol bug: a reply with no
    /// matching issue).
    pub fn on_completion(
        &mut self,
        now: SimTime,
        issued_at: SimTime,
        metrics: &GeoMetrics,
    ) -> (SimTime, Option<Op>) {
        let intended = self
            .in_flight
            .take()
            .expect("open-loop completion with no op in flight");
        metrics.record_load_completion(now, now - intended, now - issued_at, issued_at - intended);
        let next = self.queue.pop_front().map(|(intended, op)| {
            self.in_flight = Some(intended);
            op
        });
        (intended, next)
    }

    /// Current backlog depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Folds the driver state into `h` for model-checking state hashing.
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        self.process.state_digest(h);
        h.write_usize(self.queue.len());
        for (t, op) in &self.queue {
            h.write_u64(*t);
            h.write_u64(op.key());
            h.write_u8(op.is_update() as u8);
        }
        h.write_u64(self.in_flight.unwrap_or(u64::MAX));
    }
}
