//! Cluster assembly: spawns clients, partitions, Eunomia replicas and
//! receivers on the simulator and wires the registry.

use crate::client::ClientProc;
use crate::config::ClusterConfig;
use crate::eunomia_proc::ReplicaProc;
use crate::metrics::GeoMetrics;
use crate::msg::Msg;
use crate::partition::PartitionProc;
use crate::receiver::ReceiverProc;
use crate::registry::{self, SharedRegistry};
use crate::system::SystemId;
use eunomia_core::ids::ReplicaId;
use eunomia_sim::{ClockModel, ProcessId, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// A built (not yet run) cluster.
pub struct Cluster {
    /// The simulation, ready to run.
    pub sim: Simulation<Msg>,
    /// Shared metrics sink.
    pub metrics: GeoMetrics,
    /// Process registry (filled).
    pub registry: SharedRegistry,
    /// Client process ids (for targeted inspection).
    pub clients: Vec<ProcessId>,
    /// Eunomia replica ids per datacenter (crash-injection targets).
    pub replicas: Vec<Vec<ProcessId>>,
    /// The configuration the cluster was built from.
    pub cfg: Rc<ClusterConfig>,
}

/// Draws a clock model within the configured skew/drift bounds.
fn draw_clock(cfg: &ClusterConfig, rng: &mut StdRng) -> ClockModel {
    if cfg.clock_skew == 0 && cfg.drift_ppm == 0.0 {
        return ClockModel::perfect();
    }
    let skew = cfg.clock_skew as i64;
    let offset = if skew > 0 {
        rng.random_range(-skew..=skew)
    } else {
        0
    };
    let drift = if cfg.drift_ppm > 0.0 {
        rng.random_range(-cfg.drift_ppm..=cfg.drift_ppm)
    } else {
        0.0
    };
    ClockModel::new(offset, drift)
}

/// Builds a full deployment of one of the *native* systems (Eventual or
/// EunomiaKV) per `cfg`. Baseline systems are assembled by
/// `eunomia-baselines`; use [`crate::run`] for the unified entry point.
///
/// Node placement: every partition, Eunomia replica, receiver and client
/// gets its own simulated node in its datacenter's region; partitions and
/// replicas get clocks drawn within the configured skew/drift bounds
/// (clients and receivers never read physical clocks).
pub fn build(id: SystemId, cfg: ClusterConfig) -> Cluster {
    assert!(
        id.is_native(),
        "cluster::build assembles only the native systems (Eventual, EunomiaKV); \
         {id} is built by eunomia-baselines"
    );
    let cfg = Rc::new(cfg);
    let metrics = GeoMetrics::new(cfg.n_dcs);
    if cfg.apply_log {
        metrics.enable_apply_log();
    }
    if cfg.track_staleness {
        metrics.enable_staleness_tracking();
    }
    if cfg.track_sessions {
        metrics.enable_session_log();
    }
    let reg = registry::shared();
    let mut sim: Simulation<Msg> = Simulation::new(cfg.topology(), cfg.seed);
    let mut clock_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_C10C);

    let mut partitions = Vec::new();
    let mut eunomia = Vec::new();
    let mut receivers = Vec::new();
    let mut clients = Vec::new();

    for dc in 0..cfg.n_dcs {
        let mut dc_parts = Vec::new();
        for p in 0..cfg.partitions_per_dc {
            let node = sim.add_node_with_clock(dc, draw_clock(&cfg, &mut clock_rng));
            let proc = PartitionProc::new(dc, p, id, cfg.clone(), reg.clone(), metrics.clone());
            dc_parts.push(sim.add_process_on(node, Box::new(proc)));
        }
        partitions.push(dc_parts);

        let mut dc_replicas = Vec::new();
        if id == SystemId::EunomiaKv {
            for r in 0..cfg.replicas.max(1) {
                let node = sim.add_node_with_clock(dc, draw_clock(&cfg, &mut clock_rng));
                let proc = ReplicaProc::new(
                    dc,
                    ReplicaId(r as u32),
                    cfg.clone(),
                    reg.clone(),
                    metrics.clone(),
                );
                dc_replicas.push(sim.add_process_on(node, Box::new(proc)));
            }
        }
        eunomia.push(dc_replicas);

        if id == SystemId::EunomiaKv {
            let node = sim.add_node(dc);
            let proc = ReceiverProc::new(dc, cfg.clone(), reg.clone(), metrics.clone());
            receivers.push(Some(sim.add_process_on(node, Box::new(proc))));
        } else {
            // Eventual runs no receiver; the registry slot stays empty so
            // a stray receiver-bound send fails loudly.
            receivers.push(None);
        }

        for c in 0..cfg.clients_per_dc {
            let node = sim.add_node(dc);
            let client_id = (dc * cfg.clients_per_dc + c) as u32;
            let proc =
                ClientProc::new(dc, client_id, id, cfg.clone(), reg.clone(), metrics.clone());
            clients.push(sim.add_process_on(node, Box::new(proc)));
        }
    }

    // Timed fault schedule: link faults + partition-server pauses.
    crate::faults::apply_faults(&cfg, &mut sim, &partitions);

    {
        let mut r = reg.borrow_mut();
        r.partitions = partitions;
        r.eunomia = eunomia.clone();
        r.receivers = receivers;
    }

    // Scheduled fault injection: crash the named Eunomia replicas.
    for crash in &cfg.crashes {
        if let Some(&pid) = eunomia.get(crash.dc).and_then(|dc| dc.get(crash.replica)) {
            sim.crash_at(pid, crash.at);
        }
    }

    Cluster {
        sim,
        metrics,
        registry: reg,
        clients,
        replicas: eunomia,
        cfg,
    }
}
