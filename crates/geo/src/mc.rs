//! Model checking over full geo deployments.
//!
//! Bridges the engine-level [`ModelChecker`] to the six systems of the
//! paper's evaluation: an [`McScenario`] is a tiny, MC-tuned
//! [`ClusterConfig`] (2 datacenters, one client per DC, a handful of
//! operations, zero latencies and service costs, perfect clocks) plus a
//! choice of correctness predicates, and [`mc_run`] exhaustively explores
//! every delivery schedule of that deployment, checking the predicates at
//! every explored state and after quiescence:
//!
//! * **causal delivery** — at every datacenter, remote updates from each
//!   origin apply in non-decreasing origin-timestamp order, and an
//!   update's dependencies (its vector entries for third datacenters) are
//!   applied before it is (the check of `tests/causality.rs`, evaluated
//!   over *all* schedules instead of one);
//! * **session guarantees** — per client and key, reads observe
//!   non-decreasing LWW ranks (monotonic reads) and never a rank below
//!   the client's own last write (read-your-writes), over the session log
//!   introduced for the threaded service work;
//! * **convergence** — at quiescence, every update committed at its
//!   origin has been applied at every datacenter.
//!
//! Why the configs look the way they do: zero network latency and zero
//! service cost make *the model checker's schedule the only source of
//! ordering*, so the explored tree covers exactly the message races;
//! perfect clocks keep physical-timestamp mechanisms deterministic per
//! schedule; and per-client operation budgets make the runs finite.
//! Timer-driven machinery (batching, stabilization, receiver flushes) is
//! explored up to the configured [`McOptions::max_timer_steps`] and then
//! allowed to finish during the quiescence closure.
//!
//! A violation comes back as a replayable [`McTrace`]; [`mc_replay`]
//! re-executes it step by step on a fresh cluster and reproduces the
//! verdict deterministically.
//!
//! The four baseline systems register their own MC runners through
//! [`register_mc_runner`] (done by `eunomia_baselines::install()`),
//! mirroring the [`crate::run`] registry.

use crate::cluster;
use crate::config::{ClusterConfig, CostModel};
use crate::metrics::{ApplyRecord, GeoMetrics, SessionRecord};
use crate::system::SystemId;
use eunomia_sim::{units, McOptions, McStats, McTrace, McVerdict, ModelChecker, Simulation};
use eunomia_workload::WorkloadConfig;
use std::collections::{HashMap, HashSet};
use std::sync::{LazyLock, Mutex};

/// A zeroed cost model: every handler is free, so simulated time moves
/// only when the schedule fires a timer. This is what makes the explored
/// interleavings exactly the message races.
fn zero_costs() -> CostModel {
    CostModel {
        read_ns: 0,
        update_ns: 0,
        vector_entry_ns: 0,
        meta_op_ns: 0,
        stable_per_op_ns: 0,
        batch_overhead_ns: 0,
        apply_ns: 0,
        stage_ns: 0,
        receiver_op_ns: 0,
        hb_ns: 0,
        scalar_meta_ns: 0,
        stab_vector_entry_ns: 0,
        stab_report_ns: 0,
        stab_broadcast_ns: 0,
        seq_req_ns: 0,
    }
}

/// The shared 2-DC model-checking deployment: `partitions` partitions and
/// one client per datacenter, `ops` operations per client, zero latency
/// and jitter, zero service costs, perfect clocks, full logging.
fn mc_config(partitions: usize, ops: u64, seed: u64) -> ClusterConfig {
    ClusterConfig {
        n_dcs: 2,
        partitions_per_dc: partitions,
        clients_per_dc: 1,
        rtt_matrix: Some(vec![vec![0, 0], vec![0, 0]]),
        intra_oneway: 0,
        jitter: 0,
        duration: units::secs(1),
        warmup: 0,
        cooldown: 0,
        replicas: 1,
        clock_skew: 0,
        drift_ppm: 0.0,
        costs: zero_costs(),
        workload: WorkloadConfig {
            keys: 2,
            read_pct: 50,
            value_size: 1,
            power_law: false,
            ..WorkloadConfig::default()
        },
        seed,
        ops_per_client: Some(ops),
        apply_log: true,
        track_sessions: true,
        ..ClusterConfig::default()
    }
}

/// A named model-checking scenario: the deployment to explore and the
/// predicates to certify.
#[derive(Clone, Debug)]
pub struct McScenario {
    /// Scenario name (figures, reports, CI gates).
    pub name: String,
    /// The deployment. Use the constructors — exhaustive exploration is
    /// only tractable for tiny, zero-latency configs.
    pub cfg: ClusterConfig,
    /// Check causal delivery at every explored state.
    pub check_causal: bool,
    /// Check per-client session guarantees at every explored state.
    pub check_sessions: bool,
    /// Check convergence at quiescence.
    pub check_convergence: bool,
    /// Exploration limits and fault budgets.
    pub options: McOptions,
    /// `None` (the default) explores exhaustively. `Some((runs, seed))`
    /// switches to that many seeded random walks instead — a sampling
    /// bug-finder for deployments too large to exhaust, with no
    /// completeness claim (the report's `complete` stays `false`).
    pub random: Option<(u64, u64)>,
}

impl McScenario {
    /// The certification scenario for `id`: a 2-DC, single-partition,
    /// one-client-per-DC deployment sized so exhaustive exploration
    /// terminates quickly, with every predicate on.
    ///
    /// Per-system tuning: the global-stabilization baselines need several
    /// timer rounds per update (clock pumping) so they run one op per
    /// client with a deeper timer budget; the rest run two ops per client.
    pub fn certify(id: SystemId) -> Self {
        let (ops, timer_budget) = match id {
            SystemId::GentleRain | SystemId::Cure => (1, 8),
            SystemId::SSeq | SystemId::ASeq => (2, 4),
            SystemId::Eventual | SystemId::EunomiaKv => (2, 6),
        };
        let cfg = mc_config(1, ops, 42);
        debug_assert!(cfg.validate().is_ok());
        McScenario {
            name: format!("certify-{}", id.label().to_ascii_lowercase()),
            cfg,
            check_causal: true,
            check_sessions: true,
            check_convergence: true,
            options: McOptions {
                max_timer_steps: timer_budget,
                ..McOptions::default()
            },
            random: None,
        }
    }

    /// A deployment on which the causal-delivery predicate is *not* a
    /// theorem for the eventually consistent baseline: two partitions per
    /// datacenter and an update-only workload, so one origin's updates
    /// travel on two independent FIFO links and the checker can find a
    /// schedule applying them out of origin-timestamp order. The same
    /// scenario certifies for EunomiaKV (stabilization forces the order).
    pub fn violation_demo() -> Self {
        let mut cfg = mc_config(2, 3, 7);
        cfg.workload.read_pct = 0;
        debug_assert!(cfg.validate().is_ok());
        McScenario {
            name: "violation-demo".to_string(),
            cfg,
            check_causal: true,
            check_sessions: false,
            check_convergence: false,
            options: McOptions::default(),
            random: None,
        }
    }

    /// Renames the scenario.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Switches to `runs` seeded random walks instead of exhaustive DFS.
    pub fn randomized(mut self, runs: u64, seed: u64) -> Self {
        self.random = Some((runs, seed));
        self
    }
}

/// Result of one model-checking run.
#[derive(Clone, Debug)]
pub struct McReport {
    /// System label.
    pub system: String,
    /// Scenario name.
    pub scenario: String,
    /// Certified, or a counterexample.
    pub verdict: McVerdict,
    /// Exploration counters (all zero in replay mode).
    pub stats: McStats,
    /// Whether the search covered the full schedule space (no path was
    /// truncated by `max_depth`/`max_states`; timer budgets still bound
    /// timer interleavings). Always `false` in replay mode.
    pub complete: bool,
}

/// The correctness predicates, exposed for direct use in tests.
pub mod predicates {
    use super::*;

    /// Causal delivery over the apply log: per destination, remote
    /// updates from each origin land in non-decreasing origin-timestamp
    /// order, and every third-datacenter dependency of an update is
    /// applied before it. Prefix-closed, so it is sound to check on
    /// partial logs mid-schedule.
    pub fn causal_order(log: &[ApplyRecord], n_dcs: usize) -> Result<(), String> {
        let mut applied: HashMap<u16, Vec<u64>> = HashMap::new();
        for rec in log {
            let site = applied.entry(rec.dest).or_insert_with(|| vec![0; n_dcs]);
            if rec.origin == rec.dest {
                site[rec.origin as usize] = site[rec.origin as usize].max(rec.ts);
                continue;
            }
            if rec.ts < site[rec.origin as usize] {
                return Err(format!(
                    "causal order violated: dc{} applied origin-dc{} update ts {} after \
                     already covering ts {}",
                    rec.dest, rec.origin, rec.ts, site[rec.origin as usize]
                ));
            }
            for (d, &applied_d) in site.iter().enumerate().take(n_dcs) {
                if d == rec.dest as usize || d == rec.origin as usize {
                    continue;
                }
                if rec.vts[d] > applied_d {
                    return Err(format!(
                        "causal dependency violated at dc{}: update from dc{} depends on \
                         dc{} up to ts {}, but only ts {} was applied",
                        rec.dest, rec.origin, d, rec.vts[d], applied_d
                    ));
                }
            }
            site[rec.origin as usize] = rec.ts;
        }
        Ok(())
    }

    /// Session guarantees over the session log: per client and key, read
    /// ranks never decrease (monotonic reads) and never fall below the
    /// client's own last write (read-your-writes). Prefix-closed.
    pub fn session_guarantees(log: &[SessionRecord]) -> Result<(), String> {
        let mut last_read: HashMap<(u32, u64), (u64, u16)> = HashMap::new();
        let mut own_write: HashMap<(u32, u64), (u64, u16)> = HashMap::new();
        for rec in log {
            let rank = rec.rank();
            if rec.is_update {
                own_write.insert((rec.client, rec.key), rank);
                continue;
            }
            if let Some(&prev) = last_read.get(&(rec.client, rec.key)) {
                if rank < prev {
                    return Err(format!(
                        "monotonic reads violated: client {} key {} saw rank {rank:?} \
                         after {prev:?}",
                        rec.client, rec.key
                    ));
                }
            }
            if let Some(&w) = own_write.get(&(rec.client, rec.key)) {
                if rank < w {
                    return Err(format!(
                        "read-your-writes violated: client {} key {} read rank {rank:?} \
                         below its own write {w:?}",
                        rec.client, rec.key
                    ));
                }
            }
            last_read.insert((rec.client, rec.key), rank);
        }
        Ok(())
    }

    /// Convergence over the apply log: every update committed at its
    /// origin appears as an apply at every other datacenter. Only
    /// meaningful at quiescence (mid-schedule, propagation is legitimately
    /// incomplete) and under full replication — which every MC config
    /// uses.
    pub fn convergence(log: &[ApplyRecord], n_dcs: usize) -> Result<(), String> {
        let mut landed: HashSet<(u16, u16, u64, u64)> = HashSet::new();
        let mut originated: Vec<(u16, u64, u64)> = Vec::new();
        for rec in log {
            landed.insert((rec.dest, rec.origin, rec.key, rec.ts));
            if rec.origin == rec.dest {
                originated.push((rec.origin, rec.key, rec.ts));
            }
        }
        for &(origin, key, ts) in &originated {
            for dest in 0..n_dcs as u16 {
                if dest == origin {
                    continue;
                }
                if !landed.contains(&(dest, origin, key, ts)) {
                    return Err(format!(
                        "convergence failure: update (origin dc{origin}, key {key}, \
                         ts {ts}) never applied at dc{dest}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runs the model checker over a cluster built by `factory` (which must
/// also hand back the deployment's [`GeoMetrics`] as the predicate
/// probe), under `sc`'s predicates and options. With `trace` the
/// counterexample is replayed instead of searching. This is the shared
/// driver both the native dispatch and the baseline runners go through.
pub fn drive<M>(
    system: &str,
    sc: &McScenario,
    factory: impl Fn() -> (Simulation<M>, GeoMetrics),
    trace: Option<&McTrace>,
) -> McReport
where
    M: std::hash::Hash + Clone,
{
    let n_dcs = sc.cfg.n_dcs;
    let (causal, sessions, conv) = (sc.check_causal, sc.check_sessions, sc.check_convergence);
    let predicate = move |m: &GeoMetrics, phase: eunomia_sim::McPhase| -> Result<(), String> {
        if causal {
            predicates::causal_order(&m.apply_log(), n_dcs)?;
        }
        if sessions {
            predicates::session_guarantees(&m.session_log())?;
        }
        if conv && phase == eunomia_sim::McPhase::Quiescence {
            predicates::convergence(&m.apply_log(), n_dcs)?;
        }
        Ok(())
    };
    let checker = ModelChecker::new(factory, predicate, sc.options);
    match trace {
        Some(t) => {
            let verdict = match checker.replay(t) {
                Ok(()) => McVerdict::Certified,
                Err((step, message)) => McVerdict::Violated {
                    step,
                    message,
                    trace: t.clone(),
                },
            };
            McReport {
                system: system.to_string(),
                scenario: sc.name.clone(),
                verdict,
                stats: McStats::default(),
                complete: false,
            }
        }
        None => {
            let out = match sc.random {
                Some((runs, seed)) => checker.run_random(runs, seed),
                None => checker.run_exhaustive(),
            };
            // Random walks sample; only an untruncated exhaustive search
            // covers the schedule space.
            let complete = sc.random.is_none() && out.stats.truncated == 0;
            McReport {
                system: system.to_string(),
                scenario: sc.name.clone(),
                verdict: out.verdict,
                stats: out.stats,
                complete,
            }
        }
    }
}

/// A function that model-checks one baseline system. Registered by
/// `eunomia_baselines::install()`, mirroring [`crate::SystemRunner`].
pub type McSystemRunner = fn(SystemId, &McScenario, Option<&McTrace>) -> McReport;

static MC_RUNNERS: LazyLock<Mutex<HashMap<SystemId, McSystemRunner>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Registers the model-checking runner for a non-native system.
/// Re-registration replaces the runner (`install()` is idempotent).
///
/// # Panics
/// Panics if `id` is a native system.
pub fn register_mc_runner(id: SystemId, runner: McSystemRunner) {
    assert!(
        !id.is_native(),
        "{id} is model-checked by eunomia-geo itself and cannot be overridden"
    );
    MC_RUNNERS.lock().unwrap().insert(id, runner);
}

fn mc_runner_for(id: SystemId) -> Option<McSystemRunner> {
    MC_RUNNERS.lock().unwrap().get(&id).copied()
}

fn mc_dispatch(id: SystemId, sc: &McScenario, trace: Option<&McTrace>) -> McReport {
    if id.is_native() {
        let cfg = sc.cfg.clone();
        let factory = move || {
            let c = cluster::build(id, cfg.clone());
            (c.sim, c.metrics)
        };
        return drive(id.label(), sc, factory, trace);
    }
    let runner = mc_runner_for(id).unwrap_or_else(|| {
        panic!(
            "no MC runner registered for {id}: call eunomia_baselines::install() \
             (the eunomia facade's run() does this automatically)"
        )
    });
    runner(id, sc, trace)
}

/// Exhaustively model-checks `id` under `sc`: explores every delivery
/// schedule (within the options' budgets), evaluating the scenario's
/// predicates at every explored state and at quiescence. Returns the
/// verdict — [`McVerdict::Violated`] carries a replayable counterexample
/// — alongside the exploration counters.
///
/// # Panics
/// Panics if `id` is a baseline system and no MC runner has been
/// registered; call `eunomia_baselines::install()` first.
pub fn mc_run(id: SystemId, sc: &McScenario) -> McReport {
    mc_dispatch(id, sc, None)
}

/// Replays a counterexample `trace` for `id` under `sc` on a fresh
/// cluster, re-checking predicates after every step. For a genuine
/// counterexample this reproduces the violation deterministically.
///
/// # Panics
/// See [`mc_run`].
pub fn mc_replay(id: SystemId, sc: &McScenario, trace: &McTrace) -> McReport {
    mc_dispatch(id, sc, Some(trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_certification_is_exhaustive_and_clean() {
        for id in [SystemId::EunomiaKv, SystemId::Eventual] {
            let sc = McScenario::certify(id);
            let report = mc_run(id, &sc);
            assert!(report.verdict.is_certified(), "{id}: {:?}", report.verdict);
            assert!(
                report.complete,
                "{id}: search truncated: {:?}",
                report.stats
            );
            assert!(report.stats.explored > 1, "{id}: {:?}", report.stats);
        }
    }

    #[test]
    fn eventual_violates_causal_order_and_the_trace_replays() {
        let sc = McScenario::violation_demo();
        let report = mc_run(SystemId::Eventual, &sc);
        let McVerdict::Violated {
            step,
            message,
            trace,
        } = report.verdict
        else {
            panic!("two FIFO links must let Eventual break per-origin order");
        };
        assert!(message.contains("causal"), "{message}");
        // The counterexample replays to the same verdict on a fresh build.
        let replay = mc_replay(SystemId::Eventual, &sc, &trace);
        let McVerdict::Violated {
            step: rstep,
            message: rmessage,
            ..
        } = replay.verdict
        else {
            panic!("replay must reproduce the violation");
        };
        assert_eq!((rstep, rmessage), (step, message));
        // EunomiaKV certifies on the very same deployment.
        let kv = mc_run(SystemId::EunomiaKv, &sc);
        assert!(kv.verdict.is_certified(), "{:?}", kv.verdict);
    }
}
