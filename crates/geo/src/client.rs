//! Closed-loop client simulation actor.
//!
//! Each client runs Algorithm 1 (§4 vector form) against its home
//! datacenter: it issues one operation, waits for the reply, folds the
//! returned timestamp into its session clock and immediately issues the
//! next operation — the paper's Basho Bench clients with zero think time.

use crate::config::ClusterConfig;
use crate::metrics::{GeoMetrics, SessionRecord};
use crate::msg::Msg;
use crate::registry::SharedRegistry;
use crate::system::SystemId;
use eunomia_core::ids::DcId;
use eunomia_core::time::VectorTime;
use eunomia_kv::client::ClientState;
use eunomia_kv::{ring, Key};
use eunomia_sim::{Context, Process, ProcessId, SimTime};
use eunomia_workload::{Op, OpGenerator};
use std::rc::Rc;

/// The client actor.
pub struct ClientProc {
    session: ClientState,
    gen: OpGenerator,
    dc: usize,
    /// Globally unique client index (keys the session log).
    id: u32,
    kind: SystemId,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    issued_at: SimTime,
    pending_is_update: bool,
    pending_key: u64,
    completed: u64,
}

impl ClientProc {
    /// Creates client `id` homed at datacenter `dc`.
    pub fn new(
        dc: usize,
        id: u32,
        kind: SystemId,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        ClientProc {
            session: ClientState::new(DcId(dc as u16), cfg.n_dcs),
            gen: cfg.workload.generator(),
            dc,
            id,
            kind,
            cfg,
            reg,
            metrics,
            issued_at: 0,
            pending_is_update: false,
            pending_key: 0,
            completed: 0,
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, Msg>) {
        // Under partial replication, clients access only keys their home
        // datacenter stores (remote reads are out of scope, as in Practi's
        // partial-replication reads-go-home model).
        let mut op = self.gen.next_op(ctx.rng());
        if let Some(rf) = self.cfg.replication_factor {
            while !ring::replicates(Key(op.key()), self.dc, self.cfg.n_dcs, rf) {
                op = self.gen.next_op(ctx.rng());
            }
        }
        let key = Key(op.key());
        let partition = ring::responsible(key, self.cfg.partitions_per_dc);
        let target = self.reg.borrow().partition(self.dc, partition.index());
        self.issued_at = ctx.now();
        self.pending_key = key.0;
        match op {
            Op::Read(_) => {
                self.pending_is_update = false;
                ctx.send(target, Msg::Read { key });
            }
            Op::Update(_, value) => {
                self.pending_is_update = true;
                let deps = match self.kind {
                    // §4: the update carries the client's whole causal past.
                    SystemId::EunomiaKv => self.session.vclock().clone(),
                    // Eventual consistency tracks nothing.
                    SystemId::Eventual => VectorTime::new(self.cfg.n_dcs),
                    other => unreachable!("geo clients only drive native systems, not {other}"),
                };
                ctx.send(target, Msg::Update { key, value, deps });
            }
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, Msg>) {
        let latency = ctx.now().saturating_sub(self.issued_at);
        self.metrics
            .record_op(self.dc, ctx.now(), latency, self.pending_is_update);
        self.completed += 1;
        if self
            .cfg
            .ops_per_client
            .is_none_or(|budget| self.completed < budget)
        {
            self.issue(ctx);
        }
    }
}

impl Process<Msg> for ClientProc {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.issue(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
        match msg {
            Msg::ReadReply { vts, origin, .. } => {
                if self.cfg.track_sessions {
                    self.metrics.record_session(SessionRecord {
                        dc: self.dc as u16,
                        client: self.id,
                        key: self.pending_key,
                        is_update: false,
                        origin: origin.0,
                        vts: vts.as_ticks(),
                        at: ctx.now(),
                    });
                }
                if self.kind == SystemId::EunomiaKv {
                    self.session.on_read_reply(&vts);
                }
                self.complete(ctx);
            }
            Msg::UpdateReply { vts } => {
                if self.cfg.track_sessions {
                    self.metrics.record_session(SessionRecord {
                        dc: self.dc as u16,
                        client: self.id,
                        key: self.pending_key,
                        is_update: true,
                        origin: self.dc as u16,
                        vts: vts.as_ticks(),
                        at: ctx.now(),
                    });
                }
                if self.kind == SystemId::EunomiaKv {
                    self.session.on_update_reply(vts);
                }
                self.complete(ctx);
            }
            other => {
                debug_assert!(false, "client received unexpected message: {other:?}");
            }
        }
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        self.session.state_digest(h);
        // The generator's counters decide the keys/kinds of future ops;
        // `issued_at` is excluded (pure latency bookkeeping).
        self.gen.state_digest(h);
        h.write_u32(self.id);
        self.pending_is_update.hash(&mut h);
        h.write_u64(self.pending_key);
        h.write_u64(self.completed);
        true
    }
}
