//! Closed-loop client simulation actor.
//!
//! Each client runs Algorithm 1 (§4 vector form) against its home
//! datacenter: it issues one operation, waits for the reply, folds the
//! returned timestamp into its session clock and immediately issues the
//! next operation — the paper's Basho Bench clients with zero think time.

use crate::config::ClusterConfig;
use crate::metrics::GeoMetrics;
use crate::msg::Msg;
use crate::registry::SharedRegistry;
use crate::system::SystemId;
use eunomia_core::ids::DcId;
use eunomia_core::time::VectorTime;
use eunomia_kv::client::ClientState;
use eunomia_kv::{ring, Key};
use eunomia_sim::{Context, Process, ProcessId, SimTime};
use eunomia_workload::{Op, OpGenerator};
use std::rc::Rc;

/// The client actor.
pub struct ClientProc {
    session: ClientState,
    gen: OpGenerator,
    dc: usize,
    kind: SystemId,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    issued_at: SimTime,
    pending_is_update: bool,
    completed: u64,
}

impl ClientProc {
    /// Creates a client homed at datacenter `dc`.
    pub fn new(
        dc: usize,
        kind: SystemId,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        ClientProc {
            session: ClientState::new(DcId(dc as u16), cfg.n_dcs),
            gen: cfg.workload.generator(),
            dc,
            kind,
            cfg,
            reg,
            metrics,
            issued_at: 0,
            pending_is_update: false,
            completed: 0,
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, Msg>) {
        // Under partial replication, clients access only keys their home
        // datacenter stores (remote reads are out of scope, as in Practi's
        // partial-replication reads-go-home model).
        let mut op = self.gen.next_op(ctx.rng());
        if let Some(rf) = self.cfg.replication_factor {
            while !ring::replicates(Key(op.key()), self.dc, self.cfg.n_dcs, rf) {
                op = self.gen.next_op(ctx.rng());
            }
        }
        let key = Key(op.key());
        let partition = ring::responsible(key, self.cfg.partitions_per_dc);
        let target = self.reg.borrow().partition(self.dc, partition.index());
        self.issued_at = ctx.now();
        match op {
            Op::Read(_) => {
                self.pending_is_update = false;
                ctx.send(target, Msg::Read { key });
            }
            Op::Update(_, value) => {
                self.pending_is_update = true;
                let deps = match self.kind {
                    // §4: the update carries the client's whole causal past.
                    SystemId::EunomiaKv => self.session.vclock().clone(),
                    // Eventual consistency tracks nothing.
                    SystemId::Eventual => VectorTime::new(self.cfg.n_dcs),
                    other => unreachable!("geo clients only drive native systems, not {other}"),
                };
                ctx.send(target, Msg::Update { key, value, deps });
            }
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, Msg>) {
        let latency = ctx.now().saturating_sub(self.issued_at);
        self.metrics
            .record_op(self.dc, ctx.now(), latency, self.pending_is_update);
        self.completed += 1;
        if self
            .cfg
            .ops_per_client
            .is_none_or(|budget| self.completed < budget)
        {
            self.issue(ctx);
        }
    }
}

impl Process<Msg> for ClientProc {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.issue(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
        match msg {
            Msg::ReadReply { vts, .. } => {
                if self.kind == SystemId::EunomiaKv {
                    self.session.on_read_reply(&vts);
                }
                self.complete(ctx);
            }
            Msg::UpdateReply { vts } => {
                if self.kind == SystemId::EunomiaKv {
                    self.session.on_update_reply(vts);
                }
                self.complete(ctx);
            }
            other => {
                debug_assert!(false, "client received unexpected message: {other:?}");
            }
        }
    }
}
