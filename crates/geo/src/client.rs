//! Client simulation actor (closed- or open-loop).
//!
//! Each client runs Algorithm 1 (§4 vector form) against its home
//! datacenter. In the default closed loop it issues one operation, waits
//! for the reply, folds the returned timestamp into its session clock and
//! immediately issues the next operation — the paper's Basho Bench
//! clients with zero think time. With [`ClusterConfig::open_loop`] set,
//! an [`OpenLoopDriver`] instead schedules intended arrivals from the
//! configured process and latency is measured from the intended time
//! (coordinated-omission-free; see [`crate::open_loop`]).

use crate::config::ClusterConfig;
use crate::metrics::{GeoMetrics, SessionRecord};
use crate::msg::Msg;
use crate::open_loop::{Admission, OpenLoopDriver, TIMER_ARRIVAL};
use crate::registry::SharedRegistry;
use crate::system::SystemId;
use eunomia_core::ids::DcId;
use eunomia_core::time::VectorTime;
use eunomia_kv::client::ClientState;
use eunomia_kv::{ring, Key};
use eunomia_sim::{Context, Process, ProcessId, SimTime};
use eunomia_workload::{Op, OpGenerator};
use std::rc::Rc;

/// The client actor.
pub struct ClientProc {
    session: ClientState,
    gen: OpGenerator,
    dc: usize,
    /// Globally unique client index (keys the session log).
    id: u32,
    kind: SystemId,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    issued_at: SimTime,
    pending_is_update: bool,
    pending_key: u64,
    completed: u64,
    /// Present iff the run is open-loop.
    open: Option<OpenLoopDriver>,
}

impl ClientProc {
    /// Creates client `id` homed at datacenter `dc`.
    pub fn new(
        dc: usize,
        id: u32,
        kind: SystemId,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        let open = cfg
            .open_loop
            .as_ref()
            .map(|ol| OpenLoopDriver::new(&ol.arrivals, ol.queue_limit));
        ClientProc {
            session: ClientState::new(DcId(dc as u16), cfg.n_dcs),
            gen: cfg.workload.generator(),
            dc,
            id,
            kind,
            cfg,
            reg,
            metrics,
            issued_at: 0,
            pending_is_update: false,
            pending_key: 0,
            completed: 0,
            open,
        }
    }

    fn next_op(&mut self, ctx: &mut Context<'_, Msg>) -> Op {
        // Under partial replication, clients access only keys their home
        // datacenter stores (remote reads are out of scope, as in Practi's
        // partial-replication reads-go-home model).
        let mut op = self.gen.next_op(ctx.rng());
        if let Some(rf) = self.cfg.replication_factor {
            while !ring::replicates(Key(op.key()), self.dc, self.cfg.n_dcs, rf) {
                op = self.gen.next_op(ctx.rng());
            }
        }
        op
    }

    fn issue(&mut self, ctx: &mut Context<'_, Msg>) {
        let op = self.next_op(ctx);
        self.send_op(ctx, op);
    }

    fn send_op(&mut self, ctx: &mut Context<'_, Msg>, op: Op) {
        let key = Key(op.key());
        let partition = ring::responsible(key, self.cfg.partitions_per_dc);
        let target = self.reg.borrow().partition(self.dc, partition.index());
        self.issued_at = ctx.now();
        self.pending_key = key.0;
        match op {
            Op::Read(_) => {
                self.pending_is_update = false;
                ctx.send(target, Msg::Read { key });
            }
            Op::Update(_, value) => {
                self.pending_is_update = true;
                let deps = match self.kind {
                    // §4: the update carries the client's whole causal past.
                    SystemId::EunomiaKv => self.session.vclock().clone(),
                    // Eventual consistency tracks nothing.
                    SystemId::Eventual => VectorTime::new(self.cfg.n_dcs),
                    other => unreachable!("geo clients only drive native systems, not {other}"),
                };
                ctx.send(target, Msg::Update { key, value, deps });
            }
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        if let Some(driver) = self.open.as_mut() {
            // Open loop: latency runs from the *intended* arrival, so a
            // stalled reply inflates this op and every queued one behind
            // it — no coordinated omission.
            let (intended, next) = driver.on_completion(now, self.issued_at, &self.metrics);
            self.metrics.record_op(
                self.dc,
                now,
                now.saturating_sub(intended),
                self.pending_is_update,
            );
            self.completed += 1;
            if let Some(op) = next {
                if self.under_budget() {
                    self.send_op(ctx, op);
                }
            }
            return;
        }
        let latency = now.saturating_sub(self.issued_at);
        self.metrics
            .record_op(self.dc, now, latency, self.pending_is_update);
        self.completed += 1;
        if self.under_budget() {
            self.issue(ctx);
        }
    }

    fn under_budget(&self) -> bool {
        self.cfg
            .ops_per_client
            .is_none_or(|budget| self.completed < budget)
    }
}

impl Process<Msg> for ClientProc {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        match self.open.as_mut() {
            Some(driver) => driver.start(ctx),
            None => self.issue(ctx),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_ARRIVAL, "client has no other timers");
        if !self.under_budget() {
            // Budget exhausted: let the arrival loop die by not
            // rescheduling.
            return;
        }
        let op = self.next_op(ctx);
        let driver = self.open.as_mut().expect("arrival timer without driver");
        if let Admission::Issue(op) = driver.on_arrival(ctx, op, &self.metrics) {
            self.send_op(ctx, op);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
        match msg {
            Msg::ReadReply { vts, origin, .. } => {
                if self.cfg.track_sessions {
                    self.metrics.record_session(SessionRecord {
                        dc: self.dc as u16,
                        client: self.id,
                        key: self.pending_key,
                        is_update: false,
                        origin: origin.0,
                        vts: vts.as_ticks(),
                        at: ctx.now(),
                    });
                }
                if self.kind == SystemId::EunomiaKv {
                    self.session.on_read_reply(&vts);
                }
                self.complete(ctx);
            }
            Msg::UpdateReply { vts } => {
                if self.cfg.track_sessions {
                    self.metrics.record_session(SessionRecord {
                        dc: self.dc as u16,
                        client: self.id,
                        key: self.pending_key,
                        is_update: true,
                        origin: self.dc as u16,
                        vts: vts.as_ticks(),
                        at: ctx.now(),
                    });
                }
                if self.kind == SystemId::EunomiaKv {
                    self.session.on_update_reply(vts);
                }
                self.complete(ctx);
            }
            other => {
                debug_assert!(false, "client received unexpected message: {other:?}");
            }
        }
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        self.session.state_digest(h);
        // The generator's counters decide the keys/kinds of future ops;
        // `issued_at` is excluded (pure latency bookkeeping).
        self.gen.state_digest(h);
        h.write_u32(self.id);
        self.pending_is_update.hash(&mut h);
        h.write_u64(self.pending_key);
        h.write_u64(self.completed);
        if let Some(driver) = &self.open {
            driver.state_digest(h);
        }
        true
    }
}
