#![warn(missing_docs)]

//! Geo-replication layer: full EunomiaKV and Eventual systems on the
//! discrete-event simulator.
//!
//! This crate assembles the pieces of `eunomia-core` and `eunomia-kv` into
//! running datacenters (§4 of the paper):
//!
//! * [`client::ClientProc`] — closed-loop clients with vector sessions
//!   (Algorithm 1 / §4);
//! * [`partition::PartitionProc`] — partition servers: timestamping,
//!   batched metadata to the Eunomia replicas (§5), immediate data-path
//!   shipping to sibling partitions, remote applies;
//! * [`eunomia_proc::ReplicaProc`] — the (optionally replicated) Eunomia
//!   service: ingestion with duplicate filtering, Ω leader election,
//!   leader-driven `PROCESS_STABLE` and ordered shipping to remote
//!   receivers (Algorithms 3–4);
//! * [`receiver::ReceiverProc`] — the per-datacenter receiver running the
//!   FLUSH loop of Algorithm 5 (one outstanding APPLY, exactly as
//!   published; a pipelined extension exists for the ablation bench);
//! * [`cluster`] — wiring; [`harness`] — the shared [`RunReport`].
//!
//! The same crate also builds the **Eventual** baseline (no causality:
//! remote updates apply on arrival), which is the paper's normalization
//! reference.
//!
//! # The unified run API
//!
//! Every experiment goes through one entry point:
//!
//! * [`SystemId`] names all six systems of the paper's evaluation;
//! * [`Scenario`] is a named, validated [`ClusterConfig`] (presets:
//!   paper 3-DC, small-test, wide 5-DC, straggler, partial replication);
//! * [`run`] dispatches `(SystemId, &Scenario)` to the right assembly —
//!   the four baselines register themselves via
//!   `eunomia_baselines::install()`;
//! * [`Sweep`] runs a `[system x scenario]` grid and renders shared
//!   comparison tables.

pub mod client;
pub mod cluster;
pub mod config;
pub mod eunomia_proc;
pub mod faults;
pub mod harness;
pub mod mc;
pub mod metrics;
pub mod msg;
pub mod open_loop;
pub mod partition;
pub mod receiver;
pub mod registry;
pub mod scenario;
pub mod system;
pub mod table;

pub use config::{
    ClusterConfig, ClusterConfigBuilder, ConfigError, CostModel, OpenLoopConfig, ReplicaCrash,
    StragglerConfig,
};
pub use eunomia_sim::EngineStats;
pub use eunomia_stats::{LoadStats, ServiceStats};
pub use faults::{apply_faults, dc_unavailability, DcAvailability, FaultEvent};
pub use harness::{HealConvergence, RunReport};
pub use mc::{mc_replay, mc_run, register_mc_runner, McReport, McScenario, McSystemRunner};
pub use metrics::GeoMetrics;
pub use msg::Msg;
pub use open_loop::{Admission, OpenLoopDriver, TIMER_ARRIVAL};
pub use scenario::{Scenario, Sweep, SweepCell, SweepResults};
pub use system::{register_runner, run, SystemId, SystemRunner};
pub use table::format_table;
