//! Eunomia replica simulation actor (Algorithms 3–4).
//!
//! With `replicas = 1` this is the plain service of §3.1; with more it is
//! the fault-tolerant service of §3.3: every replica ingests every batch,
//! an Ω elector picks the leader, the leader stabilizes and ships, and
//! followers discard what the leader announced. Stable batches are chained
//! (`prev_stable`/`stable`) so receivers stay correct across fail-over.

use crate::config::ClusterConfig;
use crate::metrics::GeoMetrics;
use crate::msg::{BundleEntry, Msg, OpMeta, StableOp};
use crate::registry::SharedRegistry;
use eunomia_core::election::OmegaState;
use eunomia_core::ids::{DcId, ReplicaId};
use eunomia_core::replica::ReplicaState;
use eunomia_core::time::Timestamp;
use eunomia_sim::{Context, Process, ProcessId};
use std::rc::Rc;

const TIMER_STABLE: u64 = 2;
const TIMER_OMEGA: u64 = 3;

/// The Eunomia replica actor.
pub struct ReplicaProc {
    state: ReplicaState<OpMeta>,
    omega: OmegaState,
    dc: usize,
    rid: ReplicaId,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    last_shipped_stable: Timestamp,
}

impl ReplicaProc {
    /// Creates replica `rid` of datacenter `dc`'s Eunomia service.
    pub fn new(
        dc: usize,
        rid: ReplicaId,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        let replicas = cfg.replicas.max(1);
        ReplicaProc {
            state: ReplicaState::new(rid, cfg.partitions_per_dc),
            omega: OmegaState::new(rid, replicas, cfg.omega_timeout),
            dc,
            rid,
            cfg,
            reg,
            metrics,
            last_shipped_stable: Timestamp::ZERO,
        }
    }

    fn peers(&self) -> Vec<(ReplicaId, ProcessId)> {
        self.reg
            .borrow()
            .eunomia_replicas(self.dc)
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != self.rid.index())
            .map(|(f, pid)| (ReplicaId(f as u32), *pid))
            .collect()
    }

    /// Ingests one partition's batch (+ optional heartbeat), returning the
    /// cumulative ack timestamp.
    fn ingest_entry(&mut self, ctx: &mut Context<'_, Msg>, entry: BundleEntry) -> Timestamp {
        let batch = entry.ops.into_iter().map(|m| (m.id.ts, m));
        let mut ack = self
            .state
            .new_batch(entry.partition, batch)
            .expect("cluster wiring guarantees valid partition ids");
        if let Some(hb) = entry.heartbeat {
            ctx.consume(self.cfg.costs.hb_ns);
            ack = self
                .state
                .heartbeat(entry.partition, hb)
                .expect("cluster wiring guarantees valid partition ids");
        }
        ack
    }

    fn process_stable(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = Timestamp(ctx.now());
        let leader = self.omega.leader(now);
        self.state.set_leader(leader);
        if leader != self.rid {
            return;
        }
        let prev_stable = self.state.last_stable();
        let mut out = Vec::new();
        let Some(stable) = self.state.leader_process_stable(&mut out) else {
            return;
        };
        ctx.consume(
            self.cfg.costs.stable_per_op_ns * out.len() as u64 + self.cfg.costs.batch_overhead_ns,
        );
        for (_, peer) in self.peers() {
            ctx.send(peer, Msg::StableAnnounce { stable });
        }
        let ops: Vec<StableOp> = out
            .into_iter()
            .map(|(key, meta)| StableOp {
                partition: key.partition,
                id: meta.id,
                vts: meta.vts,
            })
            .collect();
        let reg = self.reg.borrow();
        for dest in 0..self.cfg.n_dcs {
            if dest != self.dc {
                ctx.send(
                    reg.receiver(dest),
                    Msg::StableOps {
                        origin: DcId(self.dc as u16),
                        prev_stable,
                        stable,
                        ops: ops.clone(),
                    },
                );
            }
        }
        self.last_shipped_stable = stable;
    }
}

impl Process<Msg> for ReplicaProc {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(self.cfg.theta, TIMER_STABLE);
        if self.cfg.replicas > 1 {
            ctx.set_timer(self.cfg.omega_interval, TIMER_OMEGA);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
        match msg {
            Msg::MetaBatch {
                partition,
                ops,
                heartbeat,
            } => {
                self.metrics.record_service_msg();
                ctx.consume(
                    self.cfg.costs.batch_overhead_ns + self.cfg.costs.meta_op_ns * ops.len() as u64,
                );
                let entry = BundleEntry {
                    replica: self.rid,
                    partition,
                    ops,
                    heartbeat,
                };
                let ack = self.ingest_entry(ctx, entry);
                ctx.send(
                    from,
                    Msg::MetaAck {
                        replica: self.rid,
                        upto: ack,
                    },
                );
            }
            Msg::MetaBundle { entries } => {
                // §5 tree: one message, many partitions' batches. Acks go
                // straight back to each originating partition.
                self.metrics.record_service_msg();
                ctx.consume(self.cfg.costs.batch_overhead_ns);
                for entry in entries {
                    debug_assert_eq!(entry.replica, self.rid, "root routes per replica");
                    ctx.consume(self.cfg.costs.meta_op_ns * entry.ops.len() as u64);
                    let partition = entry.partition;
                    let ack = self.ingest_entry(ctx, entry);
                    let target = self.reg.borrow().partition(self.dc, partition.index());
                    ctx.send(
                        target,
                        Msg::MetaAck {
                            replica: self.rid,
                            upto: ack,
                        },
                    );
                }
            }
            Msg::StableAnnounce { stable } => {
                ctx.consume(self.cfg.costs.hb_ns);
                self.state.apply_stable(stable);
            }
            Msg::ReplicaAlive { replica } => {
                self.omega.record_heartbeat(replica, Timestamp(ctx.now()));
            }
            other => {
                debug_assert!(false, "replica received unexpected message: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        match tag {
            TIMER_STABLE => {
                self.process_stable(ctx);
                ctx.set_timer(self.cfg.theta, TIMER_STABLE);
            }
            TIMER_OMEGA => {
                for (_, peer) in self.peers() {
                    ctx.send(peer, Msg::ReplicaAlive { replica: self.rid });
                }
                ctx.set_timer(self.cfg.omega_interval, TIMER_OMEGA);
            }
            _ => debug_assert!(false, "unknown timer {tag}"),
        }
    }

    fn mc_state(&self, h: &mut dyn std::hash::Hasher) -> bool {
        self.state.state_digest(h);
        self.omega.state_digest(h);
        h.write_usize(self.dc);
        h.write_u32(self.rid.0);
        h.write_u64(self.last_shipped_stable.0);
        true
    }
}
