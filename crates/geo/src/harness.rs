//! Run reports shared by every system, native and baseline.
//!
//! The run entry point itself lives in [`crate::system`] (`run(SystemId,
//! &Scenario)`); this module holds the [`RunReport`] all systems produce
//! and the [`make_report`] helper the baseline crate reuses so every
//! figure compares like with like.

use crate::config::ClusterConfig;
use crate::faults;
use crate::metrics::GeoMetrics;
use eunomia_sim::{units, EngineStats, SimTime};
use std::collections::HashMap;

/// Summary of one simulated run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Human-readable system label.
    pub system: String,
    /// Steady-state throughput (ops/s) over the trimmed window, summed
    /// across datacenters.
    pub throughput: f64,
    /// Total completed client operations (whole run).
    pub total_ops: u64,
    /// Median client operation latency (ms).
    pub p50_latency_ms: f64,
    /// 99th percentile client operation latency (ms).
    pub p99_latency_ms: f64,
    /// Metrics sink for deeper analysis (visibility CDFs, apply log).
    pub metrics: GeoMetrics,
    /// Measurement window used.
    pub window: (SimTime, SimTime),
    /// Full configured run length (sim time) — the denominator for
    /// availability fractions.
    pub duration: SimTime,
    /// Raw engine counters for the run (event counts are deterministic
    /// per seed; `wall_ns` is real elapsed time and is not).
    pub engine: EngineStats,
    /// Threaded-service measurements (ids/s at stabilization, batch
    /// sizes, queue depth, stabilization latency) when the report came
    /// from (or was joined with) a real-thread service run — `None` for
    /// purely simulated runs. Attach with
    /// [`with_service_stats`](RunReport::with_service_stats).
    pub service: Option<eunomia_stats::ServiceStats>,
    /// Open-loop load measurements (offered vs achieved rate,
    /// coordinated-omission-free latency, queue waits) — `Some` iff the
    /// config set `open_loop`.
    pub load: Option<eunomia_stats::LoadStats>,
    /// Total stale reads (staleness exposure) — 0 unless the config set
    /// `track_staleness`.
    pub stale_reads: u64,
    /// When the configured fault schedule's last disruption healed.
    /// `None` when no disruption was scheduled or one outlives the run —
    /// see [`faults::last_heal`].
    pub last_heal: Option<SimTime>,
    /// Unhealed-partition availability accounting: per-DC time spent
    /// under a partition that never healed before the run ended, and how
    /// many such partitions there were. All zeros when every partition
    /// healed (the healed case is covered by [`heal_convergence`]
    /// instead); a non-zero `unhealed_partitions` explains a `None` from
    /// [`heal_convergence`] — split-brain until the end of the run has
    /// no heal to converge after. See [`RunReport::unavailable_ms`] and
    /// [`RunReport::dc_availability`] for the derived views.
    ///
    /// [`heal_convergence`]: RunReport::heal_convergence
    pub availability: faults::DcAvailability,
    /// Number of datacenters in the deployment.
    pub n_dcs: usize,
    /// Whether every key is replicated at every datacenter (convergence
    /// analysis is only defined for full replication).
    pub full_replication: bool,
}

/// How completely (and how fast) pre-heal updates finished landing after
/// the fault schedule's last disruption healed. Produced by
/// [`RunReport::heal_convergence`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealConvergence {
    /// Updates committed at their origin at or before the heal.
    pub pre_heal_updates: usize,
    /// Pre-heal updates that never reached every datacenter by the end
    /// of the run — 0 means the system converged after the heal.
    pub unconverged: usize,
    /// Sim time at which the last pre-heal update finished landing at
    /// its last datacenter (only counting converged updates).
    pub converged_at: SimTime,
    /// The heal the analysis was anchored to ([`RunReport::last_heal`]).
    pub heal: SimTime,
}

impl RunReport {
    /// Attaches a threaded-service [`ServiceStats`] to the report — the
    /// service-side counterpart of the `engine` field, used by harnesses
    /// that pair a simulated run with a real-thread service measurement.
    ///
    /// [`ServiceStats`]: eunomia_stats::ServiceStats
    pub fn with_service_stats(mut self, stats: eunomia_stats::ServiceStats) -> RunReport {
        self.service = Some(stats);
        self
    }

    /// Per-DC milliseconds spent under an unhealed partition (the
    /// [`availability`](RunReport::availability) accounting in ms).
    pub fn unavailable_ms(&self) -> Vec<f64> {
        self.availability
            .unavailable
            .iter()
            .map(|&ns| units::to_ms(ns))
            .collect()
    }

    /// Per-DC availability over the run as a fraction (1.0 = the DC was
    /// never isolated by an unhealed partition); delegates to
    /// [`faults::DcAvailability::fractions`] over the run length.
    pub fn dc_availability(&self) -> Vec<f64> {
        self.availability.fractions(self.duration)
    }

    /// Visibility percentile (ms of *extra* delay beyond data arrival) for
    /// updates originating at `origin` observed at `dest`, over the
    /// measurement window. `None` if no samples.
    pub fn visibility_percentile_ms(&self, origin: u16, dest: u16, p: f64) -> Option<f64> {
        self.visibility_percentiles_ms(origin, dest, &[p])[0]
    }

    /// Several visibility percentiles for one DC pair with a single sort
    /// — use instead of repeated
    /// [`visibility_percentile_ms`](RunReport::visibility_percentile_ms)
    /// calls, each of which would re-sort the sample set. Output order
    /// matches `ps`; entries are `None` when there are no samples.
    pub fn visibility_percentiles_ms(
        &self,
        origin: u16,
        dest: u16,
        ps: &[f64],
    ) -> Vec<Option<f64>> {
        let mut samples =
            self.metrics
                .visibility_extras(origin, dest, self.window.0, self.window.1);
        if samples.is_empty() {
            return vec![None; ps.len()];
        }
        samples.sort_unstable();
        ps.iter()
            .map(|&p| Some(units::to_ms(eunomia_stats::rank_of_sorted(&samples, p))))
            .collect()
    }

    /// Offered vs achieved load over the measurement window, for
    /// open-loop runs: `(offered_hz, achieved_hz)`. `None` for
    /// closed-loop runs.
    pub fn load_rates_hz(&self) -> Option<(f64, f64)> {
        let load = self.load.as_ref()?;
        Some((
            load.offered_rate_hz(self.window.0, self.window.1),
            load.achieved_rate_hz(self.window.0, self.window.1),
        ))
    }

    /// Full visibility CDF (ms, cumulative fraction) for a DC pair.
    pub fn visibility_cdf_ms(&self, origin: u16, dest: u16) -> Vec<(f64, f64)> {
        let samples = self
            .metrics
            .visibility_extras(origin, dest, self.window.0, self.window.1);
        eunomia_stats::empirical_cdf(&samples)
            .into_iter()
            .map(|(ns, f)| (units::to_ms(ns), f))
            .collect()
    }

    /// Visibility-latency time series for a DC pair over the *whole* run
    /// (faults typically sit inside the trimmed warm-up/cool-down window,
    /// so no trimming here): `(bucket start in seconds, mean extra delay
    /// in ms)` per non-empty `bucket`-sized bucket. This is the series
    /// that shows visibility spiking across a fault window and recovering
    /// after the heal.
    pub fn visibility_series_ms(&self, origin: u16, dest: u16, bucket: SimTime) -> Vec<(f64, f64)> {
        assert!(bucket > 0, "bucket must be positive");
        let mut sums: HashMap<u64, (u64, u64)> = HashMap::new();
        self.metrics.with(|m| {
            if let Some(samples) = m.visibility.get(&(origin, dest)) {
                for s in samples {
                    let e = sums.entry(s.at / bucket).or_insert((0, 0));
                    e.0 += s.extra_ns;
                    e.1 += 1;
                }
            }
        });
        let mut out: Vec<(f64, f64)> = sums
            .into_iter()
            .map(|(b, (sum, n))| (units::to_secs(b * bucket), units::to_ms(sum / n.max(1))))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Convergence-after-heal analysis: did every update committed before
    /// the last disruption healed reach every datacenter by the end of
    /// the run, and when did the last one land?
    ///
    /// Requires a fault schedule whose disruptions all heal inside the
    /// run ([`RunReport::last_heal`]), the apply log
    /// (`ClusterConfig::apply_log`), and full replication; returns `None`
    /// otherwise.
    pub fn heal_convergence(&self) -> Option<HealConvergence> {
        let heal = self.last_heal?;
        if !self.full_replication {
            return None;
        }
        // An update is identified by (origin, ts, key); its local commit
        // is the record with origin == dest. Destinations are a bitmask so
        // duplicate landings cannot inflate the count (n_dcs <= 64 holds
        // for every conceivable deployment here). The log is borrowed in
        // place — it can hold hundreds of thousands of records, so no
        // clone.
        let mut landings: HashMap<(u16, u64, u64), (bool, u64, SimTime)> = HashMap::new();
        self.metrics.with(|m| {
            for rec in &m.apply_log {
                let e = landings
                    .entry((rec.origin, rec.ts, rec.key))
                    .or_insert((false, 0, 0));
                if rec.origin == rec.dest && rec.at <= heal {
                    e.0 = true; // committed pre-heal
                }
                e.1 |= 1u64 << rec.dest;
                e.2 = e.2.max(rec.at);
            }
        });
        if landings.is_empty() {
            return None;
        }
        let mut pre_heal = 0usize;
        let mut unconverged = 0usize;
        let mut converged_at = 0;
        for (_, (committed_pre_heal, dests, last_at)) in landings {
            if !committed_pre_heal {
                continue;
            }
            pre_heal += 1;
            if dests.count_ones() < self.n_dcs as u32 {
                unconverged += 1;
            } else {
                converged_at = converged_at.max(last_at);
            }
        }
        Some(HealConvergence {
            pre_heal_updates: pre_heal,
            unconverged,
            converged_at,
            heal,
        })
    }

    /// Milliseconds after the last heal until every pre-heal update had
    /// landed at every datacenter. `None` if convergence is not
    /// measurable (see [`RunReport::heal_convergence`]) or did not happen.
    pub fn convergence_after_heal_ms(&self) -> Option<f64> {
        self.heal_convergence()?.after_heal_ms()
    }
}

impl HealConvergence {
    /// Milliseconds from the heal until the last pre-heal update landed
    /// at its last datacenter; `None` if any pre-heal update never
    /// converged (or there were none to converge).
    pub fn after_heal_ms(&self) -> Option<f64> {
        if self.unconverged > 0 || self.pre_heal_updates == 0 {
            return None;
        }
        Some(units::to_ms(self.converged_at.saturating_sub(self.heal)))
    }
}

/// Builds a [`RunReport`] from a finished run's metrics — used by the
/// native dispatcher and by the baseline systems in `eunomia-baselines`,
/// which share the metrics sink and configuration types.
pub fn make_report(
    system: &str,
    metrics: &GeoMetrics,
    cfg: &ClusterConfig,
    engine: EngineStats,
) -> RunReport {
    let (from, to) = cfg.measure_window();
    let metrics = metrics.clone();
    let (p50, p99) = metrics.with(|m| {
        let ps = m.op_latency.percentiles(&[50.0, 99.0]);
        (ps[0].unwrap_or(0), ps[1].unwrap_or(0))
    });
    RunReport {
        system: system.to_string(),
        throughput: metrics.throughput_ops_sec(from, to),
        total_ops: metrics.completed_ops(),
        p50_latency_ms: units::to_ms(p50),
        p99_latency_ms: units::to_ms(p99),
        load: cfg.open_loop.as_ref().map(|_| metrics.load_stats()),
        stale_reads: metrics.stale_reads(),
        last_heal: faults::last_heal(&cfg.faults, cfg.duration),
        availability: faults::dc_unavailability(&cfg.faults, cfg.duration, cfg.n_dcs),
        n_dcs: cfg.n_dcs,
        full_replication: cfg.replication_factor.is_none_or(|rf| rf == cfg.n_dcs),
        metrics,
        window: (from, to),
        duration: cfg.duration,
        engine,
        service: None,
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::Scenario;
    use crate::system::{run, SystemId};

    #[test]
    fn small_eventual_run_completes_ops() {
        let report = run(SystemId::Eventual, &Scenario::small_test());
        assert!(report.total_ops > 100, "ops: {}", report.total_ops);
        assert!(report.throughput > 0.0);
        assert!(report.p50_latency_ms > 0.0);
    }

    #[test]
    fn small_eunomia_run_completes_ops_and_visibility() {
        let report = run(SystemId::EunomiaKv, &Scenario::small_test());
        assert!(report.total_ops > 100, "ops: {}", report.total_ops);
        // Remote updates became visible in both directions.
        let v01 = report.metrics.visibility_extras(0, 1, 0, u64::MAX);
        let v10 = report.metrics.visibility_extras(1, 0, 0, u64::MAX);
        assert!(!v01.is_empty(), "dc0->dc1 visibility samples missing");
        assert!(!v10.is_empty(), "dc1->dc0 visibility samples missing");
        // Extra delay should be modest: stabilization intervals are 1 ms.
        let p90 = report.visibility_percentile_ms(0, 1, 90.0).unwrap();
        assert!(p90 < 100.0, "p90 extra delay unreasonably large: {p90} ms");
    }

    #[test]
    fn service_stats_attach_to_reports() {
        let report = run(SystemId::Eventual, &Scenario::small_test());
        assert!(
            report.service.is_none(),
            "simulated runs carry no service stats"
        );
        let stats = eunomia_stats::ServiceStats {
            stabilized_ids: 5,
            ..Default::default()
        };
        let report = report.with_service_stats(stats);
        assert_eq!(report.service.unwrap().stabilized_ids, 5);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = run(SystemId::EunomiaKv, &Scenario::small_test());
        let b = run(SystemId::EunomiaKv, &Scenario::small_test());
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(
            a.metrics.visibility_extras(0, 1, 0, u64::MAX),
            b.metrics.visibility_extras(0, 1, 0, u64::MAX)
        );
    }
}
