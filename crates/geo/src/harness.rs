//! Run reports shared by every system, native and baseline.
//!
//! The run entry point itself lives in [`crate::system`] (`run(SystemId,
//! &Scenario)`); this module holds the [`RunReport`] all systems produce
//! and the [`make_report`] helper the baseline crate reuses so every
//! figure compares like with like.

use crate::config::ClusterConfig;
use crate::metrics::GeoMetrics;
use eunomia_sim::{units, EngineStats, SimTime};

/// Summary of one simulated run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Human-readable system label.
    pub system: String,
    /// Steady-state throughput (ops/s) over the trimmed window, summed
    /// across datacenters.
    pub throughput: f64,
    /// Total completed client operations (whole run).
    pub total_ops: u64,
    /// Median client operation latency (ms).
    pub p50_latency_ms: f64,
    /// 99th percentile client operation latency (ms).
    pub p99_latency_ms: f64,
    /// Metrics sink for deeper analysis (visibility CDFs, apply log).
    pub metrics: GeoMetrics,
    /// Measurement window used.
    pub window: (SimTime, SimTime),
    /// Raw engine counters for the run (event counts are deterministic
    /// per seed; `wall_ns` is real elapsed time and is not).
    pub engine: EngineStats,
}

impl RunReport {
    /// Visibility percentile (ms of *extra* delay beyond data arrival) for
    /// updates originating at `origin` observed at `dest`, over the
    /// measurement window. `None` if no samples.
    pub fn visibility_percentile_ms(&self, origin: u16, dest: u16, p: f64) -> Option<f64> {
        let samples = self
            .metrics
            .visibility_extras(origin, dest, self.window.0, self.window.1);
        eunomia_stats::exact_percentile(&samples, p).map(units::to_ms)
    }

    /// Full visibility CDF (ms, cumulative fraction) for a DC pair.
    pub fn visibility_cdf_ms(&self, origin: u16, dest: u16) -> Vec<(f64, f64)> {
        let samples = self
            .metrics
            .visibility_extras(origin, dest, self.window.0, self.window.1);
        eunomia_stats::empirical_cdf(&samples)
            .into_iter()
            .map(|(ns, f)| (units::to_ms(ns), f))
            .collect()
    }
}

/// Builds a [`RunReport`] from a finished run's metrics — used by the
/// native dispatcher and by the baseline systems in `eunomia-baselines`,
/// which share the metrics sink and configuration types.
pub fn make_report(
    system: &str,
    metrics: &GeoMetrics,
    cfg: &ClusterConfig,
    engine: EngineStats,
) -> RunReport {
    let (from, to) = cfg.measure_window();
    let metrics = metrics.clone();
    let (p50, p99) = metrics.with(|m| {
        (
            m.op_latency.percentile(50.0).unwrap_or(0),
            m.op_latency.percentile(99.0).unwrap_or(0),
        )
    });
    RunReport {
        system: system.to_string(),
        throughput: metrics.throughput_ops_sec(from, to),
        total_ops: metrics.completed_ops(),
        p50_latency_ms: units::to_ms(p50),
        p99_latency_ms: units::to_ms(p99),
        metrics,
        window: (from, to),
        engine,
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::Scenario;
    use crate::system::{run, SystemId};

    #[test]
    fn small_eventual_run_completes_ops() {
        let report = run(SystemId::Eventual, &Scenario::small_test());
        assert!(report.total_ops > 100, "ops: {}", report.total_ops);
        assert!(report.throughput > 0.0);
        assert!(report.p50_latency_ms > 0.0);
    }

    #[test]
    fn small_eunomia_run_completes_ops_and_visibility() {
        let report = run(SystemId::EunomiaKv, &Scenario::small_test());
        assert!(report.total_ops > 100, "ops: {}", report.total_ops);
        // Remote updates became visible in both directions.
        let v01 = report.metrics.visibility_extras(0, 1, 0, u64::MAX);
        let v10 = report.metrics.visibility_extras(1, 0, 0, u64::MAX);
        assert!(!v01.is_empty(), "dc0->dc1 visibility samples missing");
        assert!(!v10.is_empty(), "dc1->dc0 visibility samples missing");
        // Extra delay should be modest: stabilization intervals are 1 ms.
        let p90 = report.visibility_percentile_ms(0, 1, 90.0).unwrap();
        assert!(p90 < 100.0, "p90 extra delay unreasonably large: {p90} ms");
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = run(SystemId::EunomiaKv, &Scenario::small_test());
        let b = run(SystemId::EunomiaKv, &Scenario::small_test());
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(
            a.metrics.visibility_extras(0, 1, 0, u64::MAX),
            b.metrics.visibility_extras(0, 1, 0, u64::MAX)
        );
    }
}
