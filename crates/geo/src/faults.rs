//! Datacenter-level fault schedules: timed WAN misbehavior and gray
//! process failures, validated with the rest of the configuration and
//! translated onto the simulator when a cluster is built.
//!
//! A [`FaultEvent`] names datacenters (not simulator regions or process
//! ids), so the same schedule drives every system — native and baseline —
//! through [`apply_faults`]. The link-level fault *model* (TCP-like
//! partition buffering, loss-as-RTO-latency gray links, directed one-way
//! overrides) is documented on [`eunomia_sim::FaultSchedule`]; process
//! pauses map to [`eunomia_sim::Simulation::pause_between`].

use crate::config::{ClusterConfig, ConfigError};
use eunomia_sim::{FaultSchedule, ProcessId, SimTime, Simulation};

/// One timed fault in datacenter terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Datacenters `a` and `b` cannot exchange traffic during
    /// `[from, to)`; in-flight and newly sent messages are buffered and
    /// delivered after `to` (the heal), in FIFO order.
    Partition {
        /// First datacenter of the pair.
        a: usize,
        /// Second datacenter of the pair.
        b: usize,
        /// Window start (sim time).
        from: SimTime,
        /// Window end — the heal (sim time).
        to: SimTime,
    },
    /// The directed link `from_dc -> to_dc` turns gray during
    /// `[from, to)`: every message pays `extra_oneway` additional
    /// latency, and with probability `loss` one or more `rto`-length
    /// retransmission delays on top.
    GrayLink {
        /// Sending datacenter.
        from_dc: usize,
        /// Receiving datacenter.
        to_dc: usize,
        /// Window start (sim time).
        from: SimTime,
        /// Window end (sim time).
        to: SimTime,
        /// Per-message loss probability in `[0, 1]`.
        loss: f64,
        /// Constant extra one-way latency (ns).
        extra_oneway: SimTime,
        /// Retransmission timeout paid per simulated loss (ns).
        rto: SimTime,
    },
    /// The directed link `from_dc -> to_dc` uses `oneway` as its base
    /// one-way latency during `[from, to)` instead of half the
    /// configured RTT — the mechanism for asymmetric WANs and
    /// hub-and-spoke detours (the RTT matrix itself stays symmetric).
    OnewayOverride {
        /// Sending datacenter.
        from_dc: usize,
        /// Receiving datacenter.
        to_dc: usize,
        /// Window start (sim time).
        from: SimTime,
        /// Window end (sim time).
        to: SimTime,
        /// Base one-way latency during the window (ns).
        oneway: SimTime,
    },
    /// Partition server `partition` of datacenter `dc` pauses (alive but
    /// unresponsive — a gray process failure) during `[from, to)`. All
    /// arriving work queues and drains in order at the resume; nothing
    /// is lost.
    PausePartition {
        /// Datacenter of the paused partition server.
        dc: usize,
        /// Partition index within the datacenter.
        partition: usize,
        /// Window start (sim time).
        from: SimTime,
        /// Window end — the resume (sim time).
        to: SimTime,
    },
}

impl FaultEvent {
    /// The event's `[from, to)` window.
    pub fn window(&self) -> (SimTime, SimTime) {
        match *self {
            FaultEvent::Partition { from, to, .. }
            | FaultEvent::GrayLink { from, to, .. }
            | FaultEvent::OnewayOverride { from, to, .. }
            | FaultEvent::PausePartition { from, to, .. } => (from, to),
        }
    }

    /// Whether the event disrupts delivery or processing (partitions,
    /// gray links, pauses). One-way overrides are topology shaping, not
    /// disruptions: they have no "heal" to converge after.
    pub fn is_disruption(&self) -> bool {
        !matches!(self, FaultEvent::OnewayOverride { .. })
    }
}

/// When the last disruption heals, if every disruption heals inside the
/// run: the reference point for convergence-after-heal metrics. `None`
/// if the schedule has no disruptions, or if any disruption is still in
/// force when the run ends (there is no heal to converge after).
pub fn last_heal(events: &[FaultEvent], duration: SimTime) -> Option<SimTime> {
    let mut last = None;
    for e in events.iter().filter(|e| e.is_disruption()) {
        let (_, to) = e.window();
        if to >= duration {
            return None;
        }
        last = Some(last.map_or(to, |l: SimTime| l.max(to)));
    }
    last
}

/// Per-datacenter availability accounting for schedules whose partitions
/// do **not** all heal inside the run (split-brain until the end).
///
/// Convergence-after-heal is undefined for such runs —
/// [`RunReport::heal_convergence`](crate::RunReport::heal_convergence)
/// returns `None` because there is no heal to converge after. What *is*
/// well-defined is how long each datacenter spent cut off: this struct
/// reports, per DC, the total time it was isolated from at least one
/// other datacenter by a partition still in force when the run ended.
#[derive(Clone, Debug, PartialEq)]
pub struct DcAvailability {
    /// Per-DC nanoseconds spent under an unhealed partition (overlapping
    /// windows union-merged, clipped to the run).
    pub unavailable: Vec<SimTime>,
    /// Number of `Partition` events still in force at the end of the run.
    pub unhealed_partitions: usize,
}

impl DcAvailability {
    /// Per-DC availability as a fraction of `duration` (1.0 = never under
    /// an unhealed partition).
    pub fn fractions(&self, duration: SimTime) -> Vec<f64> {
        self.unavailable
            .iter()
            .map(|&ns| {
                if duration == 0 {
                    1.0
                } else {
                    1.0 - ns as f64 / duration as f64
                }
            })
            .collect()
    }
}

/// Computes [`DcAvailability`] for a schedule: only `Partition` events
/// whose window reaches the end of the run count (healed partitions are
/// covered by convergence-after-heal instead; gray links and overrides
/// degrade but do not cut availability).
pub fn dc_unavailability(events: &[FaultEvent], duration: SimTime, n_dcs: usize) -> DcAvailability {
    let mut windows: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n_dcs];
    let mut unhealed = 0;
    for e in events {
        if let FaultEvent::Partition { a, b, from, to } = *e {
            if to >= duration && from < duration {
                unhealed += 1;
                for dc in [a, b] {
                    if dc < n_dcs {
                        windows[dc].push((from, duration));
                    }
                }
            }
        }
    }
    let unavailable = windows
        .into_iter()
        .map(|mut w| {
            // Union-merge overlapping windows, then sum.
            w.sort_unstable();
            let mut total = 0;
            let mut cur: Option<(SimTime, SimTime)> = None;
            for (from, to) in w {
                match &mut cur {
                    Some((_, end)) if from <= *end => *end = (*end).max(to),
                    _ => {
                        if let Some((s, e)) = cur {
                            total += e - s;
                        }
                        cur = Some((from, to));
                    }
                }
            }
            if let Some((s, e)) = cur {
                total += e - s;
            }
            total
        })
        .collect();
    DcAvailability {
        unavailable,
        unhealed_partitions: unhealed,
    }
}

/// Validates `events` against the deployment: datacenters and partitions
/// must exist, windows must be non-empty and start inside the run, loss
/// probabilities must be in `[0, 1]`, and link events must name two
/// distinct datacenters.
pub(crate) fn validate(events: &[FaultEvent], cfg: &ClusterConfig) -> Result<(), ConfigError> {
    for e in events {
        let (from, to) = e.window();
        if from >= to {
            return Err(ConfigError::FaultWindow { from, to });
        }
        if from >= cfg.duration {
            return Err(ConfigError::FaultAfterEnd {
                what: "fault window",
                at: from,
                duration: cfg.duration,
            });
        }
        match *e {
            FaultEvent::Partition { a, b, .. } => {
                check_pair(a, b, cfg)?;
            }
            FaultEvent::GrayLink {
                from_dc,
                to_dc,
                loss,
                ..
            } => {
                check_pair(from_dc, to_dc, cfg)?;
                if !(0.0..=1.0).contains(&loss) {
                    return Err(ConfigError::FaultLoss { loss });
                }
            }
            FaultEvent::OnewayOverride { from_dc, to_dc, .. } => {
                check_pair(from_dc, to_dc, cfg)?;
            }
            FaultEvent::PausePartition { dc, partition, .. } => {
                if dc >= cfg.n_dcs || partition >= cfg.partitions_per_dc {
                    return Err(ConfigError::FaultOutOfRange {
                        what: "paused partition",
                        dc,
                        index: partition,
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_pair(a: usize, b: usize, cfg: &ClusterConfig) -> Result<(), ConfigError> {
    if a >= cfg.n_dcs || b >= cfg.n_dcs {
        return Err(ConfigError::FaultOutOfRange {
            what: "fault link",
            dc: a.max(b),
            index: a.min(b),
        });
    }
    if a == b {
        return Err(ConfigError::FaultSelfLink { dc: a });
    }
    Ok(())
}

/// Installs `cfg.faults` on a built simulation: link events become the
/// engine's [`FaultSchedule`]; pause events resolve to the partition
/// processes in `partitions[dc][p]`. Shared by the native cluster
/// builder and every baseline builder so all six systems honour the same
/// schedule.
pub fn apply_faults<M>(
    cfg: &ClusterConfig,
    sim: &mut Simulation<M>,
    partitions: &[Vec<ProcessId>],
) {
    if cfg.faults.is_empty() {
        return;
    }
    let mut schedule = FaultSchedule::new();
    for e in &cfg.faults {
        match *e {
            FaultEvent::Partition { a, b, from, to } => {
                schedule.partition(a, b, from, to);
            }
            FaultEvent::GrayLink {
                from_dc,
                to_dc,
                from,
                to,
                loss,
                extra_oneway,
                rto,
            } => {
                schedule.degrade(from_dc, to_dc, from, to, loss, extra_oneway, rto);
            }
            FaultEvent::OnewayOverride {
                from_dc,
                to_dc,
                from,
                to,
                oneway,
            } => {
                schedule.override_oneway(from_dc, to_dc, from, to, oneway);
            }
            FaultEvent::PausePartition {
                dc,
                partition,
                from,
                to,
            } => {
                sim.pause_between(partitions[dc][partition], from, to);
            }
        }
    }
    if !schedule.is_empty() {
        sim.set_fault_schedule(schedule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eunomia_sim::units;

    fn base() -> ClusterConfig {
        ClusterConfig::small_test()
    }

    #[test]
    fn windows_and_ranges_are_validated() {
        let cfg = base();
        let err = validate(
            &[FaultEvent::Partition {
                a: 0,
                b: 1,
                from: units::secs(2),
                to: units::secs(2),
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::FaultWindow { .. }), "{err}");

        let err = validate(
            &[FaultEvent::Partition {
                a: 0,
                b: 5,
                from: 0,
                to: units::secs(1),
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::FaultOutOfRange { .. }), "{err}");

        let err = validate(
            &[FaultEvent::Partition {
                a: 1,
                b: 1,
                from: 0,
                to: units::secs(1),
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::FaultSelfLink { .. }), "{err}");

        let err = validate(
            &[FaultEvent::GrayLink {
                from_dc: 0,
                to_dc: 1,
                from: 0,
                to: units::secs(1),
                loss: 1.5,
                extra_oneway: 0,
                rto: 0,
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::FaultLoss { .. }), "{err}");

        // Starting at/after the end would silently never fire.
        let err = validate(
            &[FaultEvent::PausePartition {
                dc: 0,
                partition: 0,
                from: cfg.duration,
                to: cfg.duration + 1,
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::FaultAfterEnd { .. }), "{err}");

        let err = validate(
            &[FaultEvent::PausePartition {
                dc: 0,
                partition: 99,
                from: 0,
                to: units::secs(1),
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::FaultOutOfRange { .. }), "{err}");
    }

    #[test]
    fn unavailability_counts_only_unhealed_partitions_and_merges_overlap() {
        let d = units::secs(10);
        let healed = FaultEvent::Partition {
            a: 0,
            b: 1,
            from: units::secs(1),
            to: units::secs(3),
        };
        let unhealed_a = FaultEvent::Partition {
            a: 0,
            b: 1,
            from: units::secs(4),
            to: d,
        };
        // Overlaps unhealed_a on dc0; extends past the end.
        let unhealed_b = FaultEvent::Partition {
            a: 0,
            b: 2,
            from: units::secs(5),
            to: d + units::secs(5),
        };
        let gray = FaultEvent::GrayLink {
            from_dc: 1,
            to_dc: 2,
            from: units::secs(1),
            to: d,
            loss: 0.1,
            extra_oneway: 0,
            rto: 0,
        };
        let av = dc_unavailability(&[healed, unhealed_a, unhealed_b, gray], d, 3);
        assert_eq!(av.unhealed_partitions, 2);
        // dc0: [4s, 10s) ∪ [5s, 10s) = 6 s; dc1: [4s, 10s); dc2: [5s, 10s).
        assert_eq!(
            av.unavailable,
            vec![units::secs(6), units::secs(6), units::secs(5)]
        );
        let f = av.fractions(d);
        assert!((f[0] - 0.4).abs() < 1e-12, "{f:?}");
        assert!((f[2] - 0.5).abs() < 1e-12, "{f:?}");

        // Healed-only schedules report full availability.
        let av = dc_unavailability(&[healed, gray], d, 3);
        assert_eq!(av.unhealed_partitions, 0);
        assert_eq!(av.unavailable, vec![0; 3]);
        assert_eq!(av.fractions(d), vec![1.0; 3]);
    }

    #[test]
    fn last_heal_ignores_overrides_and_unhealed_runs() {
        let d = units::secs(10);
        let p = FaultEvent::Partition {
            a: 0,
            b: 1,
            from: units::secs(2),
            to: units::secs(4),
        };
        let g = FaultEvent::GrayLink {
            from_dc: 0,
            to_dc: 1,
            from: units::secs(3),
            to: units::secs(6),
            loss: 0.1,
            extra_oneway: 0,
            rto: 0,
        };
        let o = FaultEvent::OnewayOverride {
            from_dc: 0,
            to_dc: 1,
            from: 0,
            to: d,
            oneway: units::ms(10),
        };
        assert_eq!(last_heal(&[p, g, o], d), Some(units::secs(6)));
        assert_eq!(last_heal(&[o], d), None, "overrides alone never heal");
        assert_eq!(last_heal(&[], d), None);
        // A partition still in force at the end: no heal to measure from.
        let unhealed = FaultEvent::Partition {
            a: 0,
            b: 1,
            from: units::secs(2),
            to: d,
        };
        assert_eq!(last_heal(&[p, unhealed], d), None);
    }
}
