//! Deployment, cost-model and workload configuration, with the validated
//! [`ClusterConfigBuilder`] construction path.

use crate::faults::{self, FaultEvent};
use crate::system::SystemId;
use eunomia_sim::{units, SimTime};
use eunomia_workload::{ArrivalSpec, WorkloadConfig};
use std::fmt;

/// CPU service costs (nanoseconds) charged by the busy-server model.
///
/// Defaults are calibrated so a partition behaves like a share of the
/// paper's Riak machines (§7.1 reports ≈3 kops/s per machine): an op costs
/// a few hundred microseconds, and consistency metadata adds costs on top.
/// Absolute values are not meant to match the authors' hardware — the
/// *relative* costs are what produce the paper's shapes.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Partition: base read handling.
    pub read_ns: u64,
    /// Partition: base update handling (storage write + timestamping).
    pub update_ns: u64,
    /// Per vector entry handled on client-facing ops (0 for scalar or
    /// eventual systems).
    pub vector_entry_ns: u64,
    /// Eunomia: per-op ingest (buffer insert).
    pub meta_op_ns: u64,
    /// Eunomia: per-op stabilization drain.
    pub stable_per_op_ns: u64,
    /// Fixed per-message cost (batch framing, syscalls).
    pub batch_overhead_ns: u64,
    /// Partition: applying one remote update.
    pub apply_ns: u64,
    /// Partition: staging one remote data payload.
    pub stage_ns: u64,
    /// Receiver: per stable op enqueue/dependency check.
    pub receiver_op_ns: u64,
    /// Heartbeat/liveness message processing.
    pub hb_ns: u64,
    /// Baselines — per-op scalar metadata handling (GentleRain's single
    /// timestamp; Cure pays `stab_vector_entry_ns` per entry instead).
    pub scalar_meta_ns: u64,
    /// Baselines — per-vector-entry metadata cost of the global-
    /// stabilization systems (Cure). Deliberately much larger than
    /// `vector_entry_ns`: EunomiaKV only *attaches* vectors (dependency
    /// checking is the receiver's trivial comparison), while Cure's
    /// partitions maintain, merge and stabilize vectors on every
    /// operation — the "metadata enrichment" overhead of §7.2.1.
    pub stab_vector_entry_ns: u64,
    /// Baselines — partition cost to compute and send one LST/LSV report
    /// into the global stabilization procedure (scalar part; vector
    /// systems add `vector_entry_ns` per entry).
    pub stab_report_ns: u64,
    /// Baselines — partition cost to process one GST/GSV broadcast.
    pub stab_broadcast_ns: u64,
    /// Baselines — sequencer service time per sequence-number request.
    pub seq_req_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_ns: 700_000,
            update_ns: 900_000,
            vector_entry_ns: 5_000,
            meta_op_ns: 1_500,
            stable_per_op_ns: 1_000,
            batch_overhead_ns: 10_000,
            apply_ns: 30_000,
            stage_ns: 8_000,
            receiver_op_ns: 2_000,
            hb_ns: 2_000,
            scalar_meta_ns: 100_000,
            stab_vector_entry_ns: 55_000,
            stab_report_ns: 40_000,
            stab_broadcast_ns: 30_000,
            seq_req_ns: 150_000,
        }
    }
}

/// A partition that communicates abnormally slowly with its local Eunomia
/// during a time window (§7.2.3).
#[derive(Clone, Copy, Debug)]
pub struct StragglerConfig {
    /// Datacenter of the straggler.
    pub dc: usize,
    /// Partition index within the datacenter.
    pub partition: usize,
    /// Straggling window start (sim time).
    pub from: SimTime,
    /// Straggling window end (sim time).
    pub to: SimTime,
    /// Batch/heartbeat interval used *inside* the window.
    pub interval: SimTime,
}

/// Open-loop client mode: operations arrive on an [`ArrivalSpec`]'s
/// schedule instead of one-at-a-time after each reply, so latency can be
/// measured from the *intended* arrival time (coordinated-omission-free)
/// and overload shows up as queueing delay rather than generator stall.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Per-client arrival process (each client runs an independent copy,
    /// so the datacenter's offered load is `clients_per_dc ×` the spec's
    /// mean rate).
    pub arrivals: ArrivalSpec,
    /// Bound on the per-client backlog of arrived-but-unissued
    /// operations; arrivals past the bound are dropped and counted in
    /// `LoadStats::dropped` instead of stalling the generator.
    pub queue_limit: usize,
}

/// A scheduled crash of one Eunomia replica (fault-injection runs).
#[derive(Clone, Copy, Debug)]
pub struct ReplicaCrash {
    /// Datacenter of the replica.
    pub dc: usize,
    /// Replica index within the datacenter (`0` is the initial leader).
    pub replica: usize,
    /// Crash time (sim time).
    pub at: SimTime,
}

/// Full cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of datacenters (`M`).
    pub n_dcs: usize,
    /// Logical partitions per datacenter (`N`).
    pub partitions_per_dc: usize,
    /// Closed-loop clients per datacenter.
    pub clients_per_dc: usize,
    /// Symmetric RTT matrix between datacenters (ns); `None` selects the
    /// paper's 3-DC topology (80/80/160 ms).
    pub rtt_matrix: Option<Vec<Vec<SimTime>>>,
    /// One-way latency between nodes of the same datacenter.
    pub intra_oneway: SimTime,
    /// Uniform jitter bound added to every one-way latency.
    pub jitter: SimTime,
    /// Simulation duration.
    pub duration: SimTime,
    /// Ignored prefix when computing steady-state rates (the paper trims
    /// the first minute).
    pub warmup: SimTime,
    /// Ignored suffix (the paper trims the last minute).
    pub cooldown: SimTime,
    /// Partition → Eunomia batching interval (§5; paper uses 1 ms).
    pub batch_interval: SimTime,
    /// Partition heartbeat threshold ∆ (Alg. 2 l. 10–12).
    pub heartbeat_delta: SimTime,
    /// Eunomia `PROCESS_STABLE` period θ.
    pub theta: SimTime,
    /// Receiver `CHECK_PENDING` period ρ.
    pub rho: SimTime,
    /// Baselines — interval at which sibling partitions across datacenters
    /// exchange heartbeats for global stabilization (the paper uses 10 ms).
    pub stab_heartbeat_interval: SimTime,
    /// Baselines — interval at which each datacenter recomputes its
    /// GST/GSV ("clock computation interval"; the paper uses 5 ms and
    /// sweeps 1–100 ms in Fig. 1).
    pub stab_aggregation_interval: SimTime,
    /// Eunomia replica count (1 = the non-replicated service of §3.1).
    pub replicas: usize,
    /// Ω heartbeat interval between replicas.
    pub omega_interval: SimTime,
    /// Ω suspicion timeout.
    pub omega_timeout: SimTime,
    /// Per-node clock offsets are drawn uniformly from `[-skew, +skew]`.
    pub clock_skew: SimTime,
    /// Per-node drift drawn uniformly from `[-drift_ppm, +drift_ppm]`.
    pub drift_ppm: f64,
    /// Optional straggler injection (§7.2.3).
    pub straggler: Option<StragglerConfig>,
    /// Service cost model.
    pub costs: CostModel,
    /// Workload.
    pub workload: WorkloadConfig,
    /// RNG seed (identical seeds give identical runs).
    pub seed: u64,
    /// Optional per-client operation budget: clients stop issuing after
    /// completing this many operations (used by quiescence tests; `None`
    /// keeps the closed loop running for the whole duration).
    pub ops_per_client: Option<u64>,
    /// Extension (off = faithful Alg. 5): allow the receiver to keep one
    /// APPLY in flight per origin datacenter instead of one globally.
    pub pipelined_receiver: bool,
    /// Extension (§8 future work, Practi-style): replicate each key at
    /// only this many datacenters. Metadata still flows to every
    /// datacenter (receivers advance `SiteTime` with metadata-only
    /// applies for keys they do not store); data ships only to the
    /// key's replica set. `None` = full replication (the paper's setting).
    pub replication_factor: Option<usize>,
    /// §5 "Communication Patterns": route partition metadata through a
    /// fan-in tree of the given arity instead of all-to-one. `None`
    /// (default) sends every partition's batches straight to the Eunomia
    /// replicas; `Some(k)` makes partition 0 the root relay.
    pub metadata_tree_arity: Option<usize>,
    /// Record every update landing (local and remote applies) in the
    /// metrics sink's apply log. Needed by convergence/causality
    /// analyses; off by default (the log grows with every apply).
    pub apply_log: bool,
    /// Scheduled Eunomia replica crashes (fault-injection runs; ignored
    /// by systems that run no Eunomia replicas).
    pub crashes: Vec<ReplicaCrash>,
    /// Timed WAN/process fault schedule (partitions, gray links,
    /// asymmetric one-way overrides, partition-server pauses) honoured by
    /// every system. See [`FaultEvent`] for the model.
    pub faults: Vec<FaultEvent>,
    /// Track staleness exposure: count reads that return while the read
    /// key has a remote update already committed at its origin but not
    /// yet applied locally. Off by default (it keeps per-key high-water
    /// tables); fault scenarios turn it on. Meaningful only under full
    /// replication — with a partial `replication_factor`, keys a
    /// datacenter never stores would count as stale forever.
    pub track_staleness: bool,
    /// Record every completed client operation (with the observed or
    /// assigned version's LWW rank) in the metrics sink's session log,
    /// keyed by client. Feeds the per-client session-guarantee checks
    /// (read-your-writes, monotonic reads) of `tests/faults.rs`. Off by
    /// default (the log grows with every operation); honoured by the
    /// native systems (EunomiaKV, Eventual).
    pub track_sessions: bool,
    /// Open-loop client mode: `Some` makes every client issue operations
    /// on the configured arrival schedule (all six systems honour it);
    /// `None` (default) keeps the paper's closed loop.
    pub open_loop: Option<OpenLoopConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_dcs: 3,
            partitions_per_dc: 8,
            clients_per_dc: 4,
            rtt_matrix: None,
            intra_oneway: units::us(50),
            jitter: units::us(20),
            duration: units::secs(60),
            warmup: units::secs(10),
            cooldown: units::secs(10),
            batch_interval: units::ms(1),
            heartbeat_delta: units::ms(1),
            theta: units::ms(1),
            rho: units::ms(1),
            stab_heartbeat_interval: units::ms(10),
            stab_aggregation_interval: units::ms(5),
            replicas: 1,
            omega_interval: units::ms(10),
            omega_timeout: units::ms(50),
            clock_skew: units::us(500),
            drift_ppm: 50.0,
            straggler: None,
            costs: CostModel::default(),
            workload: WorkloadConfig::paper(90, false),
            seed: 42,
            ops_per_client: None,
            pipelined_receiver: false,
            replication_factor: None,
            metadata_tree_arity: None,
            apply_log: false,
            crashes: Vec::new(),
            faults: Vec::new(),
            track_staleness: false,
            track_sessions: false,
            open_loop: None,
        }
    }
}

impl ClusterConfig {
    /// The measurement window `[warmup, duration - cooldown)`.
    pub fn measure_window(&self) -> (SimTime, SimTime) {
        (self.warmup, self.duration.saturating_sub(self.cooldown))
    }

    /// Costs adjusted for the system being run: the eventual store pays no
    /// vector handling (it keeps no causality metadata).
    pub fn costs_for(&self, id: SystemId) -> CostModel {
        let mut c = self.costs;
        if id == SystemId::Eventual {
            c.vector_entry_ns = 0;
        }
        c
    }

    /// Builds the simulator topology, or explains why the config cannot
    /// describe one.
    pub fn try_topology(&self) -> Result<eunomia_sim::Topology, ConfigError> {
        match &self.rtt_matrix {
            Some(m) => {
                validate_rtt_matrix(m, self.n_dcs)?;
                Ok(eunomia_sim::Topology::new(
                    m.clone(),
                    self.intra_oneway,
                    self.jitter,
                )?)
            }
            None => {
                if self.n_dcs != 3 {
                    return Err(ConfigError::TopologyMismatch { n_dcs: self.n_dcs });
                }
                Ok(eunomia_sim::Topology::paper_three_dcs(
                    self.intra_oneway,
                    self.jitter,
                ))
            }
        }
    }

    /// Builds the simulator topology for this config.
    ///
    /// # Panics
    /// Panics on an invalid config — construct configs through
    /// [`ClusterConfigBuilder`] (or [`validate`](Self::validate) first)
    /// and this cannot fire.
    pub fn topology(&self) -> eunomia_sim::Topology {
        self.try_topology().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks every cross-field invariant the simulator and the report
    /// trimming rely on. [`ClusterConfigBuilder::build`] and every
    /// [`Scenario`](crate::Scenario) constructor call this, so a config
    /// that reaches [`run`](crate::run) is always valid.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_dcs == 0 {
            return Err(ConfigError::Zero("n_dcs"));
        }
        if self.partitions_per_dc == 0 {
            return Err(ConfigError::Zero("partitions_per_dc"));
        }
        if self.clients_per_dc == 0 {
            return Err(ConfigError::Zero("clients_per_dc"));
        }
        if self.replicas == 0 {
            return Err(ConfigError::Zero("replicas"));
        }
        if self.duration == 0 {
            return Err(ConfigError::Zero("duration"));
        }
        if self.warmup + self.cooldown >= self.duration {
            return Err(ConfigError::WindowEmpty {
                warmup: self.warmup,
                cooldown: self.cooldown,
                duration: self.duration,
            });
        }
        if let Some(m) = &self.rtt_matrix {
            validate_rtt_matrix(m, self.n_dcs)?;
        } else if self.n_dcs != 3 {
            return Err(ConfigError::TopologyMismatch { n_dcs: self.n_dcs });
        }
        if self.workload.read_pct > 100 {
            return Err(ConfigError::ReadPct(self.workload.read_pct));
        }
        if self.workload.keys == 0 {
            return Err(ConfigError::Zero("workload.keys"));
        }
        if let Some(rf) = self.replication_factor {
            if rf == 0 || rf > self.n_dcs {
                return Err(ConfigError::ReplicationFactor {
                    rf,
                    n_dcs: self.n_dcs,
                });
            }
        }
        if let Some(arity) = self.metadata_tree_arity {
            if arity < 2 {
                return Err(ConfigError::TreeArity(arity));
            }
        }
        if let Some(s) = &self.straggler {
            if s.dc >= self.n_dcs || s.partition >= self.partitions_per_dc {
                return Err(ConfigError::StragglerOutOfRange {
                    dc: s.dc,
                    partition: s.partition,
                });
            }
            if s.from >= s.to {
                return Err(ConfigError::StragglerWindow {
                    from: s.from,
                    to: s.to,
                });
            }
            if s.from >= self.duration {
                return Err(ConfigError::FaultAfterEnd {
                    what: "straggler window",
                    at: s.from,
                    duration: self.duration,
                });
            }
        }
        for c in &self.crashes {
            if c.dc >= self.n_dcs || c.replica >= self.replicas {
                return Err(ConfigError::CrashOutOfRange {
                    dc: c.dc,
                    replica: c.replica,
                });
            }
            if c.at >= self.duration {
                return Err(ConfigError::FaultAfterEnd {
                    what: "replica crash",
                    at: c.at,
                    duration: self.duration,
                });
            }
        }
        if let Some(ol) = &self.open_loop {
            if let Err(e) = ol.arrivals.validate() {
                return Err(ConfigError::OpenLoopArrivals(e));
            }
            if ol.queue_limit == 0 {
                return Err(ConfigError::Zero("open_loop.queue_limit"));
            }
        }
        faults::validate(&self.faults, self)?;
        Ok(())
    }

    /// A small, fast configuration for tests (2 DCs, few clients, short
    /// run, low latencies).
    pub fn small_test() -> Self {
        ClusterConfig {
            n_dcs: 2,
            partitions_per_dc: 2,
            clients_per_dc: 2,
            rtt_matrix: Some(vec![vec![0, units::ms(20)], vec![units::ms(20), 0]]),
            duration: units::secs(5),
            warmup: units::secs(1),
            cooldown: units::secs(1),
            workload: WorkloadConfig {
                keys: 100,
                read_pct: 50,
                value_size: 16,
                ..WorkloadConfig::default()
            },
            ..ClusterConfig::default()
        }
    }
}

fn validate_rtt_matrix(m: &[Vec<SimTime>], n_dcs: usize) -> Result<(), ConfigError> {
    if m.len() != n_dcs || m.iter().any(|row| row.len() != n_dcs) {
        return Err(ConfigError::RttMatrixShape {
            rows: m.len(),
            cols: m.iter().map(|r| r.len()).max().unwrap_or(0),
            n_dcs,
        });
    }
    for (i, row) in m.iter().enumerate() {
        if row[i] != 0 {
            return Err(ConfigError::RttMatrixDiagonal { dc: i });
        }
        for (j, &v) in row.iter().enumerate() {
            if m[j][i] != v {
                return Err(ConfigError::RttMatrixAsymmetric { a: i, b: j });
            }
        }
    }
    Ok(())
}

/// Why a [`ClusterConfig`] is not runnable.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A field that must be positive is zero.
    Zero(&'static str),
    /// `warmup + cooldown` leaves no measurement window.
    WindowEmpty {
        /// Configured warm-up trim.
        warmup: SimTime,
        /// Configured cool-down trim.
        cooldown: SimTime,
        /// Configured total duration.
        duration: SimTime,
    },
    /// No RTT matrix given and `n_dcs` is not the paper's 3.
    TopologyMismatch {
        /// Configured datacenter count.
        n_dcs: usize,
    },
    /// RTT matrix is not `n_dcs` x `n_dcs`.
    RttMatrixShape {
        /// Matrix row count.
        rows: usize,
        /// Widest row length.
        cols: usize,
        /// Configured datacenter count.
        n_dcs: usize,
    },
    /// RTT matrix has a non-zero self-distance.
    RttMatrixDiagonal {
        /// Offending datacenter.
        dc: usize,
    },
    /// RTT matrix is not symmetric.
    RttMatrixAsymmetric {
        /// First datacenter of the asymmetric pair.
        a: usize,
        /// Second datacenter of the asymmetric pair.
        b: usize,
    },
    /// Read percentage above 100.
    ReadPct(u8),
    /// Replication factor outside `1..=n_dcs`.
    ReplicationFactor {
        /// Configured replication factor.
        rf: usize,
        /// Configured datacenter count.
        n_dcs: usize,
    },
    /// Metadata tree arity below 2.
    TreeArity(usize),
    /// Straggler names a datacenter/partition that does not exist.
    StragglerOutOfRange {
        /// Configured straggler datacenter.
        dc: usize,
        /// Configured straggler partition.
        partition: usize,
    },
    /// Straggler window is empty or inverted.
    StragglerWindow {
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
    },
    /// Crash schedule names a replica that does not exist.
    CrashOutOfRange {
        /// Configured crash datacenter.
        dc: usize,
        /// Configured crash replica index.
        replica: usize,
    },
    /// A fault event names a datacenter or partition outside the
    /// deployment.
    FaultOutOfRange {
        /// Which schedule entry is out of range.
        what: &'static str,
        /// The offending (largest) datacenter index.
        dc: usize,
        /// The other index of the pair (or the partition index).
        index: usize,
    },
    /// A fault event's `[from, to)` window is empty or inverted.
    FaultWindow {
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
    },
    /// A gray link's loss probability is outside `[0, 1]`.
    FaultLoss {
        /// Configured loss probability.
        loss: f64,
    },
    /// A link fault names the same datacenter on both ends.
    FaultSelfLink {
        /// The datacenter named twice.
        dc: usize,
    },
    /// A straggler window or crash is scheduled at/after the run ends,
    /// so a fault-named scenario would silently measure a fault-free
    /// run (e.g. `Scenario::straggler(..).seconds(10)` shrinking the
    /// run below the window).
    FaultAfterEnd {
        /// Which schedule is out of range.
        what: &'static str,
        /// Scheduled start time.
        at: SimTime,
        /// Configured run duration.
        duration: SimTime,
    },
    /// The open-loop arrival spec failed its own validation.
    OpenLoopArrivals(String),
    /// The simulator rejected the RTT matrix (surfaced through
    /// `ConfigError` so every construction path reports one error type).
    Topology(eunomia_sim::TopologyError),
}

impl From<eunomia_sim::TopologyError> for ConfigError {
    fn from(e: eunomia_sim::TopologyError) -> Self {
        ConfigError::Topology(e)
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero(field) => write!(f, "{field} must be > 0"),
            ConfigError::WindowEmpty {
                warmup,
                cooldown,
                duration,
            } => write!(
                f,
                "warmup ({warmup}) + cooldown ({cooldown}) must be < duration ({duration}): \
                 no measurement window remains"
            ),
            ConfigError::TopologyMismatch { n_dcs } => write!(
                f,
                "no rtt_matrix given and n_dcs = {n_dcs}: the default topology is the \
                 paper's 3-DC deployment; provide an {n_dcs}x{n_dcs} matrix"
            ),
            ConfigError::RttMatrixShape { rows, cols, n_dcs } => write!(
                f,
                "rtt_matrix must be square {n_dcs}x{n_dcs}, got {rows}x{cols}"
            ),
            ConfigError::RttMatrixDiagonal { dc } => {
                write!(f, "rtt_matrix[{dc}][{dc}] must be 0 (self-distance)")
            }
            ConfigError::RttMatrixAsymmetric { a, b } => {
                write!(f, "rtt_matrix must be symmetric: [{a}][{b}] != [{b}][{a}]")
            }
            ConfigError::ReadPct(pct) => write!(f, "workload.read_pct = {pct} exceeds 100"),
            ConfigError::ReplicationFactor { rf, n_dcs } => write!(
                f,
                "replication_factor = {rf} must be in 1..={n_dcs} (n_dcs)"
            ),
            ConfigError::TreeArity(a) => {
                write!(f, "metadata_tree_arity = {a} must be >= 2")
            }
            ConfigError::StragglerOutOfRange { dc, partition } => write!(
                f,
                "straggler names dc {dc} partition {partition}, outside the deployment"
            ),
            ConfigError::StragglerWindow { from, to } => {
                write!(f, "straggler window [{from}, {to}) is empty")
            }
            ConfigError::CrashOutOfRange { dc, replica } => write!(
                f,
                "crash schedule names dc {dc} replica {replica}, outside the deployment"
            ),
            ConfigError::FaultOutOfRange { what, dc, index } => write!(
                f,
                "{what} names dc {dc} / index {index}, outside the deployment"
            ),
            ConfigError::FaultWindow { from, to } => {
                write!(f, "fault window [{from}, {to}) is empty")
            }
            ConfigError::FaultLoss { loss } => {
                write!(f, "gray-link loss probability {loss} must be in [0, 1]")
            }
            ConfigError::FaultSelfLink { dc } => {
                write!(f, "link fault names dc {dc} on both ends")
            }
            ConfigError::FaultAfterEnd { what, at, duration } => write!(
                f,
                "{what} starts at {at} but the run ends at {duration}: \
                 the fault would never fire"
            ),
            ConfigError::OpenLoopArrivals(e) => {
                write!(f, "open_loop.arrivals is invalid: {e}")
            }
            ConfigError::Topology(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated construction of [`ClusterConfig`]: set fields, then
/// [`build`](Self::build) checks every cross-field invariant and returns
/// `Result` instead of letting a bad config panic mid-run.
///
/// ```
/// use eunomia_geo::ClusterConfigBuilder;
/// let cfg = ClusterConfigBuilder::new()
///     .partitions_per_dc(4)
///     .clients_per_dc(2)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.partitions_per_dc, 4);
/// assert!(ClusterConfigBuilder::new().replicas(0).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(mut self, v: $ty) -> Self {
            self.cfg.$name = v;
            self
        }
    )+};
}

impl ClusterConfigBuilder {
    /// Starts from [`ClusterConfig::default`] (the paper's deployment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration.
    pub fn from_config(cfg: ClusterConfig) -> Self {
        ClusterConfigBuilder { cfg }
    }

    builder_setters! {
        /// Number of datacenters.
        n_dcs: usize,
        /// Logical partitions per datacenter.
        partitions_per_dc: usize,
        /// Closed-loop clients per datacenter.
        clients_per_dc: usize,
        /// Symmetric RTT matrix (ns); `None` selects the paper's 3-DC topology.
        rtt_matrix: Option<Vec<Vec<SimTime>>>,
        /// Simulation duration.
        duration: SimTime,
        /// Warm-up trim.
        warmup: SimTime,
        /// Cool-down trim.
        cooldown: SimTime,
        /// Partition -> Eunomia batching interval.
        batch_interval: SimTime,
        /// Partition heartbeat threshold.
        heartbeat_delta: SimTime,
        /// Eunomia `PROCESS_STABLE` period.
        theta: SimTime,
        /// Eunomia replica count.
        replicas: usize,
        /// Clock skew bound.
        clock_skew: SimTime,
        /// Clock drift bound (ppm).
        drift_ppm: f64,
        /// Straggler injection.
        straggler: Option<StragglerConfig>,
        /// Workload.
        workload: WorkloadConfig,
        /// Deterministic seed.
        seed: u64,
        /// Per-client operation budget.
        ops_per_client: Option<u64>,
        /// Pipelined-receiver extension.
        pipelined_receiver: bool,
        /// Partial replication factor.
        replication_factor: Option<usize>,
        /// Metadata fan-in tree arity.
        metadata_tree_arity: Option<usize>,
        /// Record the apply log.
        apply_log: bool,
        /// Replica crash schedule.
        crashes: Vec<ReplicaCrash>,
        /// Timed WAN/process fault schedule.
        faults: Vec<FaultEvent>,
        /// Track staleness exposure of reads.
        track_staleness: bool,
        /// Record the per-client session log.
        track_sessions: bool,
        /// Open-loop client mode.
        open_loop: Option<OpenLoopConfig>,
    }

    /// Escape hatch for the long tail of fields without a setter.
    pub fn tweak(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_deployment() {
        let c = ClusterConfig::default();
        assert_eq!(c.n_dcs, 3);
        assert_eq!(c.partitions_per_dc, 8);
        assert_eq!(c.batch_interval, units::ms(1));
        let topo = c.topology();
        assert_eq!(topo.rtt(0, 1), units::ms(80));
        assert_eq!(topo.rtt(1, 2), units::ms(160));
    }

    #[test]
    fn eventual_pays_no_vector_costs() {
        let c = ClusterConfig::default();
        assert_eq!(c.costs_for(SystemId::Eventual).vector_entry_ns, 0);
        assert!(c.costs_for(SystemId::EunomiaKv).vector_entry_ns > 0);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        // warmup + cooldown >= duration.
        let err = ClusterConfigBuilder::new()
            .duration(units::secs(10))
            .warmup(units::secs(8))
            .cooldown(units::secs(2))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::WindowEmpty { .. }), "{err}");

        // Non-square RTT matrix.
        let err = ClusterConfigBuilder::new()
            .n_dcs(2)
            .rtt_matrix(Some(vec![vec![0, 1, 2], vec![1, 0, 3]]))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::RttMatrixShape { .. }), "{err}");

        // Asymmetric RTT matrix.
        let err = ClusterConfigBuilder::new()
            .n_dcs(2)
            .rtt_matrix(Some(vec![vec![0, 5], vec![6, 0]]))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ConfigError::RttMatrixAsymmetric { .. }),
            "{err}"
        );

        // Zero replicas.
        let err = ClusterConfigBuilder::new().replicas(0).build().unwrap_err();
        assert_eq!(err, ConfigError::Zero("replicas"));

        // n_dcs != 3 without a matrix.
        let err = ClusterConfigBuilder::new().n_dcs(5).build().unwrap_err();
        assert!(matches!(err, ConfigError::TopologyMismatch { .. }), "{err}");

        // Crash schedule outside the deployment.
        let err = ClusterConfigBuilder::new()
            .replicas(2)
            .crashes(vec![ReplicaCrash {
                dc: 0,
                replica: 5,
                at: units::secs(1),
            }])
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::CrashOutOfRange { .. }), "{err}");

        // Faults scheduled after the run ends would silently never fire.
        let err = ClusterConfigBuilder::new()
            .crashes(vec![ReplicaCrash {
                dc: 0,
                replica: 0,
                at: units::secs(100),
            }])
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::FaultAfterEnd { .. }), "{err}");
        let err = ClusterConfigBuilder::new()
            .straggler(Some(StragglerConfig {
                dc: 0,
                partition: 0,
                from: units::secs(70),
                to: units::secs(80),
                interval: units::ms(10),
            }))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::FaultAfterEnd { .. }), "{err}");
    }

    #[test]
    fn open_loop_config_is_validated() {
        let err = ClusterConfigBuilder::new()
            .open_loop(Some(OpenLoopConfig {
                arrivals: ArrivalSpec::Poisson { rate_hz: 0.0 },
                queue_limit: 64,
            }))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::OpenLoopArrivals(_)), "{err}");

        let err = ClusterConfigBuilder::new()
            .open_loop(Some(OpenLoopConfig {
                arrivals: ArrivalSpec::Poisson { rate_hz: 100.0 },
                queue_limit: 0,
            }))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::Zero("open_loop.queue_limit"));

        assert!(ClusterConfigBuilder::new()
            .open_loop(Some(OpenLoopConfig {
                arrivals: ArrivalSpec::Poisson { rate_hz: 100.0 },
                queue_limit: 64,
            }))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_accepts_the_presets() {
        assert!(ClusterConfigBuilder::new().build().is_ok());
        assert!(
            ClusterConfigBuilder::from_config(ClusterConfig::small_test())
                .build()
                .is_ok()
        );
    }

    #[test]
    fn measure_window_trims_both_ends() {
        let c = ClusterConfig::default();
        let (from, to) = c.measure_window();
        assert_eq!(from, units::secs(10));
        assert_eq!(to, units::secs(50));
    }
}
