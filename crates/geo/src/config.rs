//! Deployment, cost-model and workload configuration.

use eunomia_sim::{units, SimTime};
use eunomia_workload::WorkloadConfig;

/// Which system to assemble over the substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Eventually consistent multi-cluster store: remote updates apply on
    /// arrival, no causality metadata. The paper's normalization baseline.
    Eventual,
    /// EunomiaKV: the paper's system (§3–§5).
    EunomiaKv,
}

/// CPU service costs (nanoseconds) charged by the busy-server model.
///
/// Defaults are calibrated so a partition behaves like a share of the
/// paper's Riak machines (§7.1 reports ≈3 kops/s per machine): an op costs
/// a few hundred microseconds, and consistency metadata adds costs on top.
/// Absolute values are not meant to match the authors' hardware — the
/// *relative* costs are what produce the paper's shapes.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Partition: base read handling.
    pub read_ns: u64,
    /// Partition: base update handling (storage write + timestamping).
    pub update_ns: u64,
    /// Per vector entry handled on client-facing ops (0 for scalar or
    /// eventual systems).
    pub vector_entry_ns: u64,
    /// Eunomia: per-op ingest (buffer insert).
    pub meta_op_ns: u64,
    /// Eunomia: per-op stabilization drain.
    pub stable_per_op_ns: u64,
    /// Fixed per-message cost (batch framing, syscalls).
    pub batch_overhead_ns: u64,
    /// Partition: applying one remote update.
    pub apply_ns: u64,
    /// Partition: staging one remote data payload.
    pub stage_ns: u64,
    /// Receiver: per stable op enqueue/dependency check.
    pub receiver_op_ns: u64,
    /// Heartbeat/liveness message processing.
    pub hb_ns: u64,
    /// Baselines — per-op scalar metadata handling (GentleRain's single
    /// timestamp; Cure pays `stab_vector_entry_ns` per entry instead).
    pub scalar_meta_ns: u64,
    /// Baselines — per-vector-entry metadata cost of the global-
    /// stabilization systems (Cure). Deliberately much larger than
    /// `vector_entry_ns`: EunomiaKV only *attaches* vectors (dependency
    /// checking is the receiver's trivial comparison), while Cure's
    /// partitions maintain, merge and stabilize vectors on every
    /// operation — the "metadata enrichment" overhead of §7.2.1.
    pub stab_vector_entry_ns: u64,
    /// Baselines — partition cost to compute and send one LST/LSV report
    /// into the global stabilization procedure (scalar part; vector
    /// systems add `vector_entry_ns` per entry).
    pub stab_report_ns: u64,
    /// Baselines — partition cost to process one GST/GSV broadcast.
    pub stab_broadcast_ns: u64,
    /// Baselines — sequencer service time per sequence-number request.
    pub seq_req_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_ns: 700_000,
            update_ns: 900_000,
            vector_entry_ns: 5_000,
            meta_op_ns: 1_500,
            stable_per_op_ns: 1_000,
            batch_overhead_ns: 10_000,
            apply_ns: 30_000,
            stage_ns: 8_000,
            receiver_op_ns: 2_000,
            hb_ns: 2_000,
            scalar_meta_ns: 100_000,
            stab_vector_entry_ns: 55_000,
            stab_report_ns: 40_000,
            stab_broadcast_ns: 30_000,
            seq_req_ns: 150_000,
        }
    }
}

/// A partition that communicates abnormally slowly with its local Eunomia
/// during a time window (§7.2.3).
#[derive(Clone, Copy, Debug)]
pub struct StragglerConfig {
    /// Datacenter of the straggler.
    pub dc: usize,
    /// Partition index within the datacenter.
    pub partition: usize,
    /// Straggling window start (sim time).
    pub from: SimTime,
    /// Straggling window end (sim time).
    pub to: SimTime,
    /// Batch/heartbeat interval used *inside* the window.
    pub interval: SimTime,
}

/// Full cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of datacenters (`M`).
    pub n_dcs: usize,
    /// Logical partitions per datacenter (`N`).
    pub partitions_per_dc: usize,
    /// Closed-loop clients per datacenter.
    pub clients_per_dc: usize,
    /// Symmetric RTT matrix between datacenters (ns); `None` selects the
    /// paper's 3-DC topology (80/80/160 ms).
    pub rtt_matrix: Option<Vec<Vec<SimTime>>>,
    /// One-way latency between nodes of the same datacenter.
    pub intra_oneway: SimTime,
    /// Uniform jitter bound added to every one-way latency.
    pub jitter: SimTime,
    /// Simulation duration.
    pub duration: SimTime,
    /// Ignored prefix when computing steady-state rates (the paper trims
    /// the first minute).
    pub warmup: SimTime,
    /// Ignored suffix (the paper trims the last minute).
    pub cooldown: SimTime,
    /// Partition → Eunomia batching interval (§5; paper uses 1 ms).
    pub batch_interval: SimTime,
    /// Partition heartbeat threshold ∆ (Alg. 2 l. 10–12).
    pub heartbeat_delta: SimTime,
    /// Eunomia `PROCESS_STABLE` period θ.
    pub theta: SimTime,
    /// Receiver `CHECK_PENDING` period ρ.
    pub rho: SimTime,
    /// Baselines — interval at which sibling partitions across datacenters
    /// exchange heartbeats for global stabilization (the paper uses 10 ms).
    pub stab_heartbeat_interval: SimTime,
    /// Baselines — interval at which each datacenter recomputes its
    /// GST/GSV ("clock computation interval"; the paper uses 5 ms and
    /// sweeps 1–100 ms in Fig. 1).
    pub stab_aggregation_interval: SimTime,
    /// Eunomia replica count (1 = the non-replicated service of §3.1).
    pub replicas: usize,
    /// Ω heartbeat interval between replicas.
    pub omega_interval: SimTime,
    /// Ω suspicion timeout.
    pub omega_timeout: SimTime,
    /// Per-node clock offsets are drawn uniformly from `[-skew, +skew]`.
    pub clock_skew: SimTime,
    /// Per-node drift drawn uniformly from `[-drift_ppm, +drift_ppm]`.
    pub drift_ppm: f64,
    /// Optional straggler injection (§7.2.3).
    pub straggler: Option<StragglerConfig>,
    /// Service cost model.
    pub costs: CostModel,
    /// Workload.
    pub workload: WorkloadConfig,
    /// RNG seed (identical seeds give identical runs).
    pub seed: u64,
    /// Optional per-client operation budget: clients stop issuing after
    /// completing this many operations (used by quiescence tests; `None`
    /// keeps the closed loop running for the whole duration).
    pub ops_per_client: Option<u64>,
    /// Extension (off = faithful Alg. 5): allow the receiver to keep one
    /// APPLY in flight per origin datacenter instead of one globally.
    pub pipelined_receiver: bool,
    /// Extension (§8 future work, Practi-style): replicate each key at
    /// only this many datacenters. Metadata still flows to every
    /// datacenter (receivers advance `SiteTime` with metadata-only
    /// applies for keys they do not store); data ships only to the
    /// key's replica set. `None` = full replication (the paper's setting).
    pub replication_factor: Option<usize>,
    /// §5 "Communication Patterns": route partition metadata through a
    /// fan-in tree of the given arity instead of all-to-one. `None`
    /// (default) sends every partition's batches straight to the Eunomia
    /// replicas; `Some(k)` makes partition 0 the root relay.
    pub metadata_tree_arity: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_dcs: 3,
            partitions_per_dc: 8,
            clients_per_dc: 4,
            rtt_matrix: None,
            intra_oneway: units::us(50),
            jitter: units::us(20),
            duration: units::secs(60),
            warmup: units::secs(10),
            cooldown: units::secs(10),
            batch_interval: units::ms(1),
            heartbeat_delta: units::ms(1),
            theta: units::ms(1),
            rho: units::ms(1),
            stab_heartbeat_interval: units::ms(10),
            stab_aggregation_interval: units::ms(5),
            replicas: 1,
            omega_interval: units::ms(10),
            omega_timeout: units::ms(50),
            clock_skew: units::us(500),
            drift_ppm: 50.0,
            straggler: None,
            costs: CostModel::default(),
            workload: WorkloadConfig::paper(90, false),
            seed: 42,
            ops_per_client: None,
            pipelined_receiver: false,
            replication_factor: None,
            metadata_tree_arity: None,
        }
    }
}

impl ClusterConfig {
    /// The measurement window `[warmup, duration - cooldown)`.
    pub fn measure_window(&self) -> (SimTime, SimTime) {
        (self.warmup, self.duration.saturating_sub(self.cooldown))
    }

    /// Costs adjusted for the system being run: the eventual store pays no
    /// vector handling (it keeps no causality metadata).
    pub fn costs_for(&self, kind: SystemKind) -> CostModel {
        let mut c = self.costs;
        if kind == SystemKind::Eventual {
            c.vector_entry_ns = 0;
        }
        c
    }

    /// Builds the simulator topology for this config.
    pub fn topology(&self) -> eunomia_sim::Topology {
        match &self.rtt_matrix {
            Some(m) => eunomia_sim::Topology::new(m.clone(), self.intra_oneway, self.jitter),
            None => {
                assert_eq!(
                    self.n_dcs, 3,
                    "default topology is the paper's 3-DC deployment"
                );
                eunomia_sim::Topology::paper_three_dcs(self.intra_oneway, self.jitter)
            }
        }
    }

    /// A small, fast configuration for tests (2 DCs, few clients, short
    /// run, low latencies).
    pub fn small_test() -> Self {
        ClusterConfig {
            n_dcs: 2,
            partitions_per_dc: 2,
            clients_per_dc: 2,
            rtt_matrix: Some(vec![vec![0, units::ms(20)], vec![units::ms(20), 0]]),
            duration: units::secs(5),
            warmup: units::secs(1),
            cooldown: units::secs(1),
            workload: WorkloadConfig {
                keys: 100,
                read_pct: 50,
                value_size: 16,
                power_law: false,
            },
            ..ClusterConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_deployment() {
        let c = ClusterConfig::default();
        assert_eq!(c.n_dcs, 3);
        assert_eq!(c.partitions_per_dc, 8);
        assert_eq!(c.batch_interval, units::ms(1));
        let topo = c.topology();
        assert_eq!(topo.rtt(0, 1), units::ms(80));
        assert_eq!(topo.rtt(1, 2), units::ms(160));
    }

    #[test]
    fn eventual_pays_no_vector_costs() {
        let c = ClusterConfig::default();
        assert_eq!(c.costs_for(SystemKind::Eventual).vector_entry_ns, 0);
        assert!(c.costs_for(SystemKind::EunomiaKv).vector_entry_ns > 0);
    }

    #[test]
    fn measure_window_trims_both_ends() {
        let c = ClusterConfig::default();
        let (from, to) = c.measure_window();
        assert_eq!(from, units::secs(10));
        assert_eq!(to, units::secs(50));
    }
}
