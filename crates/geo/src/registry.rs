//! Process-id registry shared by all simulation actors.
//!
//! Processes are constructed before their peers' ids exist, so each actor
//! holds an `Rc<RefCell<Registry>>` that the cluster builder fills in
//! after spawning everything; actors only read it once the run starts.

use eunomia_sim::ProcessId;
use std::cell::RefCell;
use std::rc::Rc;

/// Ids of every process in the deployment.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// `partitions[dc][p]` — partition processes.
    pub partitions: Vec<Vec<ProcessId>>,
    /// `eunomia[dc][replica]` — Eunomia replica processes.
    pub eunomia: Vec<Vec<ProcessId>>,
    /// `receivers[dc]` — receiver processes. `None` for systems that run
    /// no receiver (Eventual), so a stray send cannot silently target a
    /// bogus id.
    pub receivers: Vec<Option<ProcessId>>,
    /// `aggregators[dc]` — global-stabilization aggregators (baselines).
    pub aggregators: Vec<ProcessId>,
    /// `sequencers[dc]` — per-datacenter sequencers (baselines).
    pub sequencers: Vec<ProcessId>,
    /// `seq_receivers[dc]` — sequencer-system receivers (baselines).
    pub seq_receivers: Vec<ProcessId>,
}

/// Shared handle to the registry.
pub type SharedRegistry = Rc<RefCell<Registry>>;

/// Creates an empty shared registry.
pub fn shared() -> SharedRegistry {
    Rc::new(RefCell::new(Registry::default()))
}

impl Registry {
    /// Partition `p` of datacenter `dc`.
    pub fn partition(&self, dc: usize, p: usize) -> ProcessId {
        self.partitions[dc][p]
    }

    /// All Eunomia replicas of `dc`.
    pub fn eunomia_replicas(&self, dc: usize) -> &[ProcessId] {
        &self.eunomia[dc]
    }

    /// The receiver of `dc`.
    ///
    /// # Panics
    /// Panics if `dc` runs no receiver (e.g. under Eventual, which
    /// applies remote updates on arrival): any send to it would be a
    /// protocol bug, so it fails loudly instead of targeting a
    /// placeholder id.
    pub fn receiver(&self, dc: usize) -> ProcessId {
        self.receivers[dc]
            .unwrap_or_else(|| panic!("dc {dc} runs no receiver; stray receiver-bound message"))
    }

    /// Number of datacenters registered.
    pub fn n_dcs(&self) -> usize {
        self.partitions.len()
    }

    /// The stabilization aggregator of `dc` (baselines).
    pub fn aggregator(&self, dc: usize) -> ProcessId {
        self.aggregators[dc]
    }

    /// The sequencer of `dc` (baselines).
    pub fn sequencer(&self, dc: usize) -> ProcessId {
        self.sequencers[dc]
    }

    /// The sequencer-system receiver of `dc` (baselines).
    pub fn seq_receiver(&self, dc: usize) -> ProcessId {
        self.seq_receivers[dc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_filling_is_visible_through_the_shared_handle() {
        let reg = shared();
        let held = reg.clone();
        reg.borrow_mut().partitions = vec![vec![ProcessId(3)]];
        reg.borrow_mut().receivers = vec![Some(ProcessId(9))];
        assert_eq!(held.borrow().partition(0, 0), ProcessId(3));
        assert_eq!(held.borrow().receiver(0), ProcessId(9));
        assert_eq!(held.borrow().n_dcs(), 1);
    }

    #[test]
    #[should_panic(expected = "runs no receiver")]
    fn missing_receiver_fails_loudly() {
        let reg = shared();
        reg.borrow_mut().receivers = vec![None];
        reg.borrow().receiver(0);
    }
}
