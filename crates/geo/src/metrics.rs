//! Shared run metrics: throughput, operation latency, remote visibility.

use eunomia_sim::SimTime;
use eunomia_stats::{Histogram, LoadStats, TimeSeries};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One remote-visibility observation.
#[derive(Clone, Copy, Debug)]
pub struct VisibilitySample {
    /// Simulated time at which the update became visible at the
    /// destination.
    pub at: SimTime,
    /// Extra delay in nanoseconds: time from the update's data arriving at
    /// the destination partition until it became visible. This is the
    /// paper's metric — network latency between datacenters is factored
    /// out (§7.2.2).
    pub extra_ns: u64,
}

/// One entry of the (optional) apply log: an update landing at a
/// datacenter, used by integration tests to verify causal order and
/// convergence end to end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApplyRecord {
    /// Originating datacenter.
    pub origin: u16,
    /// Datacenter where the update landed (== `origin` for local updates).
    pub dest: u16,
    /// Updated key.
    pub key: u64,
    /// The update's timestamp at its origin (its LWW rank component).
    pub ts: u64,
    /// Full vector time of the update.
    pub vts: Vec<u64>,
    /// Sim time of the landing.
    pub at: SimTime,
}

/// One entry of the (optional) per-client session log: an operation
/// completing at a client, with enough version information to check
/// session guarantees (read-your-writes, monotonic reads) end to end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionRecord {
    /// The client's home datacenter.
    pub dc: u16,
    /// Globally unique client index.
    pub client: u32,
    /// Key the operation touched.
    pub key: u64,
    /// `true` for updates, `false` for reads.
    pub is_update: bool,
    /// Origin datacenter of the observed version (reads) or of the
    /// update itself (== `dc`). Together with `vts[origin]` this is the
    /// version's LWW rank.
    pub origin: u16,
    /// Version vector observed (reads) or assigned (updates).
    pub vts: Vec<u64>,
    /// Sim time of the completion.
    pub at: SimTime,
}

impl SessionRecord {
    /// The LWW arbitration rank of the observed/assigned version:
    /// `(origin timestamp, origin)` — the order the store resolves
    /// conflicting versions by, and therefore the order session
    /// guarantees are defined over.
    pub fn rank(&self) -> (u64, u16) {
        (
            self.vts.get(self.origin as usize).copied().unwrap_or(0),
            self.origin,
        )
    }
}

/// Mutable interior of [`GeoMetrics`].
#[derive(Debug)]
pub struct MetricsInner {
    /// Completed client operations per datacenter, 1-second buckets.
    pub ops_per_dc: Vec<TimeSeries>,
    /// Client-observed operation latency (ns).
    pub op_latency: Histogram,
    /// Client-observed latency of update operations only (ns).
    pub update_latency: Histogram,
    /// Update latency over time (1-second buckets; mean per bucket) —
    /// used by the straggler experiment to show sequencer systems pushing
    /// the straggling interval into client latency (§7.2.3).
    pub update_latency_series: TimeSeries,
    /// Visibility samples per `(origin_dc, dest_dc)`.
    pub visibility: HashMap<(u16, u16), Vec<VisibilitySample>>,
    /// Total completed operations.
    pub completed_ops: u64,
    /// Total completed updates.
    pub completed_updates: u64,
    /// Total remote updates applied.
    pub remote_applies: u64,
    /// Messages received by Eunomia replicas (MetaBatch/MetaBundle) — the
    /// quantity the §5 propagation tree reduces.
    pub service_messages: u64,
    /// Apply log (only filled when enabled; see
    /// [`GeoMetrics::enable_apply_log`]).
    pub apply_log: Vec<ApplyRecord>,
    /// Whether the apply log records entries.
    pub apply_log_enabled: bool,
    /// Per-client session log (only filled when enabled; see
    /// [`GeoMetrics::enable_session_log`]).
    pub session_log: Vec<SessionRecord>,
    /// Whether the session log records entries.
    pub session_log_enabled: bool,
    /// Whether staleness exposure is tracked (see
    /// [`GeoMetrics::enable_staleness_tracking`]).
    pub staleness_enabled: bool,
    /// Stale reads observed per datacenter: reads of a key that has a
    /// remote update committed at its origin but not yet applied at the
    /// reading datacenter. This is *staleness exposure* — any read inside
    /// the normal visibility window counts — so its interesting signal is
    /// how faults inflate it, not its absolute value.
    pub stale_reads: Vec<u64>,
    /// Stale reads over time per datacenter (1-second buckets): the
    /// series that shows staleness spiking during a fault window and
    /// recovering after the heal.
    pub stale_read_series: Vec<TimeSeries>,
    /// Open-loop load measurements (only populated when the run uses
    /// `ClusterConfig::open_loop`; closed-loop clients never touch it).
    pub load: LoadStats,
    /// Per key: highest update timestamp committed at each origin
    /// datacenter (staleness tracking only).
    issued_high: HashMap<u64, Vec<u64>>,
    /// Per `(dest, key)`: highest update timestamp applied at `dest` per
    /// origin datacenter (staleness tracking only).
    applied_high: HashMap<(u16, u64), Vec<u64>>,
}

/// Metrics sink shared (single-threaded `Rc`) by all simulation processes.
#[derive(Clone, Debug)]
pub struct GeoMetrics {
    inner: Rc<RefCell<MetricsInner>>,
}

impl GeoMetrics {
    /// Creates a sink for `n_dcs` datacenters.
    pub fn new(n_dcs: usize) -> Self {
        GeoMetrics {
            inner: Rc::new(RefCell::new(MetricsInner {
                ops_per_dc: (0..n_dcs)
                    .map(|_| TimeSeries::new(eunomia_sim::units::secs(1)))
                    .collect(),
                op_latency: Histogram::new(),
                update_latency: Histogram::new(),
                update_latency_series: TimeSeries::new(eunomia_sim::units::secs(1)),
                visibility: HashMap::new(),
                completed_ops: 0,
                completed_updates: 0,
                remote_applies: 0,
                service_messages: 0,
                apply_log: Vec::new(),
                apply_log_enabled: false,
                session_log: Vec::new(),
                session_log_enabled: false,
                staleness_enabled: false,
                stale_reads: vec![0; n_dcs],
                stale_read_series: (0..n_dcs)
                    .map(|_| TimeSeries::new(eunomia_sim::units::secs(1)))
                    .collect(),
                load: LoadStats::new(eunomia_sim::units::secs(1)),
                issued_high: HashMap::new(),
                applied_high: HashMap::new(),
            })),
        }
    }

    /// Records a completed client operation.
    pub fn record_op(&self, dc: usize, at: SimTime, latency_ns: u64, is_update: bool) {
        let mut m = self.inner.borrow_mut();
        m.ops_per_dc[dc].add(at, 1);
        m.op_latency.record(latency_ns);
        m.completed_ops += 1;
        if is_update {
            m.update_latency.record(latency_ns);
            m.update_latency_series.observe(at, latency_ns);
            m.completed_updates += 1;
        }
    }

    /// Records one open-loop intended arrival.
    pub fn record_load_arrival(&self, at: SimTime) {
        self.inner.borrow_mut().load.record_arrival(at);
    }

    /// Records an open-loop arrival dropped at a full client queue.
    pub fn record_load_drop(&self) {
        self.inner.borrow_mut().load.record_drop();
    }

    /// Notes an open-loop client's queue depth after an enqueue.
    pub fn record_load_queue_depth(&self, depth: u64) {
        self.inner.borrow_mut().load.note_queue_depth(depth);
    }

    /// Records an open-loop completion: latency from the intended
    /// arrival, service time from the actual issue, and the queue wait
    /// between the two.
    pub fn record_load_completion(&self, at: SimTime, latency: u64, service: u64, wait: u64) {
        self.inner
            .borrow_mut()
            .load
            .record_completion(at, latency, service, wait);
    }

    /// Clones the accumulated open-loop load stats.
    pub fn load_stats(&self) -> LoadStats {
        self.inner.borrow().load.clone()
    }

    /// Records a remote update becoming visible.
    pub fn record_visibility(&self, origin: u16, dest: u16, at: SimTime, extra_ns: u64) {
        let mut m = self.inner.borrow_mut();
        m.remote_applies += 1;
        m.visibility
            .entry((origin, dest))
            .or_default()
            .push(VisibilitySample { at, extra_ns });
    }

    /// Counts one metadata message arriving at an Eunomia replica.
    pub fn record_service_msg(&self) {
        self.inner.borrow_mut().service_messages += 1;
    }

    /// Messages received by Eunomia replicas so far.
    pub fn service_messages(&self) -> u64 {
        self.inner.borrow().service_messages
    }

    /// Turns on the apply log (off by default: it grows with every update
    /// landing anywhere, which benchmark runs do not want to pay for).
    pub fn enable_apply_log(&self) {
        self.inner.borrow_mut().apply_log_enabled = true;
    }

    /// Turns on the per-client session log (off by default: it grows with
    /// every completed operation). Used by the session-guarantee checks
    /// of `tests/faults.rs`; wired from `ClusterConfig::track_sessions`
    /// for the native systems.
    pub fn enable_session_log(&self) {
        self.inner.borrow_mut().session_log_enabled = true;
    }

    /// Appends to the session log if enabled.
    pub fn record_session(&self, record: SessionRecord) {
        let mut m = self.inner.borrow_mut();
        if m.session_log_enabled {
            m.session_log.push(record);
        }
    }

    /// Clones the session log (empty unless enabled).
    pub fn session_log(&self) -> Vec<SessionRecord> {
        self.inner.borrow().session_log.clone()
    }

    /// Turns on staleness-exposure tracking (off by default: it maintains
    /// per-key high-water tables on every apply and checks them on every
    /// read).
    pub fn enable_staleness_tracking(&self) {
        self.inner.borrow_mut().staleness_enabled = true;
    }

    /// Appends to the apply log if enabled, and advances the staleness
    /// high-water tables if staleness tracking is on. Every system calls
    /// this for local commits (`origin == dest`) and remote applies alike,
    /// so both features see the complete landing stream.
    pub fn record_apply(&self, record: ApplyRecord) {
        let mut m = self.inner.borrow_mut();
        if m.staleness_enabled {
            let n_dcs = m.ops_per_dc.len();
            let origin = record.origin as usize;
            if record.origin == record.dest {
                let issued = m
                    .issued_high
                    .entry(record.key)
                    .or_insert_with(|| vec![0; n_dcs]);
                issued[origin] = issued[origin].max(record.ts);
            }
            let applied = m
                .applied_high
                .entry((record.dest, record.key))
                .or_insert_with(|| vec![0; n_dcs]);
            applied[origin] = applied[origin].max(record.ts);
        }
        if m.apply_log_enabled {
            m.apply_log.push(record);
        }
    }

    /// Records a read of `key` served at datacenter `dc`, counting it as
    /// stale if some *other* datacenter has committed an update to `key`
    /// that `dc` has not applied yet. No-op unless staleness tracking is
    /// enabled.
    pub fn record_read(&self, dc: usize, key: u64, at: SimTime) {
        let mut m = self.inner.borrow_mut();
        if !m.staleness_enabled {
            return;
        }
        let stale = match m.issued_high.get(&key) {
            None => false,
            Some(issued) => {
                let applied = m.applied_high.get(&(dc as u16, key));
                issued
                    .iter()
                    .enumerate()
                    .any(|(origin, &ts)| origin != dc && ts > applied.map_or(0, |a| a[origin]))
            }
        };
        if stale {
            m.stale_reads[dc] += 1;
            m.stale_read_series[dc].add(at, 1);
        }
    }

    /// Total stale reads across datacenters (0 unless staleness tracking
    /// was enabled).
    pub fn stale_reads(&self) -> u64 {
        self.inner.borrow().stale_reads.iter().sum()
    }

    /// Clones the apply log (empty unless enabled).
    pub fn apply_log(&self) -> Vec<ApplyRecord> {
        self.inner.borrow().apply_log.clone()
    }

    /// Immutable access to the accumulated metrics.
    pub fn with<R>(&self, f: impl FnOnce(&MetricsInner) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Total completed client operations.
    pub fn completed_ops(&self) -> u64 {
        self.inner.borrow().completed_ops
    }

    /// Throughput in ops/sec over `[from, to)` (sim time), across all DCs.
    pub fn throughput_ops_sec(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let m = self.inner.borrow();
        let total: u64 = m
            .ops_per_dc
            .iter()
            .map(|ts| ts.total_between(from, to))
            .sum();
        total as f64 / eunomia_sim::units::to_secs(to - from)
    }

    /// Visibility extra delays (ns) for updates from `origin` observed at
    /// `dest`, restricted to samples visible within `[from, to)`.
    pub fn visibility_extras(
        &self,
        origin: u16,
        dest: u16,
        from: SimTime,
        to: SimTime,
    ) -> Vec<u64> {
        let m = self.inner.borrow();
        m.visibility
            .get(&(origin, dest))
            .map(|v| {
                v.iter()
                    .filter(|s| s.at >= from && s.at < to)
                    .map(|s| s.extra_ns)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eunomia_sim::units;

    #[test]
    fn throughput_over_window() {
        let m = GeoMetrics::new(2);
        for s in 0..10u64 {
            for _ in 0..100 {
                m.record_op(0, units::secs(s), 1_000_000, false);
            }
        }
        // 100 ops/s in each of the 8 whole seconds of [1s, 9s).
        let t = m.throughput_ops_sec(units::secs(1), units::secs(9));
        assert!((t - 100.0).abs() < 1e-9, "{t}");
        assert_eq!(m.completed_ops(), 1000);
    }

    #[test]
    fn visibility_window_filter() {
        let m = GeoMetrics::new(3);
        m.record_visibility(0, 1, units::secs(1), 5);
        m.record_visibility(0, 1, units::secs(5), 7);
        m.record_visibility(2, 1, units::secs(5), 9);
        let v = m.visibility_extras(0, 1, units::secs(2), units::secs(10));
        assert_eq!(v, vec![7]);
        assert!(m.visibility_extras(1, 0, 0, units::secs(10)).is_empty());
    }

    #[test]
    fn staleness_counts_unapplied_remote_updates_only() {
        let m = GeoMetrics::new(2);
        m.enable_staleness_tracking();
        let rec = |origin: u16, dest: u16, key: u64, ts: u64, at| ApplyRecord {
            origin,
            dest,
            key,
            ts,
            vts: vec![0, 0],
            at,
        };
        // dc1 commits key 7 at ts 5; dc0 has not applied it yet.
        m.record_apply(rec(1, 1, 7, 5, units::secs(1)));
        m.record_read(0, 7, units::secs(2)); // stale
        m.record_read(1, 7, units::secs(2)); // own update: not stale
        m.record_read(0, 8, units::secs(2)); // untouched key: not stale
        assert_eq!(m.stale_reads(), 1);
        // After dc0 applies it, reads are fresh again.
        m.record_apply(rec(1, 0, 7, 5, units::secs(3)));
        m.record_read(0, 7, units::secs(4));
        assert_eq!(m.stale_reads(), 1);
        // Tracking off: nothing is ever counted.
        let off = GeoMetrics::new(2);
        off.record_apply(rec(1, 1, 7, 5, 0));
        off.record_read(0, 7, 0);
        assert_eq!(off.stale_reads(), 0);
    }

    #[test]
    fn update_latency_tracked_separately() {
        let m = GeoMetrics::new(1);
        m.record_op(0, 0, 10, false);
        m.record_op(0, 0, 20, true);
        m.with(|inner| {
            assert_eq!(inner.op_latency.count(), 2);
            assert_eq!(inner.update_latency.count(), 1);
            assert_eq!(inner.completed_updates, 1);
        });
    }
}
