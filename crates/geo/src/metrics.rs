//! Shared run metrics: throughput, operation latency, remote visibility.

use eunomia_sim::SimTime;
use eunomia_stats::{Histogram, TimeSeries};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One remote-visibility observation.
#[derive(Clone, Copy, Debug)]
pub struct VisibilitySample {
    /// Simulated time at which the update became visible at the
    /// destination.
    pub at: SimTime,
    /// Extra delay in nanoseconds: time from the update's data arriving at
    /// the destination partition until it became visible. This is the
    /// paper's metric — network latency between datacenters is factored
    /// out (§7.2.2).
    pub extra_ns: u64,
}

/// One entry of the (optional) apply log: an update landing at a
/// datacenter, used by integration tests to verify causal order and
/// convergence end to end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApplyRecord {
    /// Originating datacenter.
    pub origin: u16,
    /// Datacenter where the update landed (== `origin` for local updates).
    pub dest: u16,
    /// Updated key.
    pub key: u64,
    /// The update's timestamp at its origin (its LWW rank component).
    pub ts: u64,
    /// Full vector time of the update.
    pub vts: Vec<u64>,
    /// Sim time of the landing.
    pub at: SimTime,
}

/// Mutable interior of [`GeoMetrics`].
#[derive(Debug)]
pub struct MetricsInner {
    /// Completed client operations per datacenter, 1-second buckets.
    pub ops_per_dc: Vec<TimeSeries>,
    /// Client-observed operation latency (ns).
    pub op_latency: Histogram,
    /// Client-observed latency of update operations only (ns).
    pub update_latency: Histogram,
    /// Update latency over time (1-second buckets; mean per bucket) —
    /// used by the straggler experiment to show sequencer systems pushing
    /// the straggling interval into client latency (§7.2.3).
    pub update_latency_series: TimeSeries,
    /// Visibility samples per `(origin_dc, dest_dc)`.
    pub visibility: HashMap<(u16, u16), Vec<VisibilitySample>>,
    /// Total completed operations.
    pub completed_ops: u64,
    /// Total completed updates.
    pub completed_updates: u64,
    /// Total remote updates applied.
    pub remote_applies: u64,
    /// Messages received by Eunomia replicas (MetaBatch/MetaBundle) — the
    /// quantity the §5 propagation tree reduces.
    pub service_messages: u64,
    /// Apply log (only filled when enabled; see
    /// [`GeoMetrics::enable_apply_log`]).
    pub apply_log: Vec<ApplyRecord>,
    /// Whether the apply log records entries.
    pub apply_log_enabled: bool,
}

/// Metrics sink shared (single-threaded `Rc`) by all simulation processes.
#[derive(Clone, Debug)]
pub struct GeoMetrics {
    inner: Rc<RefCell<MetricsInner>>,
}

impl GeoMetrics {
    /// Creates a sink for `n_dcs` datacenters.
    pub fn new(n_dcs: usize) -> Self {
        GeoMetrics {
            inner: Rc::new(RefCell::new(MetricsInner {
                ops_per_dc: (0..n_dcs)
                    .map(|_| TimeSeries::new(eunomia_sim::units::secs(1)))
                    .collect(),
                op_latency: Histogram::new(),
                update_latency: Histogram::new(),
                update_latency_series: TimeSeries::new(eunomia_sim::units::secs(1)),
                visibility: HashMap::new(),
                completed_ops: 0,
                completed_updates: 0,
                remote_applies: 0,
                service_messages: 0,
                apply_log: Vec::new(),
                apply_log_enabled: false,
            })),
        }
    }

    /// Records a completed client operation.
    pub fn record_op(&self, dc: usize, at: SimTime, latency_ns: u64, is_update: bool) {
        let mut m = self.inner.borrow_mut();
        m.ops_per_dc[dc].add(at, 1);
        m.op_latency.record(latency_ns);
        m.completed_ops += 1;
        if is_update {
            m.update_latency.record(latency_ns);
            m.update_latency_series.observe(at, latency_ns);
            m.completed_updates += 1;
        }
    }

    /// Records a remote update becoming visible.
    pub fn record_visibility(&self, origin: u16, dest: u16, at: SimTime, extra_ns: u64) {
        let mut m = self.inner.borrow_mut();
        m.remote_applies += 1;
        m.visibility
            .entry((origin, dest))
            .or_default()
            .push(VisibilitySample { at, extra_ns });
    }

    /// Counts one metadata message arriving at an Eunomia replica.
    pub fn record_service_msg(&self) {
        self.inner.borrow_mut().service_messages += 1;
    }

    /// Messages received by Eunomia replicas so far.
    pub fn service_messages(&self) -> u64 {
        self.inner.borrow().service_messages
    }

    /// Turns on the apply log (off by default: it grows with every update
    /// landing anywhere, which benchmark runs do not want to pay for).
    pub fn enable_apply_log(&self) {
        self.inner.borrow_mut().apply_log_enabled = true;
    }

    /// Appends to the apply log if enabled.
    pub fn record_apply(&self, record: ApplyRecord) {
        let mut m = self.inner.borrow_mut();
        if m.apply_log_enabled {
            m.apply_log.push(record);
        }
    }

    /// Clones the apply log (empty unless enabled).
    pub fn apply_log(&self) -> Vec<ApplyRecord> {
        self.inner.borrow().apply_log.clone()
    }

    /// Immutable access to the accumulated metrics.
    pub fn with<R>(&self, f: impl FnOnce(&MetricsInner) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Total completed client operations.
    pub fn completed_ops(&self) -> u64 {
        self.inner.borrow().completed_ops
    }

    /// Throughput in ops/sec over `[from, to)` (sim time), across all DCs.
    pub fn throughput_ops_sec(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let m = self.inner.borrow();
        let total: u64 = m
            .ops_per_dc
            .iter()
            .map(|ts| ts.total_between(from, to))
            .sum();
        total as f64 / eunomia_sim::units::to_secs(to - from)
    }

    /// Visibility extra delays (ns) for updates from `origin` observed at
    /// `dest`, restricted to samples visible within `[from, to)`.
    pub fn visibility_extras(
        &self,
        origin: u16,
        dest: u16,
        from: SimTime,
        to: SimTime,
    ) -> Vec<u64> {
        let m = self.inner.borrow();
        m.visibility
            .get(&(origin, dest))
            .map(|v| {
                v.iter()
                    .filter(|s| s.at >= from && s.at < to)
                    .map(|s| s.extra_ns)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eunomia_sim::units;

    #[test]
    fn throughput_over_window() {
        let m = GeoMetrics::new(2);
        for s in 0..10u64 {
            for _ in 0..100 {
                m.record_op(0, units::secs(s), 1_000_000, false);
            }
        }
        // 100 ops/s in each of the 8 whole seconds of [1s, 9s).
        let t = m.throughput_ops_sec(units::secs(1), units::secs(9));
        assert!((t - 100.0).abs() < 1e-9, "{t}");
        assert_eq!(m.completed_ops(), 1000);
    }

    #[test]
    fn visibility_window_filter() {
        let m = GeoMetrics::new(3);
        m.record_visibility(0, 1, units::secs(1), 5);
        m.record_visibility(0, 1, units::secs(5), 7);
        m.record_visibility(2, 1, units::secs(5), 9);
        let v = m.visibility_extras(0, 1, units::secs(2), units::secs(10));
        assert_eq!(v, vec![7]);
        assert!(m.visibility_extras(1, 0, 0, units::secs(10)).is_empty());
    }

    #[test]
    fn update_latency_tracked_separately() {
        let m = GeoMetrics::new(1);
        m.record_op(0, 0, 10, false);
        m.record_op(0, 0, 20, true);
        m.with(|inner| {
            assert_eq!(inner.op_latency.count(), 2);
            assert_eq!(inner.update_latency.count(), 1);
            assert_eq!(inner.completed_updates, 1);
        });
    }
}
