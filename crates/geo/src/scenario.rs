//! Named experiment scenarios and the `[system x scenario]` sweep
//! driver.
//!
//! A [`Scenario`] is a validated [`ClusterConfig`] with a name — the unit
//! every figure harness, example and integration test feeds to
//! [`run`]. Presets cover the deployments the paper (and
//! this reproduction's extensions) use; [`Scenario::with`] derives
//! variants for parameter sweeps while keeping validation on.
//!
//! [`Sweep`] runs a grid of systems against a list of scenarios and
//! collects [`RunReport`]s, collapsing the per-figure hand-rolled loops
//! into one driver with shared table rendering.
//!
//! # The fault model and its presets
//!
//! Beyond the paper's leader crashes and §7.2.3 stragglers, scenarios can
//! carry a **timed fault schedule** ([`ClusterConfig::faults`], a list of
//! [`FaultEvent`]s) that every system — native and baseline — honours
//! identically. The model is TCP-like, because all six protocols assume
//! reliable FIFO links:
//!
//! * **DC-pair partitions** buffer traffic and deliver it (FIFO) after
//!   the heal — never silent loss, so convergence-after-heal is a
//!   meaningful, assertable metric ([`RunReport::heal_convergence`]).
//! * **Gray links** pay constant extra latency plus, per message, a
//!   probabilistic retransmission penalty (loss manifests as RTO-shaped
//!   latency inflation, the way TCP turns loss into delay).
//! * **One-way overrides** replace a *directed* link's base latency,
//!   expressing asymmetric WANs and hub-and-spoke detours while the RTT
//!   matrix stays symmetric.
//! * **Partition-server pauses** model gray process failures: the
//!   process is alive but unresponsive for a window; queued work drains
//!   in order at the resume.
//!
//! Five presets cover the space (all enable the apply log and staleness
//! tracking so fault-aware metrics — stale-read counts, visibility
//! series, convergence-after-heal — are populated):
//!
//! | preset | deployment | faults |
//! |---|---|---|
//! | [`partitioned-3dc`](Scenario::partitioned_three_dc) | paper 3-DC | dc0–dc1 partitioned for ~a quarter of the run, then healed |
//! | [`flapping-links`](Scenario::flapping_links) | paper 3-DC | dc0–dc1 cut and healed three times (10% of the run each cycle) |
//! | [`gray-wan`](Scenario::gray_wan) | paper 3-DC | both links into dc2 gray (15% loss, +20 ms) for the middle half |
//! | [`hub-and-spoke`](Scenario::hub_and_spoke) | 5 DCs via a hub | spoke↔spoke traffic priced through the hub, slow uplinks (asymmetric one-ways), one spoke partitioned from the hub mid-run |
//! | [`asymmetric-5dc`](Scenario::asymmetric_five_dc) | wide 5-DC | permanent asymmetric one-ways, a gray window, a partition+heal, and a paused partition server — every fault class at once |
//!
//! All five take the run length in seconds and scale their fault windows
//! proportionally, so `--quick` CI runs exercise the same schedule shape
//! as full runs. Same seed ⇒ bit-identical reports, faults included.
//!
//! # Open-loop presets
//!
//! Five more presets ([`Scenario::open_loop_presets`]) run the paper's
//! 3-DC deployment with open-loop clients — one per arrival-process
//! family (steady Poisson, bursty MMPP, diurnal sine, flash crowd with a
//! shifting hotspot, committed-trace replay). See
//! [`crate::open_loop`] for why these measure latency free of
//! coordinated omission.

use crate::config::{ClusterConfig, ConfigError, OpenLoopConfig, StragglerConfig};
use crate::faults::FaultEvent;
use crate::harness::RunReport;
use crate::system::{run, SystemId};
use crate::table::format_table;
use eunomia_sim::units;
use eunomia_workload::{ArrivalSpec, CompactTrace, HotShift, WorkloadConfig};

/// A named, validated experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    cfg: ClusterConfig,
}

impl Scenario {
    /// Wraps an explicit configuration under a name, validating it.
    pub fn custom(name: impl Into<String>, cfg: ClusterConfig) -> Result<Scenario, ConfigError> {
        cfg.validate()?;
        Ok(Scenario {
            name: name.into(),
            cfg,
        })
    }

    /// The paper's deployment: 3 DCs (80/80/160 ms RTT), 8 partitions
    /// and 4 clients per DC, 90:10 uniform workload, 60 s.
    pub fn paper_three_dc() -> Scenario {
        Scenario {
            name: "paper-3dc".into(),
            cfg: ClusterConfig::default(),
        }
    }

    /// A small, fast deployment for tests: 2 DCs (20 ms RTT), 2
    /// partitions and 2 clients per DC, 5 s.
    pub fn small_test() -> Scenario {
        Scenario {
            name: "small-test".into(),
            cfg: ClusterConfig::small_test(),
        }
    }

    /// A wide 5-DC deployment (30–200 ms RTTs, roughly US/EU/APAC
    /// distances) with the pipelined-receiver extension on — the
    /// stress-test for vector-clock visibility beyond the paper's three
    /// sites.
    pub fn wide_five_dc() -> Scenario {
        let ms = units::ms(1);
        let rtts: Vec<Vec<u64>> = vec![
            //   A         B         C         D         E
            vec![0, 30 * ms, 90 * ms, 150 * ms, 200 * ms],
            vec![30 * ms, 0, 70 * ms, 130 * ms, 180 * ms],
            vec![90 * ms, 70 * ms, 0, 80 * ms, 140 * ms],
            vec![150 * ms, 130 * ms, 80 * ms, 0, 90 * ms],
            vec![200 * ms, 180 * ms, 140 * ms, 90 * ms, 0],
        ];
        let cfg = ClusterConfig {
            n_dcs: 5,
            rtt_matrix: Some(rtts),
            partitions_per_dc: 4,
            clients_per_dc: 3,
            pipelined_receiver: true,
            ..ClusterConfig::default()
        };
        Scenario {
            name: "wide-5dc".into(),
            cfg,
        }
    }

    /// The §7.2.3 straggler schedule on the paper's 3-DC deployment: one
    /// partition of dc2 contacts its local Eunomia only every `interval`
    /// during the middle third of the run.
    pub fn straggler(interval: eunomia_sim::SimTime) -> Scenario {
        let cfg = ClusterConfig::default();
        let third = cfg.duration / 3;
        let cfg = ClusterConfig {
            straggler: Some(StragglerConfig {
                dc: 2,
                partition: 0,
                from: third,
                to: 2 * third,
                interval,
            }),
            warmup: units::secs(2),
            cooldown: 0,
            workload: WorkloadConfig::paper(75, false),
            ..cfg
        };
        Scenario {
            name: format!("straggler-{}ms", interval / units::ms(1)),
            cfg,
        }
    }

    /// Partial replication (§8 future work, Practi-style): each key
    /// stored at only `rf` of the 3 datacenters, bounded workload so the
    /// run quiesces, apply log on for landing analysis.
    ///
    /// Returns [`ConfigError::ReplicationFactor`] unless `1 <= rf <= 3`
    /// — the preset is parameterized, so it validates like every other
    /// construction path instead of panicking mid-sweep.
    pub fn partial_replication(rf: usize) -> Result<Scenario, ConfigError> {
        let cfg = ClusterConfig {
            replication_factor: Some(rf),
            apply_log: true,
            workload: WorkloadConfig {
                keys: 400,
                read_pct: 50,
                value_size: 16,
                power_law: false,
                ..WorkloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        Scenario::custom(format!("partial-rf{rf}"), cfg)
    }

    /// Distance-graded RTT matrix shared by the scale presets: region
    /// pairs `d` hops apart see `(20 + 30 d) ms` RTT, spanning a
    /// continent-chain from 50 ms neighbours out to multi-hundred-ms
    /// antipodes.
    fn graded_rtts(n: usize) -> Vec<Vec<u64>> {
        let ms = units::ms(1);
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| {
                        let d = (a as i64 - b as i64).unsigned_abs();
                        if d == 0 {
                            0
                        } else {
                            (20 + 30 * d) * ms
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The scale stress-test the pre-refactor engine could not afford: 8
    /// datacenters on a distance-graded RTT matrix (50–230 ms), 64
    /// partitions and 8 clients per DC, a million-key zipfian workload,
    /// 10 simulated seconds. Exercises the windowed FIFO link state and
    /// the zero-alloc dispatch path at ~600 processes.
    pub fn massive() -> Scenario {
        let cfg = ClusterConfig {
            n_dcs: 8,
            rtt_matrix: Some(Scenario::graded_rtts(8)),
            partitions_per_dc: 64,
            clients_per_dc: 8,
            duration: units::secs(10),
            warmup: units::secs(2),
            cooldown: units::secs(1),
            workload: WorkloadConfig {
                keys: 1_000_000,
                read_pct: 90,
                value_size: 64,
                power_law: true,
                ..WorkloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        Scenario {
            name: "massive".into(),
            cfg,
        }
    }

    /// `huge-16dc`: twice `massive`'s datacenter count on the same graded
    /// matrix (out to 470 ms RTT), 24 partitions and 4 clients per DC
    /// (~450 processes), a 4-million-key zipfian keyspace and two
    /// simulated minutes. The long horizon is the point: minutes of
    /// cross-DC traffic at 16 fan-out keeps a deep far-future event
    /// population resident, so the calendar queue's overflow migration
    /// and epoch rollover run continuously rather than at startup only.
    pub fn huge_sixteen_dc() -> Scenario {
        let cfg = ClusterConfig {
            n_dcs: 16,
            rtt_matrix: Some(Scenario::graded_rtts(16)),
            partitions_per_dc: 24,
            clients_per_dc: 4,
            duration: units::secs(120),
            warmup: units::secs(12),
            cooldown: units::secs(12),
            workload: WorkloadConfig {
                keys: 4_000_000,
                read_pct: 90,
                value_size: 64,
                power_law: true,
                ..WorkloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        Scenario {
            name: "huge-16dc".into(),
            cfg,
        }
    }

    /// `huge-24dc`: the widest preset — 24 datacenters (metadata
    /// broadcast fans out 23 ways, the graded matrix reaches 710 ms RTT),
    /// 12 partitions and 2 clients per DC, 2 million keys, two simulated
    /// minutes. Fewer processes than `huge-16dc` but the most extreme
    /// replication fan-out: per-update remote traffic, vector-clock width
    /// and far-future timer spread all scale with DC count.
    pub fn huge_twenty_four_dc() -> Scenario {
        let cfg = ClusterConfig {
            n_dcs: 24,
            rtt_matrix: Some(Scenario::graded_rtts(24)),
            partitions_per_dc: 12,
            clients_per_dc: 2,
            duration: units::secs(120),
            warmup: units::secs(12),
            cooldown: units::secs(12),
            workload: WorkloadConfig {
                keys: 2_000_000,
                read_pct: 90,
                value_size: 64,
                power_law: true,
                ..WorkloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        Scenario {
            name: "huge-24dc".into(),
            cfg,
        }
    }

    /// Shared base for the fault presets: `secs` seconds with 10% trims,
    /// an update-heavy bounded keyspace, and the fault-aware metrics
    /// (apply log + staleness tracking) on.
    ///
    /// # Panics
    /// Panics if `secs < 5`: the proportional fault windows need room.
    fn fault_base(secs: u64) -> ClusterConfig {
        assert!(secs >= 5, "fault presets need at least 5 simulated seconds");
        ClusterConfig {
            duration: units::secs(secs),
            warmup: units::secs((secs / 10).max(2)),
            cooldown: units::secs((secs / 10).max(1)),
            // Near the paper's 90:10 mix: the serialized receivers
            // (EunomiaKV's Alg. 5, the sequencer systems') sustain a few
            // thousand applies/s per DC — an update-heavy mix saturates
            // them with or without faults, which would drown the fault
            // signal in a pure overload signal.
            workload: WorkloadConfig {
                keys: 300,
                read_pct: 85,
                value_size: 16,
                power_law: false,
                ..WorkloadConfig::default()
            },
            apply_log: true,
            track_staleness: true,
            ..ClusterConfig::default()
        }
    }

    /// `partitioned-3dc`: the paper's 3-DC deployment with dc0 and dc1
    /// partitioned from a third into three fifths of the run. During the
    /// window both datacenters keep serving local clients (the
    /// availability geo-replication buys); visibility between them stalls
    /// and staleness exposure spikes, then the backlog drains after the
    /// heal. `secs` is the run length; the window scales with it.
    pub fn partitioned_three_dc(secs: u64) -> Scenario {
        let d = units::secs(secs);
        let cfg = ClusterConfig {
            faults: vec![FaultEvent::Partition {
                a: 0,
                b: 1,
                from: d / 3,
                to: d * 3 / 5,
            }],
            ..Scenario::fault_base(secs)
        };
        Scenario {
            name: "partitioned-3dc".into(),
            cfg,
        }
    }

    /// `gray-wan`: the paper's 3-DC deployment where both WAN links into
    /// dc2 turn gray (15% per-message loss surfacing as 120 ms RTO
    /// retransmissions, plus 20 ms latency inflation) for the middle half
    /// of the run — the classic partially-degraded-but-not-partitioned
    /// failure that availability headlines gloss over.
    pub fn gray_wan(secs: u64) -> Scenario {
        let d = units::secs(secs);
        let (from, to) = (d / 4, d * 3 / 4);
        let gray = |from_dc: usize, to_dc: usize| FaultEvent::GrayLink {
            from_dc,
            to_dc,
            from,
            to,
            loss: 0.15,
            extra_oneway: units::ms(20),
            rto: units::ms(120),
        };
        let cfg = ClusterConfig {
            faults: vec![gray(0, 2), gray(2, 0), gray(1, 2), gray(2, 1)],
            ..Scenario::fault_base(secs)
        };
        Scenario {
            name: "gray-wan".into(),
            cfg,
        }
    }

    /// `hub-and-spoke`: five datacenters where dc0 is the hub and
    /// spoke↔spoke RTTs price the detour through it. One-way overrides
    /// make every spoke's uplink slow (75% of the link RTT spent
    /// spoke→hub, 25% hub→spoke) — the asymmetry real access networks
    /// have and symmetric RTT matrices cannot express. Mid-run, spoke
    /// dc3 is partitioned from the hub and heals.
    pub fn hub_and_spoke(secs: u64) -> Scenario {
        let d = units::secs(secs);
        let n = 5;
        let hub_rtt = |i: usize| units::ms(60 + 20 * (i as u64 - 1));
        let rtts: Vec<Vec<u64>> = (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| match (a, b) {
                        _ if a == b => 0,
                        (0, i) | (i, 0) => hub_rtt(i),
                        (i, j) => hub_rtt(i) + hub_rtt(j),
                    })
                    .collect()
            })
            .collect();
        let mut faults = Vec::new();
        for spoke in 1..n {
            let rtt = hub_rtt(spoke);
            faults.push(FaultEvent::OnewayOverride {
                from_dc: spoke,
                to_dc: 0,
                from: 0,
                to: d,
                oneway: rtt * 3 / 4,
            });
            faults.push(FaultEvent::OnewayOverride {
                from_dc: 0,
                to_dc: spoke,
                from: 0,
                to: d,
                oneway: rtt / 4,
            });
        }
        faults.push(FaultEvent::Partition {
            a: 0,
            b: 3,
            from: d * 2 / 5,
            to: d * 3 / 5,
        });
        let cfg = ClusterConfig {
            n_dcs: n,
            rtt_matrix: Some(rtts),
            partitions_per_dc: 4,
            clients_per_dc: 3,
            faults,
            ..Scenario::fault_base(secs)
        };
        Scenario {
            name: "hub-and-spoke".into(),
            cfg,
        }
    }

    /// `flapping-links`: the paper's 3-DC deployment where the dc0–dc1
    /// link flaps — three partition/heal cycles, each cutting the pair
    /// for a tenth of the run with a recovery gap of the same length in
    /// between. Flapping is the failure shape retry storms and BGP
    /// dampening are built around: the backlog never fully drains before
    /// the next cut, so visibility saw-tooths instead of spiking once.
    /// The last heal lands at 70% of the run, leaving room to assert
    /// convergence like every other preset.
    pub fn flapping_links(secs: u64) -> Scenario {
        let d = units::secs(secs);
        let faults = (0..3)
            .map(|cycle| FaultEvent::Partition {
                a: 0,
                b: 1,
                from: d * (2 * cycle + 2) / 10,
                to: d * (2 * cycle + 3) / 10,
            })
            .collect();
        let cfg = ClusterConfig {
            faults,
            ..Scenario::fault_base(secs)
        };
        Scenario {
            name: "flapping-links".into(),
            cfg,
        }
    }

    /// `asymmetric-5dc`: the wide 5-DC topology with every fault class at
    /// once — permanently asymmetric one-way latencies on two links, a
    /// gray window on the dc0↔dc2 link, a dc1–dc2 partition that heals,
    /// and a paused (gray-failed) partition server in dc2. The
    /// kitchen-sink preset for "does the whole zoo still converge".
    pub fn asymmetric_five_dc(secs: u64) -> Scenario {
        let d = units::secs(secs);
        let base = Scenario::wide_five_dc();
        let mut faults = vec![
            // dc0->dc4: 130 of the 200 ms RTT; dc4->dc0 gets the fast 70.
            FaultEvent::OnewayOverride {
                from_dc: 0,
                to_dc: 4,
                from: 0,
                to: d,
                oneway: units::ms(130),
            },
            FaultEvent::OnewayOverride {
                from_dc: 4,
                to_dc: 0,
                from: 0,
                to: d,
                oneway: units::ms(70),
            },
            // dc1<->dc3 (130 ms RTT): 90 up, 40 down.
            FaultEvent::OnewayOverride {
                from_dc: 1,
                to_dc: 3,
                from: 0,
                to: d,
                oneway: units::ms(90),
            },
            FaultEvent::OnewayOverride {
                from_dc: 3,
                to_dc: 1,
                from: 0,
                to: d,
                oneway: units::ms(40),
            },
            FaultEvent::Partition {
                a: 1,
                b: 2,
                from: d / 3,
                to: d / 2,
            },
            FaultEvent::PausePartition {
                dc: 2,
                partition: 0,
                from: d * 3 / 5,
                to: d * 7 / 10,
            },
        ];
        for (a, b) in [(0, 2), (2, 0)] {
            faults.push(FaultEvent::GrayLink {
                from_dc: a,
                to_dc: b,
                from: d / 4,
                to: d / 2,
                loss: 0.2,
                extra_oneway: units::ms(15),
                rto: units::ms(100),
            });
        }
        let cfg = ClusterConfig {
            n_dcs: base.cfg.n_dcs,
            rtt_matrix: base.cfg.rtt_matrix.clone(),
            partitions_per_dc: 4,
            clients_per_dc: 3,
            faults,
            ..Scenario::fault_base(secs)
        };
        Scenario {
            name: "asymmetric-5dc".into(),
            cfg,
        }
    }

    /// The five fault presets at `secs` simulated seconds each — what the
    /// `fig_faults` harness and the CI fault matrix sweep.
    pub fn fault_presets(secs: u64) -> Vec<Scenario> {
        vec![
            Scenario::partitioned_three_dc(secs),
            Scenario::flapping_links(secs),
            Scenario::gray_wan(secs),
            Scenario::hub_and_spoke(secs),
            Scenario::asymmetric_five_dc(secs),
        ]
    }

    /// Shared base for the open-loop presets: the paper's 3-DC
    /// deployment with the given per-client arrival process and a
    /// 64-op backlog per client.
    fn open_loop_base(name: &str, arrivals: ArrivalSpec) -> Scenario {
        let cfg = ClusterConfig {
            open_loop: Some(OpenLoopConfig {
                arrivals,
                queue_limit: 64,
            }),
            ..ClusterConfig::default()
        };
        Scenario {
            name: name.into(),
            cfg,
        }
    }

    /// Open-loop paper 3-DC at a steady Poisson `rate_hz` per client —
    /// the building block `fig_load` sweeps to find each system's
    /// saturation knee.
    pub fn open_loop_poisson(rate_hz: f64) -> Scenario {
        let mut s = Scenario::open_loop_base("open-loop-3dc", ArrivalSpec::Poisson { rate_hz });
        s.name = format!("open-loop-3dc-{}hz", rate_hz as u64);
        s
    }

    /// Open-loop paper 3-DC under a bursty MMPP: 100 Hz background with
    /// 1 kHz bursts (mean dwell 500 ms low / 200 ms high) — the
    /// production shape where tail latency diverges from the mean long
    /// before throughput saturates.
    pub fn open_loop_bursty() -> Scenario {
        Scenario::open_loop_base(
            "open-loop-bursty",
            ArrivalSpec::Mmpp {
                low_hz: 100.0,
                high_hz: 1000.0,
                dwell_low: units::ms(500),
                dwell_high: units::ms(200),
            },
        )
    }

    /// Open-loop paper 3-DC on a diurnal sine: 300 Hz mean per client,
    /// 4:1 peak-to-trough, 10 s period (a compressed day — several
    /// cycles fit in the default 60 s run).
    pub fn open_loop_diurnal() -> Scenario {
        Scenario::open_loop_base(
            "open-loop-diurnal",
            ArrivalSpec::Diurnal {
                mean_hz: 300.0,
                peak_to_trough: 4.0,
                period: units::secs(10),
            },
        )
    }

    /// Open-loop paper 3-DC hit by a flash crowd: 200 Hz base, 6× surge
    /// ramping up over 2 s at t=20 s, held for 10 s — paired with a
    /// shifting-hotspot workload (the "everyone loads the same page"
    /// scenario). Timed for the default 60 s duration.
    pub fn open_loop_flash() -> Scenario {
        let mut s = Scenario::open_loop_base(
            "open-loop-flash",
            ArrivalSpec::FlashCrowd {
                base_hz: 200.0,
                multiplier: 6.0,
                at: units::secs(20),
                ramp: units::secs(2),
                hold: units::secs(10),
            },
        );
        s.cfg.workload.hot_shift = Some(HotShift {
            hot_fraction: 0.1,
            hot_access: 0.9,
            shift_every: 1000,
        });
        s
    }

    /// Open-loop paper 3-DC replaying the committed sample diurnal
    /// trace (12 s cycle, 20–200 Hz) — the trace-driven path that keeps
    /// replays reproducible without RNG draws.
    pub fn open_loop_trace() -> Scenario {
        Scenario::open_loop_base(
            "open-loop-trace",
            ArrivalSpec::Trace(CompactTrace::sample_diurnal()),
        )
    }

    /// The five open-loop presets — one per arrival-process family.
    pub fn open_loop_presets() -> Vec<Scenario> {
        vec![
            Scenario::open_loop_poisson(400.0),
            Scenario::open_loop_bursty(),
            Scenario::open_loop_diurnal(),
            Scenario::open_loop_flash(),
            Scenario::open_loop_trace(),
        ]
    }

    /// Every named preset (with representative parameters) — what
    /// `--list-scenarios` tooling and docs enumerate, and the lookup
    /// table behind [`Scenario::by_name`].
    pub fn presets() -> Vec<Scenario> {
        let mut out = vec![
            Scenario::paper_three_dc(),
            Scenario::small_test(),
            Scenario::wide_five_dc(),
            Scenario::straggler(units::ms(100)),
            Scenario::partial_replication(2).expect("rf 2 of 3 DCs is valid"),
            Scenario::massive(),
            Scenario::huge_sixteen_dc(),
            Scenario::huge_twenty_four_dc(),
        ];
        out.extend(Scenario::fault_presets(30));
        out.extend(Scenario::open_loop_presets());
        out
    }

    /// Looks a preset up by its name (as printed by `--list-scenarios`),
    /// case-insensitively. Parameterized presets resolve at their
    /// [`presets`](Scenario::presets) defaults.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::presets()
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// The scenario's name (used in tables and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying validated configuration.
    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Renames the scenario.
    pub fn named(mut self, name: impl Into<String>) -> Scenario {
        self.name = name.into();
        self
    }

    /// Re-times the run: `secs` simulated seconds with the 10%
    /// warm-up/cool-down trims every harness uses (mirroring the paper's
    /// discarded first/last minute).
    pub fn seconds(self, secs: u64) -> Scenario {
        self.with(|c| {
            c.duration = units::secs(secs);
            c.warmup = units::secs((secs / 10).max(2));
            c.cooldown = units::secs((secs / 10).max(1));
        })
    }

    /// Sets the deterministic seed.
    pub fn seed(self, seed: u64) -> Scenario {
        self.with(|c| c.seed = seed)
    }

    /// Sets the workload.
    pub fn workload(self, w: WorkloadConfig) -> Scenario {
        self.with(|c| c.workload = w)
    }

    /// Derives a variant, revalidating the result.
    ///
    /// # Panics
    /// Panics if the tweak breaks an invariant — sweeps in harnesses want
    /// loud, immediate failure. Use [`try_with`](Self::try_with) to
    /// handle the error instead.
    pub fn with(self, f: impl FnOnce(&mut ClusterConfig)) -> Scenario {
        match self.try_with(f) {
            Ok(s) => s,
            Err((name, e)) => panic!("scenario {name:?}: invalid tweak: {e}"),
        }
    }

    /// Derives a variant; on an invalid result returns the scenario name
    /// and the validation error.
    pub fn try_with(
        mut self,
        f: impl FnOnce(&mut ClusterConfig),
    ) -> Result<Scenario, (String, ConfigError)> {
        f(&mut self.cfg);
        match self.cfg.validate() {
            Ok(()) => Ok(self),
            Err(e) => Err((self.name, e)),
        }
    }
}

/// One completed cell of a sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The system that ran.
    pub system: SystemId,
    /// The scenario name it ran under.
    pub scenario: String,
    /// The run's report.
    pub report: RunReport,
}

/// Runs a `[system x scenario]` grid through [`run`].
///
/// ```no_run
/// use eunomia_geo::{Scenario, Sweep, SystemId};
/// let results = Sweep::new()
///     .systems([SystemId::Eventual, SystemId::EunomiaKv])
///     .scenario(Scenario::small_test())
///     .run();
/// println!("{}", results.throughput_table(Some(SystemId::Eventual)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    systems: Vec<SystemId>,
    scenarios: Vec<Scenario>,
}

impl Sweep {
    /// An empty sweep; add systems and scenarios, then [`run`](Self::run).
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Replaces the system list.
    pub fn systems(mut self, systems: impl IntoIterator<Item = SystemId>) -> Sweep {
        self.systems = systems.into_iter().collect();
        self
    }

    /// Appends scenarios.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Sweep {
        self.scenarios.extend(scenarios);
        self
    }

    /// Appends one scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Sweep {
        self.scenarios.push(scenario);
        self
    }

    /// Runs the full grid (scenario-major order). Systems default to
    /// [`SystemId::all`] when none were given.
    ///
    /// # Panics
    /// Panics if the sweep has no scenarios, if two scenarios share a
    /// name (results are keyed by name — rename variants with
    /// [`Scenario::named`]), or if a baseline system has no registered
    /// runner (see [`run`]).
    pub fn run(&self) -> SweepResults {
        assert!(!self.scenarios.is_empty(), "sweep has no scenarios");
        for (i, a) in self.scenarios.iter().enumerate() {
            for b in &self.scenarios[i + 1..] {
                assert!(
                    a.name() != b.name(),
                    "two sweep scenarios share the name {:?}: results are keyed by \
                     name, so the later one would be unreachable — rename it with \
                     Scenario::named",
                    a.name()
                );
            }
        }
        let systems: Vec<SystemId> = if self.systems.is_empty() {
            SystemId::all().to_vec()
        } else {
            self.systems.clone()
        };
        let mut cells = Vec::with_capacity(systems.len() * self.scenarios.len());
        for scenario in &self.scenarios {
            for &system in &systems {
                cells.push(SweepCell {
                    system,
                    scenario: scenario.name().to_string(),
                    report: run(system, scenario),
                });
            }
        }
        SweepResults { cells }
    }
}

/// The collected grid of reports from [`Sweep::run`].
#[derive(Clone, Debug)]
pub struct SweepResults {
    cells: Vec<SweepCell>,
}

impl SweepResults {
    /// All cells, in scenario-major run order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// The report for one grid cell.
    pub fn get(&self, system: SystemId, scenario: &str) -> Option<&RunReport> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.scenario == scenario)
            .map(|c| &c.report)
    }

    /// Distinct systems, in run order.
    pub fn systems(&self) -> Vec<SystemId> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.system) {
                out.push(c.system);
            }
        }
        out
    }

    /// Distinct scenario names, in run order.
    pub fn scenarios(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.iter().any(|s| s == &c.scenario) {
                out.push(c.scenario.clone());
            }
        }
        out
    }

    /// Throughput of `system` under `scenario` relative to `baseline`
    /// under the same scenario, as a signed fraction (-0.05 = 5% below).
    pub fn delta_vs(&self, system: SystemId, baseline: SystemId, scenario: &str) -> Option<f64> {
        let s = self.get(system, scenario)?.throughput;
        let b = self.get(baseline, scenario)?.throughput;
        if b <= 0.0 {
            return None;
        }
        Some(s / b - 1.0)
    }

    /// The shared throughput table: one row per scenario, one column per
    /// system (ops/s). With a `baseline`, every other system also shows
    /// its signed percentage delta against it.
    pub fn throughput_table(&self, baseline: Option<SystemId>) -> String {
        let systems = self.systems();
        let mut headers: Vec<String> = vec!["scenario".to_string()];
        headers.extend(systems.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .scenarios()
            .iter()
            .map(|sc| {
                let mut row = vec![sc.clone()];
                for &sys in &systems {
                    let cell = match self.get(sys, sc) {
                        None => "-".to_string(),
                        Some(r) => match baseline {
                            Some(b) if b != sys => match self.delta_vs(sys, b, sc) {
                                Some(d) => {
                                    format!("{:.0} ({:+.1}%)", r.throughput, d * 100.0)
                                }
                                None => format!("{:.0}", r.throughput),
                            },
                            _ => format!("{:.0}", r.throughput),
                        },
                    };
                    row.push(cell);
                }
                row
            })
            .collect();
        format_table(&header_refs, &rows)
    }

    /// The shared comparison table for a single scenario: one row per
    /// system with throughput, delta vs `baseline`, client latency and
    /// remote-visibility p90 for the `(origin, dest)` DC pair.
    pub fn summary_table(&self, baseline: SystemId, origin: u16, dest: u16) -> String {
        let scenario = self.scenarios().first().cloned().unwrap_or_default();
        let base = self.get(baseline, &scenario).map(|r| r.throughput);
        let rows: Vec<Vec<String>> = self
            .systems()
            .iter()
            .map(|&sys| {
                let Some(r) = self.get(sys, &scenario) else {
                    return vec![
                        sys.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ];
                };
                let delta = match base {
                    Some(b) if b > 0.0 && sys != baseline => {
                        format!("{:+.1}%", (r.throughput / b - 1.0) * 100.0)
                    }
                    _ => "-".to_string(),
                };
                let vis = if sys.is_causal() {
                    r.visibility_percentile_ms(origin, dest, 90.0)
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".into())
                } else {
                    "n/a (no causality)".to_string()
                };
                vec![
                    sys.to_string(),
                    format!("{:.0}", r.throughput),
                    delta,
                    format!("{:.2}", r.p99_latency_ms),
                    vis,
                ]
            })
            .collect();
        format_table(
            &[
                "system",
                "ops/s",
                "vs baseline",
                "op p99 (ms)",
                &format!("vis p90 dc{origin}->dc{dest} (ms)"),
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_all_validate() {
        for preset in Scenario::presets() {
            assert!(
                preset.cfg().validate().is_ok(),
                "preset {} invalid",
                preset.name()
            );
        }
    }

    #[test]
    fn fault_presets_scale_windows_with_duration() {
        for secs in [10, 30] {
            let d = units::secs(secs);
            for preset in Scenario::fault_presets(secs) {
                assert_eq!(preset.cfg().duration, d, "{}", preset.name());
                assert!(!preset.cfg().faults.is_empty(), "{}", preset.name());
                assert!(preset.cfg().apply_log && preset.cfg().track_staleness);
                for e in &preset.cfg().faults {
                    let (from, to) = e.window();
                    assert!(from < to && from < d, "{}: {e:?}", preset.name());
                }
                // Every preset's disruptions heal inside the run, so
                // convergence-after-heal is measurable.
                assert!(
                    crate::faults::last_heal(&preset.cfg().faults, d).is_some(),
                    "{} must heal before the run ends",
                    preset.name()
                );
            }
        }
    }

    #[test]
    fn by_name_resolves_presets_case_insensitively() {
        assert_eq!(Scenario::by_name("gray-wan").unwrap().name(), "gray-wan");
        assert_eq!(
            Scenario::by_name("PARTITIONED-3DC").unwrap().name(),
            "partitioned-3dc"
        );
        assert_eq!(Scenario::by_name("massive").unwrap().name(), "massive");
        assert!(Scenario::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn with_revalidates_and_panics_on_bad_tweaks() {
        let ok = Scenario::small_test().seconds(8).seed(9);
        assert_eq!(ok.cfg().seed, 9);
        assert_eq!(ok.cfg().duration, units::secs(8));
        let err = Scenario::small_test()
            .try_with(|c| c.replicas = 0)
            .unwrap_err();
        assert_eq!(err.0, "small-test");
    }

    #[test]
    #[should_panic(expected = "share the name")]
    fn sweep_rejects_duplicate_scenario_names() {
        Sweep::new()
            .systems([SystemId::Eventual])
            .scenario(Scenario::small_test())
            .scenario(Scenario::small_test().seed(7))
            .run();
    }

    #[test]
    fn parameterized_preset_validates() {
        let err = Scenario::partial_replication(0).unwrap_err();
        assert!(
            matches!(err, ConfigError::ReplicationFactor { rf: 0, .. }),
            "{err}"
        );
        let err = Scenario::partial_replication(4).unwrap_err();
        assert!(
            matches!(err, ConfigError::ReplicationFactor { rf: 4, .. }),
            "{err}"
        );
        assert!(Scenario::partial_replication(2).is_ok());
    }

    #[test]
    #[should_panic(expected = "never fire")]
    fn retiming_a_straggler_scenario_below_its_window_fails_loudly() {
        // .seconds(10) shrinks the run below the [20s, 40s) window the
        // preset computed from the 60 s default — must not silently
        // measure a fault-free run under a fault-named label.
        Scenario::straggler(units::ms(100)).seconds(10);
    }

    #[test]
    fn sweep_grid_runs_native_systems() {
        let results = Sweep::new()
            .systems([SystemId::Eventual, SystemId::EunomiaKv])
            .scenario(Scenario::small_test())
            .scenario(Scenario::small_test().named("variant").seed(7))
            .run();
        assert_eq!(results.cells().len(), 4);
        assert_eq!(results.systems().len(), 2);
        assert_eq!(results.scenarios(), vec!["small-test", "variant"]);
        assert!(results.get(SystemId::EunomiaKv, "variant").is_some());
        let table = results.throughput_table(Some(SystemId::Eventual));
        assert!(table.contains("EunomiaKV"), "{table}");
        assert!(table.contains('%'), "{table}");
        let summary = results.summary_table(SystemId::Eventual, 0, 1);
        assert!(summary.contains("n/a (no causality)"), "{summary}");
    }
}
