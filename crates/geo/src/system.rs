//! The unified system registry: one [`SystemId`] for all six systems the
//! paper evaluates (§7.2) and one [`run`] entry point.
//!
//! `eunomia-geo` natively assembles the two systems built in this crate
//! (Eventual and EunomiaKV). The four baselines live in
//! `eunomia-baselines`, which this crate must not depend on — instead,
//! baseline runners are *registered* into a process-wide table via
//! [`register_runner`]. `eunomia_baselines::install()` performs the
//! registration; the `eunomia` facade and the `eunomia-bench` harness
//! call it automatically, so ordinary users never see the hook.

use crate::cluster::build;
use crate::config::ClusterConfig;
use crate::harness::{make_report, RunReport};
use crate::scenario::Scenario;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{LazyLock, Mutex};

/// Identifies one of the six systems of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// Eventually consistent multi-cluster store: remote updates apply on
    /// arrival, no causality metadata. The paper's normalization baseline.
    Eventual,
    /// EunomiaKV: the paper's system (§3–§5).
    EunomiaKv,
    /// GentleRain: global stabilization with a single scalar timestamp
    /// (Du et al., SoCC '14).
    GentleRain,
    /// Cure: global stabilization with a vector clock (Akkoorath et al.,
    /// ICDCS '16).
    Cure,
    /// S-Seq: a synchronous per-datacenter sequencer in the client
    /// critical path (as in SwiftCloud/ChainReaction).
    SSeq,
    /// A-Seq: the paper's deliberately bogus asynchronous sequencer —
    /// same work off the critical path, no causality (§2).
    ASeq,
}

impl SystemId {
    /// Every system, in the paper's presentation order.
    pub fn all() -> [SystemId; 6] {
        [
            SystemId::Eventual,
            SystemId::EunomiaKv,
            SystemId::GentleRain,
            SystemId::Cure,
            SystemId::SSeq,
            SystemId::ASeq,
        ]
    }

    /// Human-readable label, as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemId::Eventual => "Eventual",
            SystemId::EunomiaKv => "EunomiaKV",
            SystemId::GentleRain => "GentleRain",
            SystemId::Cure => "Cure",
            SystemId::SSeq => "S-Seq",
            SystemId::ASeq => "A-Seq",
        }
    }

    /// Whether `eunomia-geo` itself can assemble this system (the rest
    /// come from registered runners).
    pub fn is_native(self) -> bool {
        matches!(self, SystemId::Eventual | SystemId::EunomiaKv)
    }

    /// Whether the system tracks causality (Eventual and A-Seq do not —
    /// their visibility numbers measure raw arrival, not causal safety).
    pub fn is_causal(self) -> bool {
        !matches!(self, SystemId::Eventual | SystemId::ASeq)
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from parsing a [`SystemId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSystemIdError {
    input: String,
}

impl fmt::Display for ParseSystemIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown system {:?}; expected one of: {}",
            self.input,
            SystemId::all().map(|s| s.label()).join(", ")
        )
    }
}

impl std::error::Error for ParseSystemIdError {}

impl FromStr for SystemId {
    type Err = ParseSystemIdError;

    /// Case-insensitive; dashes/underscores are ignored, and common
    /// aliases are accepted (`eunomia`, `gr`, `sseq`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        Ok(match norm.as_str() {
            "eventual" | "ev" => SystemId::Eventual,
            "eunomiakv" | "eunomia" | "eu" => SystemId::EunomiaKv,
            "gentlerain" | "gr" => SystemId::GentleRain,
            "cure" => SystemId::Cure,
            "sseq" => SystemId::SSeq,
            "aseq" => SystemId::ASeq,
            _ => {
                return Err(ParseSystemIdError {
                    input: s.to_string(),
                })
            }
        })
    }
}

/// A function that builds, runs and reports one system under a validated
/// configuration. Registered by `eunomia-baselines` for the four
/// non-native systems.
pub type SystemRunner = fn(SystemId, &ClusterConfig) -> RunReport;

static RUNNERS: LazyLock<Mutex<HashMap<SystemId, SystemRunner>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Registers the runner for a non-native system. Registering a system
/// twice replaces the runner (harmless: `eunomia_baselines::install()`
/// is idempotent). Native systems cannot be overridden.
///
/// # Panics
/// Panics if `id` is a native system.
pub fn register_runner(id: SystemId, runner: SystemRunner) {
    assert!(
        !id.is_native(),
        "{id} is assembled by eunomia-geo itself and cannot be overridden"
    );
    RUNNERS.lock().unwrap().insert(id, runner);
}

fn runner_for(id: SystemId) -> Option<SystemRunner> {
    RUNNERS.lock().unwrap().get(&id).copied()
}

/// Builds, runs and reports `id` under `scenario` — the single entry
/// point every harness, example and test goes through.
///
/// # Panics
/// Panics if `id` is a baseline system and no runner has been registered.
/// Call `eunomia_baselines::install()` first, or use the `eunomia`
/// facade's `run`, which installs them automatically.
pub fn run(id: SystemId, scenario: &Scenario) -> RunReport {
    let cfg = scenario.cfg().clone();
    if id.is_native() {
        let mut cluster = build(id, cfg);
        let duration = cluster.cfg.duration;
        cluster.sim.run_until(duration);
        let engine = cluster.sim.stats();
        return make_report(id.label(), &cluster.metrics, &cluster.cfg, engine);
    }
    let runner = runner_for(id).unwrap_or_else(|| {
        panic!(
            "no runner registered for {id}: call eunomia_baselines::install() \
             (the eunomia facade's run() and eunomia_bench::BenchArgs::parse() \
             do this automatically)"
        )
    });
    runner(id, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn display_from_str_round_trips_over_all() {
        for id in SystemId::all() {
            assert_eq!(id.to_string().parse::<SystemId>().unwrap(), id);
        }
    }

    #[test]
    fn parsing_accepts_aliases_and_rejects_garbage() {
        assert_eq!("eunomia".parse::<SystemId>().unwrap(), SystemId::EunomiaKv);
        assert_eq!("s-seq".parse::<SystemId>().unwrap(), SystemId::SSeq);
        assert_eq!("S_SEQ".parse::<SystemId>().unwrap(), SystemId::SSeq);
        assert_eq!(
            "GENTLERAIN".parse::<SystemId>().unwrap(),
            SystemId::GentleRain
        );
        let err = "riak".parse::<SystemId>().unwrap_err();
        assert!(err.to_string().contains("riak"));
    }

    #[test]
    fn native_systems_run_without_any_registration() {
        let sc = Scenario::small_test();
        for id in [SystemId::Eventual, SystemId::EunomiaKv] {
            let report = run(id, &sc);
            assert!(report.total_ops > 100, "{id}: {}", report.total_ops);
            assert_eq!(report.system, id.label());
        }
    }

    #[test]
    #[should_panic(expected = "eunomia_baselines::install()")]
    fn unregistered_baseline_panics_with_guidance() {
        // The registry is process-wide; use a runner no test registers.
        // eunomia-geo's own test binary never links eunomia-baselines,
        // so nothing can have registered Cure here.
        run(SystemId::Cure, &Scenario::small_test());
    }

    #[test]
    #[should_panic(expected = "cannot be overridden")]
    fn native_systems_cannot_be_overridden() {
        fn bogus(_: SystemId, _: &ClusterConfig) -> RunReport {
            unreachable!()
        }
        register_runner(SystemId::EunomiaKv, bogus);
    }
}
