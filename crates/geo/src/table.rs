//! Plain-text aligned table rendering shared by the sweep results, the
//! figure harnesses and the examples.

/// Renders an aligned ASCII table (headers, separator, rows).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            } else {
                widths.push(cell.len());
            }
        }
    }
    let mut out = String::new();
    let push_line = |cells: &[String], out: &mut String| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let width = widths.get(i).copied().unwrap_or(c.len());
            line.push_str(&format!("{c:<width$}"));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    };
    push_line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    push_line(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &mut out,
    );
    for row in rows {
        push_line(row, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::format_table;

    #[test]
    fn aligns_columns_and_trims_trailing_space() {
        let out = format_table(
            &["a", "long_header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer_cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].ends_with('1'));
        for l in &lines {
            assert_eq!(*l, l.trim_end());
        }
    }
}
