//! Receiver simulation actor (Algorithm 5).
//!
//! One per datacenter. Maintains a queue of pending remote updates per
//! origin datacenter plus `SiteTime`, the vector of origin timestamps
//! already applied locally. The faithful mode keeps **one APPLY in
//! flight** — `FLUSH` sends an apply, awaits the `ok`, and restarts — as
//! published; the `pipelined_receiver` extension allows one in-flight
//! apply per origin queue (ablated in `eunomia-bench`).
//!
//! Robustness past the paper: stable batches are chained by
//! (`prev_stable`, `stable`]; a batch arriving ahead of its predecessor
//! (possible only across a leader fail-over, where the sender changes) is
//! stashed until the chain closes, and already-covered operations are
//! dropped as duplicates.

use crate::config::ClusterConfig;
use crate::metrics::GeoMetrics;
use crate::msg::{Msg, StableOp};
use crate::registry::SharedRegistry;
use eunomia_core::ids::DcId;
use eunomia_core::time::{Timestamp, VectorTime};
use eunomia_kv::UpdateId;
use eunomia_sim::{Context, Process, ProcessId};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

const TIMER_RHO: u64 = 4;

/// The receiver actor for one datacenter.
pub struct ReceiverProc {
    dc: usize,
    cfg: Rc<ClusterConfig>,
    reg: SharedRegistry,
    #[allow(dead_code)]
    metrics: GeoMetrics,
    /// Pending updates per origin DC, in stable order (`Queue_m`).
    queues: Vec<VecDeque<StableOp>>,
    /// Latest origin timestamp applied per origin DC (`SiteTime_m`).
    site_time: VectorTime,
    /// Stable time covered (enqueued) per origin DC.
    covered: Vec<Timestamp>,
    /// Out-of-order stable batches per origin, keyed by their
    /// `prev_stable` chain link.
    stashed: Vec<BTreeMap<Timestamp, (Timestamp, Vec<StableOp>)>>,
    /// In-flight APPLY per origin (faithful mode uses at most one entry
    /// across all origins).
    in_flight: Vec<Option<UpdateId>>,
}

impl ReceiverProc {
    /// Creates the receiver of datacenter `dc`.
    pub fn new(
        dc: usize,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        let n = cfg.n_dcs;
        ReceiverProc {
            dc,
            cfg,
            reg,
            metrics,
            queues: vec![VecDeque::new(); n],
            site_time: VectorTime::new(n),
            covered: vec![Timestamp::ZERO; n],
            stashed: vec![BTreeMap::new(); n],
            in_flight: vec![None; n],
        }
    }

    fn any_in_flight(&self) -> bool {
        self.in_flight.iter().any(Option::is_some)
    }

    fn ingest(&mut self, origin: usize, prev: Timestamp, stable: Timestamp, ops: Vec<StableOp>) {
        if stable <= self.covered[origin] {
            return; // Entirely duplicate (re-shipped after fail-over).
        }
        if prev > self.covered[origin] {
            // Chain gap: the predecessor batch is still in flight.
            self.stashed[origin].insert(prev, (stable, ops));
            return;
        }
        for op in ops {
            if op.id.ts > self.covered[origin] {
                self.queues[origin].push_back(op);
            }
        }
        self.covered[origin] = stable;
        // Close any chain links that were waiting on this one.
        while let Some((&prev, _)) = self.stashed[origin].first_key_value() {
            if prev > self.covered[origin] {
                break;
            }
            let (stable, ops) = self.stashed[origin].remove(&prev).expect("key just seen");
            if stable <= self.covered[origin] {
                continue;
            }
            for op in ops {
                if op.id.ts > self.covered[origin] {
                    self.queues[origin].push_back(op);
                }
            }
            self.covered[origin] = stable;
        }
    }

    /// The dependency check of Alg. 5 l. 12: every entry of the update's
    /// vector except the local DC and the origin must be covered by
    /// `SiteTime`.
    fn deps_satisfied(&self, origin: usize, op: &StableOp) -> bool {
        self.site_time
            .dominates_except(&op.vts, &[DcId(self.dc as u16), DcId(origin as u16)])
    }

    /// Whether this datacenter stores the key (always true under full
    /// replication).
    fn stored_here(&self, key: eunomia_kv::Key) -> bool {
        match self.cfg.replication_factor {
            None => true,
            Some(rf) => eunomia_kv::ring::replicates(key, self.dc, self.cfg.n_dcs, rf),
        }
    }

    /// `FLUSH` (Alg. 5): dispatch applies for queue heads whose
    /// dependencies are satisfied, honouring the in-flight discipline.
    /// Under partial replication, updates to keys this datacenter does not
    /// store complete as *metadata-only* applies: `SiteTime` advances (the
    /// Practi-style imprecise knowledge) without any data round trip.
    fn flush(&mut self, ctx: &mut Context<'_, Msg>) {
        loop {
            if !self.cfg.pipelined_receiver && self.any_in_flight() {
                return;
            }
            let mut dispatched = false;
            for origin in 0..self.cfg.n_dcs {
                if origin == self.dc || self.in_flight[origin].is_some() {
                    continue;
                }
                let Some(head) = self.queues[origin].front() else {
                    continue;
                };
                if !self.deps_satisfied(origin, head) {
                    continue;
                }
                if !self.stored_here(head.id.key) {
                    ctx.consume(self.cfg.costs.receiver_op_ns);
                    let op = self.queues[origin].pop_front().expect("head just seen");
                    self.site_time
                        .set(DcId(origin as u16), op.vts.get(DcId(origin as u16)));
                    dispatched = true;
                    continue;
                }
                ctx.consume(self.cfg.costs.receiver_op_ns);
                self.in_flight[origin] = Some(head.id);
                let target = self.reg.borrow().partition(self.dc, head.partition.index());
                ctx.send(
                    target,
                    Msg::Apply {
                        origin: DcId(origin as u16),
                        id: head.id,
                    },
                );
                dispatched = true;
                if !self.cfg.pipelined_receiver {
                    return;
                }
            }
            if !dispatched {
                return;
            }
        }
    }
}

impl Process<Msg> for ReceiverProc {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(self.cfg.rho, TIMER_RHO);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
        match msg {
            Msg::StableOps {
                origin,
                prev_stable,
                stable,
                ops,
            } => {
                ctx.consume(
                    self.cfg.costs.batch_overhead_ns
                        + self.cfg.costs.receiver_op_ns * ops.len() as u64,
                );
                self.ingest(origin.index(), prev_stable, stable, ops);
                self.flush(ctx);
            }
            Msg::ApplyOk { origin, id } => {
                ctx.consume(self.cfg.costs.receiver_op_ns);
                let o = origin.index();
                debug_assert_eq!(self.in_flight[o], Some(id), "ack for unexpected apply");
                let op = self.queues[o].pop_front().expect("acked op must be queued");
                debug_assert_eq!(op.id, id);
                // SiteTime_m[k] <- u_j.vts[k] (Alg. 5 l. 16).
                self.site_time.set(origin, op.vts.get(origin));
                self.in_flight[o] = None;
                self.flush(ctx);
            }
            other => {
                debug_assert!(false, "receiver received unexpected message: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_RHO);
        self.flush(ctx);
        ctx.set_timer(self.cfg.rho, TIMER_RHO);
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use std::hash::Hash as _;
        h.write_usize(self.dc);
        self.queues.hash(&mut h);
        self.site_time.hash(&mut h);
        self.covered.hash(&mut h);
        self.stashed.hash(&mut h);
        self.in_flight.hash(&mut h);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::registry;
    use eunomia_core::ids::PartitionId;

    fn receiver() -> ReceiverProc {
        let cfg = Rc::new(ClusterConfig::small_test());
        ReceiverProc::new(0, cfg, registry::shared(), GeoMetrics::new(2))
    }

    fn op(ts: u64) -> StableOp {
        StableOp {
            partition: PartitionId(0),
            id: UpdateId {
                ts: Timestamp(ts),
                key: eunomia_kv::Key(ts),
            },
            vts: VectorTime::from_ticks(&[0, ts]),
        }
    }

    #[test]
    fn contiguous_batches_enqueue_in_order() {
        let mut r = receiver();
        r.ingest(1, Timestamp::ZERO, Timestamp(10), vec![op(5), op(10)]);
        r.ingest(1, Timestamp(10), Timestamp(20), vec![op(15), op(20)]);
        assert_eq!(r.queues[1].len(), 4);
        assert_eq!(r.covered[1], Timestamp(20));
        assert!(r.stashed[1].is_empty());
    }

    #[test]
    fn out_of_order_batch_is_stashed_until_chain_closes() {
        let mut r = receiver();
        // The (10, 20] batch races ahead of (0, 10] across a fail-over.
        r.ingest(1, Timestamp(10), Timestamp(20), vec![op(15), op(20)]);
        assert_eq!(r.queues[1].len(), 0, "gap: nothing enqueued yet");
        assert_eq!(r.stashed[1].len(), 1);
        r.ingest(1, Timestamp::ZERO, Timestamp(10), vec![op(5), op(10)]);
        // Chain closed: both batches land, in order.
        assert_eq!(r.queues[1].len(), 4);
        let ts: Vec<u64> = r.queues[1].iter().map(|o| o.id.ts.0).collect();
        assert_eq!(ts, vec![5, 10, 15, 20]);
        assert_eq!(r.covered[1], Timestamp(20));
        assert!(r.stashed[1].is_empty());
    }

    #[test]
    fn duplicate_batches_after_failover_are_dropped() {
        let mut r = receiver();
        r.ingest(1, Timestamp::ZERO, Timestamp(10), vec![op(5), op(10)]);
        // A new leader re-ships the same range.
        r.ingest(1, Timestamp::ZERO, Timestamp(10), vec![op(5), op(10)]);
        assert_eq!(r.queues[1].len(), 2, "duplicates must not enqueue");
        // Overlapping range: only the new suffix lands.
        r.ingest(1, Timestamp(5), Timestamp(15), vec![op(10), op(12)]);
        let ts: Vec<u64> = r.queues[1].iter().map(|o| o.id.ts.0).collect();
        assert_eq!(ts, vec![5, 10, 12]);
        assert_eq!(r.covered[1], Timestamp(15));
    }

    #[test]
    fn empty_stable_batches_advance_coverage() {
        let mut r = receiver();
        // Heartbeat-only stabilization rounds produce op-less batches.
        r.ingest(1, Timestamp::ZERO, Timestamp(100), vec![]);
        assert_eq!(r.covered[1], Timestamp(100));
        r.ingest(1, Timestamp(100), Timestamp(200), vec![op(150)]);
        assert_eq!(r.queues[1].len(), 1);
    }

    #[test]
    fn deps_check_skips_local_and_origin_entries() {
        let mut r = receiver();
        // Receiver of dc0 in a 2-DC world: only entries other than dc0
        // (local) and the origin are checked — with 2 DCs, always true.
        let o = StableOp {
            partition: PartitionId(0),
            id: UpdateId {
                ts: Timestamp(5),
                key: eunomia_kv::Key(5),
            },
            vts: VectorTime::from_ticks(&[999, 5]),
        };
        assert!(r.deps_satisfied(1, &o));
        // Three-DC receiver: a dependency on dc2 gates.
        let cfg = Rc::new(ClusterConfig::default());
        let mut r3 = ReceiverProc::new(0, cfg, registry::shared(), GeoMetrics::new(3));
        let o3 = StableOp {
            partition: PartitionId(0),
            id: UpdateId {
                ts: Timestamp(5),
                key: eunomia_kv::Key(5),
            },
            vts: VectorTime::from_ticks(&[0, 5, 40]),
        };
        assert!(!r3.deps_satisfied(1, &o3), "dc2 entry not covered yet");
        r3.site_time.set(eunomia_core::ids::DcId(2), Timestamp(40));
        assert!(r3.deps_satisfied(1, &o3));
        let _ = &mut r;
    }

    #[test]
    fn multiple_stashed_links_close_in_one_pass() {
        let mut r = receiver();
        r.ingest(1, Timestamp(20), Timestamp(30), vec![op(25)]);
        r.ingest(1, Timestamp(10), Timestamp(20), vec![op(15)]);
        assert_eq!(r.queues[1].len(), 0);
        assert_eq!(r.stashed[1].len(), 2);
        r.ingest(1, Timestamp::ZERO, Timestamp(10), vec![op(5)]);
        let ts: Vec<u64> = r.queues[1].iter().map(|o| o.id.ts.0).collect();
        assert_eq!(ts, vec![5, 15, 25]);
        assert_eq!(r.covered[1], Timestamp(30));
        assert!(r.stashed[1].is_empty());
    }
}
