//! Partition simulation actor.
//!
//! Wraps [`eunomia_kv::partition::PartitionState`] with the paper's
//! communication behaviour: client requests are served on the spot (no
//! synchronous coordination — the whole point of Eunomia); metadata is
//! batched to every Eunomia replica on a timer (§5) with the prefix
//! property maintained by [`ReplicatedSender`]; data is shipped to sibling
//! partitions immediately; remote updates are applied when the receiver
//! says so (EunomiaKV) or on arrival (Eventual).

use crate::config::{ClusterConfig, CostModel};
use crate::metrics::GeoMetrics;
use crate::msg::{BundleEntry, Msg, OpMeta};
use crate::registry::SharedRegistry;
use crate::system::SystemId;
use eunomia_collections::FxHashMap;
use eunomia_core::ids::{DcId, PartitionId, ReplicaId};
use eunomia_core::replica::ReplicatedSender;
use eunomia_core::time::Timestamp;
use eunomia_core::tree::FanInTree;
use eunomia_kv::partition::{ApplyOutcome, PartitionState};
use eunomia_sim::{Context, Process, ProcessId, SimTime};
use std::rc::Rc;

const TIMER_BATCH: u64 = 1;

/// The partition actor.
pub struct PartitionProc {
    state: PartitionState,
    dc: usize,
    pidx: usize,
    kind: SystemId,
    cfg: Rc<ClusterConfig>,
    costs: CostModel,
    reg: SharedRegistry,
    metrics: GeoMetrics,
    sender: ReplicatedSender<OpMeta>,
    replica_alive: Vec<bool>,
    /// Time of the oldest batch sent to each replica that is still
    /// unacknowledged (`None` when nothing is outstanding). Drives dead
    /// marking: a replica is suspected only if *we* sent something and it
    /// stayed silent — a partition that itself pauses (a straggler) must
    /// not poison its links.
    awaiting_since: Vec<Option<SimTime>>,
    /// When the flush timer last ran. If the gap between flushes exceeds
    /// the suspicion horizon, *we* were unresponsive (a paused process, a
    /// long GC-like stall), so suspicion clocks are restarted instead of
    /// condemning replicas that answered while we slept — marking the
    /// only replica dead drops its unacked resend window and loses
    /// metadata for good.
    last_flush: Option<SimTime>,
    data_arrival: FxHashMap<(DcId, Timestamp), SimTime>,
    /// Copies of staged remote updates kept only for apply-log reporting.
    pending_log: FxHashMap<(DcId, Timestamp), eunomia_kv::Update>,
    /// §5 fan-in tree over this datacenter's partitions (None = direct
    /// all-to-one metadata flow).
    tree: Option<FanInTree>,
    /// Bundle entries received from tree children, forwarded (merged with
    /// this partition's own batches) at the next flush tick.
    relay_buffer: Vec<BundleEntry>,
}

impl PartitionProc {
    /// Creates the actor for partition `pidx` of datacenter `dc`.
    pub fn new(
        dc: usize,
        pidx: usize,
        kind: SystemId,
        cfg: Rc<ClusterConfig>,
        reg: SharedRegistry,
        metrics: GeoMetrics,
    ) -> Self {
        let costs = cfg.costs_for(kind);
        let replicas = cfg.replicas.max(1);
        PartitionProc {
            state: PartitionState::new(PartitionId(pidx as u32), DcId(dc as u16), cfg.n_dcs),
            dc,
            pidx,
            kind,
            costs,
            reg,
            metrics,
            sender: ReplicatedSender::new(replicas),
            replica_alive: vec![true; replicas],
            awaiting_since: vec![None; replicas],
            last_flush: None,
            tree: cfg
                .metadata_tree_arity
                .map(|a| FanInTree::new(cfg.partitions_per_dc, a)),
            cfg,
            data_arrival: FxHashMap::default(),
            pending_log: FxHashMap::default(),
            relay_buffer: Vec::new(),
        }
    }

    /// Sends this flush round's bundle up the tree (or, at the root, to
    /// the Eunomia replicas).
    fn forward_bundle(&mut self, ctx: &mut Context<'_, Msg>, mut entries: Vec<BundleEntry>) {
        entries.append(&mut self.relay_buffer);
        if entries.is_empty() {
            return;
        }
        let tree = self.tree.expect("bundles only flow when the tree is on");
        match tree.parent(self.pidx) {
            Some(parent) => {
                ctx.consume(self.costs.batch_overhead_ns);
                let target = self.reg.borrow().partition(self.dc, parent);
                ctx.send(target, Msg::MetaBundle { entries });
            }
            None => {
                // Root: one merged message per replica.
                let replicas = self.reg.borrow().eunomia_replicas(self.dc).to_vec();
                for (f, &pid) in replicas.iter().enumerate() {
                    let for_replica: Vec<BundleEntry> = entries
                        .iter()
                        .filter(|e| e.replica.index() == f)
                        .cloned()
                        .collect();
                    if for_replica.is_empty() {
                        continue;
                    }
                    ctx.consume(self.costs.batch_overhead_ns);
                    ctx.send(
                        pid,
                        Msg::MetaBundle {
                            entries: for_replica,
                        },
                    );
                }
            }
        }
    }

    fn vector_cost(&self) -> u64 {
        self.costs.vector_entry_ns * self.cfg.n_dcs as u64
    }

    /// The batch interval in force at `now`, honouring a straggler window.
    fn effective_interval(&self, now: SimTime) -> SimTime {
        if let Some(s) = &self.cfg.straggler {
            if s.dc == self.dc && s.partition == self.pidx && now >= s.from && now < s.to {
                return s.interval;
            }
        }
        self.cfg.batch_interval
    }

    fn flush_metadata(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        // Failure-detector hygiene: if our own flush loop stalled past the
        // suspicion horizon (we were paused, not the replicas silent),
        // restart the suspicion clocks before judging anyone.
        if self
            .last_flush
            .is_some_and(|last| now.saturating_sub(last) > self.cfg.omega_timeout)
        {
            for slot in self.awaiting_since.iter_mut() {
                if slot.is_some() {
                    *slot = Some(now);
                }
            }
        }
        self.last_flush = Some(now);
        let physical = Timestamp(ctx.clock());
        // Heartbeat once per flush round if the partition has been idle
        // (Alg. 2 l. 10-12).
        let heartbeat = if self.sender.window_len() == 0
            && self.state.heartbeat_due(physical, self.cfg.heartbeat_delta)
        {
            Some(self.state.heartbeat(physical))
        } else {
            None
        };
        let replicas = self.reg.borrow().eunomia_replicas(self.dc).to_vec();
        let mut bundle_entries: Vec<BundleEntry> = Vec::new();
        for (f, &pid) in replicas.iter().enumerate() {
            let rid = ReplicaId(f as u32);
            // A replica that stays silent after we sent it something stops
            // pinning the resend window (§3.3: a recovered replica rejoins
            // by state transfer, not replay). A partition that itself went
            // quiet — e.g. a straggler — never suspects anyone.
            if self.replica_alive[f]
                && self.awaiting_since[f]
                    .is_some_and(|since| now.saturating_sub(since) > 2 * self.cfg.omega_timeout)
            {
                self.replica_alive[f] = false;
                self.sender.mark_dead(rid);
            }
            if !self.replica_alive[f] {
                continue;
            }
            let batch = self.sender.batch_for(rid);
            if batch.is_empty() && heartbeat.is_none() {
                continue;
            }
            if !batch.is_empty() && self.awaiting_since[f].is_none() {
                self.awaiting_since[f] = Some(now);
            }
            let ops: Vec<OpMeta> = batch.into_iter().map(|(_, m)| m).collect();
            if self.tree.is_some() {
                bundle_entries.push(BundleEntry {
                    replica: rid,
                    partition: PartitionId(self.pidx as u32),
                    ops,
                    heartbeat,
                });
            } else {
                ctx.consume(self.costs.batch_overhead_ns);
                ctx.send(
                    pid,
                    Msg::MetaBatch {
                        partition: PartitionId(self.pidx as u32),
                        ops,
                        heartbeat,
                    },
                );
            }
        }
        if self.tree.is_some() {
            self.forward_bundle(ctx, bundle_entries);
        }
    }

    fn record_visibility(&mut self, ctx: &Context<'_, Msg>, origin: DcId, ts: Timestamp) {
        let arrival = self.data_arrival.remove(&(origin, ts)).unwrap_or(ctx.now());
        let extra = ctx.now().saturating_sub(arrival);
        self.metrics
            .record_visibility(origin.0, self.dc as u16, ctx.now(), extra);
    }

    fn log_apply(&self, ctx: &Context<'_, Msg>, update: &eunomia_kv::Update) {
        self.metrics.record_apply(crate::metrics::ApplyRecord {
            origin: update.origin.0,
            dest: self.dc as u16,
            key: update.key.0,
            ts: update.vts.get(update.origin).0,
            vts: update.vts.as_ticks(),
            at: ctx.now(),
        });
    }
}

impl Process<Msg> for PartitionProc {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.kind == SystemId::EunomiaKv {
            ctx.set_timer(self.cfg.batch_interval, TIMER_BATCH);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
        match msg {
            Msg::Read { key } => {
                ctx.consume(self.costs.read_ns + self.vector_cost());
                self.metrics.record_read(self.dc, key.0, ctx.now());
                let (value, vts, origin) = self.state.read_versioned(key);
                ctx.send(from, Msg::ReadReply { value, vts, origin });
            }
            Msg::Update { key, value, deps } => {
                ctx.consume(self.costs.update_ns + self.vector_cost());
                let physical = Timestamp(ctx.clock());
                let local = self.state.update(key, value, &deps, physical);
                self.log_apply(ctx, &local.update);
                ctx.send(
                    from,
                    Msg::UpdateReply {
                        vts: local.update.vts.clone(),
                    },
                );
                if self.kind == SystemId::EunomiaKv {
                    self.sender.push(
                        local.id.ts,
                        OpMeta {
                            id: local.id,
                            vts: local.update.vts.clone(),
                        },
                    );
                }
                // Data path (§5): ship the payload to sibling partitions in
                // every remote datacenter (that replicates the key, under
                // partial replication) immediately, unordered.
                let rf = self.cfg.replication_factor.unwrap_or(self.cfg.n_dcs);
                let reg = self.reg.borrow();
                for dc in 0..self.cfg.n_dcs {
                    if dc != self.dc && eunomia_kv::ring::replicates(key, dc, self.cfg.n_dcs, rf) {
                        ctx.send(
                            reg.partition(dc, self.pidx),
                            Msg::RemoteData {
                                update: local.update.clone(),
                            },
                        );
                    }
                }
            }
            Msg::MetaBundle { entries } => {
                // Tree relay: stash child bundles; the next flush tick
                // forwards them upward merged with our own batches.
                ctx.consume(self.costs.hb_ns);
                self.relay_buffer.extend(entries);
            }
            Msg::MetaAck { replica, upto } => {
                ctx.consume(self.costs.hb_ns);
                if !self.replica_alive[replica.index()] {
                    self.replica_alive[replica.index()] = true;
                    self.sender.mark_alive(replica);
                }
                self.sender.on_ack(replica, upto);
                // Any ack proves the replica alive: clear suspicion. If
                // sent-but-unacked items remain, the next flush re-sends
                // them and re-arms the timer. (Ops that entered the window
                // after the last flush must NOT arm it — a straggler that
                // flushes rarely would otherwise suspect a healthy
                // replica.)
                self.awaiting_since[replica.index()] = None;
            }
            Msg::RemoteData { update } => {
                let origin = update.origin;
                let ts = update.vts.get(origin);
                match self.kind {
                    SystemId::Eventual => {
                        ctx.consume(self.costs.apply_ns);
                        self.log_apply(ctx, &update);
                        self.state.apply_now(update);
                    }
                    SystemId::EunomiaKv => {
                        ctx.consume(self.costs.stage_ns);
                        self.data_arrival.insert((origin, ts), ctx.now());
                        self.pending_log.insert((origin, ts), update.clone());
                        if let Some(id) = self.state.on_remote_data(update) {
                            // The APPLY instruction was already waiting: the
                            // update becomes visible the moment data lands.
                            ctx.consume(self.costs.apply_ns);
                            if let Some(u) = self.pending_log.remove(&(origin, id.ts)) {
                                self.log_apply(ctx, &u);
                            }
                            self.record_visibility(ctx, origin, id.ts);
                            let receiver = self.reg.borrow().receiver(self.dc);
                            ctx.send(receiver, Msg::ApplyOk { origin, id });
                        }
                    }
                    other => unreachable!("geo partitions only run native systems, not {other}"),
                }
            }
            Msg::Apply { origin, id } => {
                ctx.consume(self.costs.apply_ns);
                match self.state.on_apply_request(origin, id) {
                    ApplyOutcome::Applied => {
                        if let Some(u) = self.pending_log.remove(&(origin, id.ts)) {
                            self.log_apply(ctx, &u);
                        }
                        self.record_visibility(ctx, origin, id.ts);
                        ctx.send(from, Msg::ApplyOk { origin, id });
                    }
                    ApplyOutcome::WaitingForData => {
                        // Ack deferred until the data message arrives.
                    }
                }
            }
            other => {
                debug_assert!(false, "partition received unexpected message: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        debug_assert_eq!(tag, TIMER_BATCH);
        self.flush_metadata(ctx);
        let next = self.effective_interval(ctx.now());
        ctx.set_timer(next, TIMER_BATCH);
    }

    fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
        use eunomia_collections::{combine_unordered, hash_one};
        use std::hash::Hash as _;
        self.state.state_digest(h);
        self.sender.state_digest(h);
        self.replica_alive.hash(&mut h);
        // Suspicion timers matter only through their is-armed bit: under
        // the zero-latency MC clock every armed timer reads the same
        // instant, and elsewhere hashing raw times would split states that
        // behave identically.
        for slot in &self.awaiting_since {
            h.write_u8(slot.is_some() as u8);
        }
        // `last_flush` and `data_arrival` feed only latency metrics and
        // the stall-hygiene heuristic; both are time bookkeeping, not
        // protocol state.
        let mut pending = 0u64;
        for (k, v) in &self.pending_log {
            pending = combine_unordered(pending, hash_one(&(k, v)));
        }
        h.write_usize(self.pending_log.len());
        h.write_u64(pending);
        self.relay_buffer.hash(&mut h);
        true
    }
}
