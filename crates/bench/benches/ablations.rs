//! Criterion bench — component-level ablations of the paper's design
//! choices:
//!
//! * **Data/metadata separation (§5):** buffering lightweight ids versus
//!   full 100-byte payloads through the stabilization buffer. The paper
//!   decouples the two so Eunomia "handles a significantly heavier load
//!   independently of update values".
//! * **Vector width (§4):** per-op cost of vector-clock maintenance as the
//!   number of datacenters grows — the metadata-enrichment overhead that
//!   separates Cure from GentleRain.
//! * **Simulator event loop:** events/second of the discrete-event engine,
//!   to size simulation experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eunomia_core::buffer::{OpKey, StabilizationBuffer};
use eunomia_core::ids::PartitionId;
use eunomia_core::time::{Timestamp, VectorTime};
use eunomia_sim::{units, Context, Process, ProcessId, Simulation, Topology};
use std::hint::black_box;
use std::time::Duration;

const OPS: u64 = 4_096;

fn buffer_cycle<T: Clone>(payload: T) -> usize {
    let mut buf: StabilizationBuffer<T> = StabilizationBuffer::new();
    let mut out = Vec::new();
    for round in 0..(OPS / 64) {
        for i in 0..64u64 {
            let ts = Timestamp(round * 64 + i + 1);
            buf.insert(OpKey::new(ts, PartitionId((i % 8) as u32)), payload.clone());
        }
        buf.drain_stable(Timestamp(round * 64 + 32), &mut out);
    }
    out.len()
}

fn data_metadata_separation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/buffer_payload");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function(BenchmarkId::from_parameter("id_only"), |b| {
        // §5: Eunomia handles (timestamp, key) ids only.
        b.iter(|| black_box(buffer_cycle(0u64)))
    });
    g.bench_function(BenchmarkId::from_parameter("full_100B_payload"), |b| {
        // Strawman: the service carries the 100-byte value too.
        let value = bytes::Bytes::from(vec![0xABu8; 100]);
        b.iter(|| black_box(buffer_cycle((0u64, value.clone()))))
    });
    g.bench_function(BenchmarkId::from_parameter("full_1KiB_payload"), |b| {
        let value = bytes::Bytes::from(vec![0xABu8; 1024]);
        b.iter(|| black_box(buffer_cycle((0u64, value.clone()))))
    });
    g.finish();
}

fn vector_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/vector_width");
    for m in [3usize, 8, 16, 64] {
        g.bench_function(BenchmarkId::from_parameter(m), |b| {
            let mut session = VectorTime::new(m);
            let mut version = VectorTime::new(m);
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                version.set(eunomia_core::ids::DcId((t % m as u64) as u16), Timestamp(t));
                session.merge_max(&version);
                black_box(session.dominates(&version))
            })
        });
    }
    g.finish();
}

struct PingPong {
    peer: Option<ProcessId>,
}

impl Process<u32> for PingPong {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if let Some(p) = self.peer {
            ctx.send(p, 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, n: u32) {
        ctx.send(from, n + 1);
    }
}

fn sim_event_loop(c: &mut Criterion) {
    c.bench_function("ablation/sim_events_per_round", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Topology::single_region(2, units::us(1), 0), 1);
            let a = sim.add_process(0, Box::new(PingPong { peer: None }));
            let _b = sim.add_process(0, Box::new(PingPong { peer: Some(a) }));
            sim.run_until(units::ms(5));
            black_box(sim.events_processed())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20);
    targets = data_metadata_separation, vector_width, sim_event_loop
}
criterion_main!(benches);
