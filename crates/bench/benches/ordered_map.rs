//! Criterion bench — the §6 data-structure choice for the stabilization
//! buffer: red-black tree (the paper's pick) vs AVL tree (the alternative
//! it rejected) vs `std` B-tree.
//!
//! Three access patterns matter to Eunomia:
//! * pure ordered insertion (ingest bursts);
//! * the steady-state stabilization mix — insert a batch, then drain
//!   everything below the new stable time in order;
//! * full in-order drain (catch-up after a stall).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eunomia_collections::{AvlTree, BTreeAdapter, OrderedMap, RbTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 8_192;

fn keys(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<u64>()).collect()
}

fn bench_insert<M: OrderedMap<u64, u64>>(keys: &[u64]) -> usize {
    let mut m = M::new();
    for &k in keys {
        m.insert(k, k);
    }
    m.len()
}

/// The PROCESS_STABLE steady state: batches arrive, the oldest quarter of
/// the key range is drained in order.
fn bench_stabilization<M: OrderedMap<u64, u64>>(keys: &[u64]) -> usize {
    let mut m = M::new();
    let mut out = Vec::new();
    let mut drained = 0;
    for chunk in keys.chunks(64) {
        for &k in chunk {
            m.insert(k, k);
        }
        if let Some(&min) = m.min_key() {
            let bound = min.saturating_add(u64::MAX / 4);
            out.clear();
            m.drain_up_to(&bound, &mut out);
            drained += out.len();
        }
    }
    drained
}

fn bench_drain<M: OrderedMap<u64, u64>>(keys: &[u64]) -> u64 {
    let mut m = M::new();
    for &k in keys {
        m.insert(k, k);
    }
    let mut acc = 0u64;
    while let Some((k, _)) = m.pop_min() {
        acc = acc.wrapping_add(k);
    }
    acc
}

fn ordered_map_benches(c: &mut Criterion) {
    let ks = keys(7, N);
    let mut g = c.benchmark_group("ordered_map/insert_random");
    g.bench_function(BenchmarkId::from_parameter("rbtree"), |b| {
        b.iter(|| bench_insert::<RbTree<u64, u64>>(black_box(&ks)))
    });
    g.bench_function(BenchmarkId::from_parameter("avl"), |b| {
        b.iter(|| bench_insert::<AvlTree<u64, u64>>(black_box(&ks)))
    });
    g.bench_function(BenchmarkId::from_parameter("btreemap"), |b| {
        b.iter(|| bench_insert::<BTreeAdapter<u64, u64>>(black_box(&ks)))
    });
    g.finish();

    let mut g = c.benchmark_group("ordered_map/stabilization_mix");
    g.bench_function(BenchmarkId::from_parameter("rbtree"), |b| {
        b.iter(|| bench_stabilization::<RbTree<u64, u64>>(black_box(&ks)))
    });
    g.bench_function(BenchmarkId::from_parameter("avl"), |b| {
        b.iter(|| bench_stabilization::<AvlTree<u64, u64>>(black_box(&ks)))
    });
    g.bench_function(BenchmarkId::from_parameter("btreemap"), |b| {
        b.iter(|| bench_stabilization::<BTreeAdapter<u64, u64>>(black_box(&ks)))
    });
    g.finish();

    let mut g = c.benchmark_group("ordered_map/full_drain");
    g.bench_function(BenchmarkId::from_parameter("rbtree"), |b| {
        b.iter(|| bench_drain::<RbTree<u64, u64>>(black_box(&ks)))
    });
    g.bench_function(BenchmarkId::from_parameter("avl"), |b| {
        b.iter(|| bench_drain::<AvlTree<u64, u64>>(black_box(&ks)))
    });
    g.bench_function(BenchmarkId::from_parameter("btreemap"), |b| {
        b.iter(|| bench_drain::<BTreeAdapter<u64, u64>>(black_box(&ks)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20);
    targets = ordered_map_benches
}
criterion_main!(benches);
