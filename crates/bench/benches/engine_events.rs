//! Raw discrete-event engine throughput, isolated from any protocol: how
//! many handler invocations per second the dispatch hot path sustains.
//!
//! Three shapes bracket the engine's regimes:
//!
//! * `ring` — every arrival finds an idle process (pure direct-delivery
//!   path, no queueing);
//! * `busy_server` — a slow server with a deep queue (the
//!   Dispatch-rescheduling path);
//! * `timer_churn` — processes that continually arm and cancel timers
//!   (the generation-table path).
//!
//! Run with: `cargo bench -p eunomia-bench --bench engine_events`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eunomia_sim::{units, Context, Process, ProcessId, Simulation, Topology};

/// Token-passing ring: each message immediately triggers the next hop.
struct RingNode {
    next: ProcessId,
    start: bool,
}

impl Process<u64> for RingNode {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.start {
            ctx.send(self.next, 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, n: u64) {
        ctx.send(self.next, n + 1);
    }
}

fn ring_sim(nodes: u32) -> Simulation<u64> {
    let mut sim = Simulation::new(Topology::single_region(nodes as usize, units::us(10), 0), 7);
    let pids: Vec<ProcessId> = (0..nodes).map(ProcessId).collect();
    for i in 0..nodes {
        let next = pids[((i + 1) % nodes) as usize];
        sim.add_process(
            0,
            Box::new(RingNode {
                next,
                start: i == 0,
            }),
        );
    }
    sim
}

struct SlowServer;

impl Process<u64> for SlowServer {
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {
        ctx.consume(units::us(2));
    }
}

struct Blaster {
    server: ProcessId,
    per_tick: u64,
    ticks: u64,
}

impl Process<u64> for Blaster {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(units::us(50), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _tag: u64) {
        for i in 0..self.per_tick {
            ctx.send(self.server, i);
        }
        self.ticks -= 1;
        if self.ticks > 0 {
            ctx.set_timer(units::us(50), 0);
        }
    }
}

fn busy_sim() -> Simulation<u64> {
    let mut sim = Simulation::new(Topology::single_region(2, units::us(5), 0), 9);
    let server = sim.add_process(0, Box::new(SlowServer));
    sim.add_process(
        0,
        Box::new(Blaster {
            server,
            per_tick: 40,
            ticks: 500,
        }),
    );
    sim
}

/// Arms two timers per firing and cancels one — every firing exercises
/// both the retire-on-fire and retire-on-cancel generation paths.
struct TimerChurner {
    pending: u64,
    remaining: u64,
}

impl Process<u64> for TimerChurner {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.pending = ctx.set_timer(units::us(20), 1);
        ctx.set_timer(units::us(10), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, tag: u64) {
        assert_eq!(tag, 0, "the cancelled timer must never fire");
        ctx.cancel_timer(self.pending);
        self.remaining -= 1;
        if self.remaining > 0 {
            self.pending = ctx.set_timer(units::us(20), 1);
            ctx.set_timer(units::us(10), 0);
        }
    }
}

fn churn_sim(procs: u32) -> Simulation<u64> {
    let mut sim = Simulation::new(Topology::single_region(procs as usize, 0, 0), 11);
    for _ in 0..procs {
        sim.add_process(
            0,
            Box::new(TimerChurner {
                pending: 0,
                remaining: 5_000,
            }),
        );
    }
    sim
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_events");

    let events = {
        let mut sim = ring_sim(64);
        sim.run_until(units::secs(1));
        sim.events_processed()
    };
    group.throughput(Throughput::Elements(events));
    group.bench_function("ring64", |b| {
        b.iter(|| {
            let mut sim = ring_sim(64);
            sim.run_until(units::secs(1));
            sim.events_processed()
        })
    });

    let events = {
        let mut sim = busy_sim();
        sim.run_until(units::secs(1));
        sim.events_processed()
    };
    group.throughput(Throughput::Elements(events));
    group.bench_function("busy_server", |b| {
        b.iter(|| {
            let mut sim = busy_sim();
            sim.run_until(units::secs(1));
            sim.events_processed()
        })
    });

    let events = {
        let mut sim = churn_sim(16);
        sim.run_until(units::secs(1));
        sim.events_processed()
    };
    group.throughput(Throughput::Elements(events));
    group.bench_function("timer_churn", |b| {
        b.iter(|| {
            let mut sim = churn_sim(16);
            sim.run_until(units::secs(1));
            sim.events_processed()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
