//! Criterion bench — micro-operations on the protocol hot paths: clock
//! ticks, vector merges, Eunomia ingest/stabilize cycles, replica
//! deduplication, sequencer counter, sender window maintenance.

use criterion::{criterion_group, criterion_main, Criterion};
use eunomia_core::batch::Batcher;
use eunomia_core::eunomia::EunomiaState;
use eunomia_core::ids::{PartitionId, ReplicaId};
use eunomia_core::replica::{ReplicaState, ReplicatedSender};
use eunomia_core::sequencer::Sequencer;
use eunomia_core::time::{Hlc, HlcTimestamp, ScalarHlc, Timestamp, VectorTime};
use std::hint::black_box;
use std::time::Duration;

fn clock_benches(c: &mut Criterion) {
    c.bench_function("clock/scalar_hlc_tick", |b| {
        let mut clock = ScalarHlc::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            black_box(clock.tick(Timestamp(t), Timestamp(t / 2)))
        })
    });
    c.bench_function("clock/structured_hlc_update", |b| {
        let mut hlc = Hlc::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            black_box(hlc.update(t, HlcTimestamp { l: t + 1, c: 2 }))
        })
    });
    c.bench_function("clock/vector_merge_and_dominates_m3", |b| {
        let mut a = VectorTime::from_ticks(&[10, 20, 30]);
        let v = VectorTime::from_ticks(&[15, 18, 33]);
        b.iter(|| {
            a.merge_max(black_box(&v));
            black_box(a.dominates(&v))
        })
    });
}

fn eunomia_benches(c: &mut Criterion) {
    c.bench_function("eunomia/ingest_and_stabilize_16p", |b| {
        // Steady state: 16 partitions round-robin one op each, then a
        // stabilization pass drains what became stable.
        b.iter_with_setup(
            || (EunomiaState::<u64>::new(16), Vec::new()),
            |(mut svc, mut out)| {
                for round in 0..64u64 {
                    for p in 0..16u32 {
                        let ts = round * 100 + u64::from(p) + 1;
                        svc.add_op(PartitionId(p), Timestamp(ts), ts).unwrap();
                    }
                    svc.process_stable(&mut out);
                }
                black_box(out.len())
            },
        )
    });
    c.bench_function("eunomia/replica_duplicate_filtering", |b| {
        // At-least-once delivery: half of each batch was already seen.
        b.iter_with_setup(
            || {
                let mut r: ReplicaState<u64> = ReplicaState::new(ReplicaId(0), 1);
                let first: Vec<(Timestamp, u64)> =
                    (1..=512u64).map(|t| (Timestamp(t), t)).collect();
                r.new_batch(PartitionId(0), first).unwrap();
                r
            },
            |mut r| {
                let redelivery: Vec<(Timestamp, u64)> =
                    (256..=768u64).map(|t| (Timestamp(t), t)).collect();
                black_box(r.new_batch(PartitionId(0), redelivery).unwrap())
            },
        )
    });
    c.bench_function("eunomia/sender_push_ack_cycle", |b| {
        let mut sender: ReplicatedSender<u64> = ReplicatedSender::new(3);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            sender.push(Timestamp(ts), ts);
            for r in 0..3u32 {
                sender.on_ack(ReplicaId(r), Timestamp(ts));
            }
            black_box(sender.window_len())
        })
    });
    c.bench_function("eunomia/batcher_push_flush", |b| {
        let mut batcher: Batcher<u64> = Batcher::new(0);
        let mut t = 0u64;
        b.iter(|| {
            for i in 0..64u64 {
                batcher.push(i);
            }
            t += 1;
            black_box(batcher.force_flush(Timestamp(t)).len())
        })
    });
}

fn sequencer_benches(c: &mut Criterion) {
    c.bench_function("sequencer/next", |b| {
        let mut s = Sequencer::new();
        b.iter(|| black_box(s.next_seq()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20);
    targets = clock_benches, eunomia_benches, sequencer_benches
}
criterion_main!(benches);
