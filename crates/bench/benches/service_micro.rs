//! Criterion bench — micro-operations on the protocol hot paths: clock
//! ticks, vector merges, Eunomia ingest/stabilize cycles, sharded-replica
//! frame ingestion (the code the threaded figures run), sequencer
//! counter, lane-sender window maintenance.

use criterion::{criterion_group, criterion_main, Criterion};
use eunomia_core::batch::Batcher;
use eunomia_core::eunomia::EunomiaState;
use eunomia_core::ids::{PartitionId, ReplicaId};
use eunomia_core::sequencer::Sequencer;
use eunomia_core::shard::{BatchFrame, LaneSender, ShardedReplicaState};
use eunomia_core::time::{Hlc, HlcTimestamp, ScalarHlc, Timestamp, VectorTime};
use std::hint::black_box;
use std::time::Duration;

fn clock_benches(c: &mut Criterion) {
    c.bench_function("clock/scalar_hlc_tick", |b| {
        let mut clock = ScalarHlc::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            black_box(clock.tick(Timestamp(t), Timestamp(t / 2)))
        })
    });
    c.bench_function("clock/structured_hlc_update", |b| {
        let mut hlc = Hlc::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            black_box(hlc.update(t, HlcTimestamp { l: t + 1, c: 2 }))
        })
    });
    c.bench_function("clock/vector_merge_and_dominates_m3", |b| {
        let mut a = VectorTime::from_ticks(&[10, 20, 30]);
        let v = VectorTime::from_ticks(&[15, 18, 33]);
        b.iter(|| {
            a.merge_max(black_box(&v));
            black_box(a.dominates(&v))
        })
    });
}

fn eunomia_benches(c: &mut Criterion) {
    c.bench_function("eunomia/ingest_and_stabilize_16p", |b| {
        // Steady state: 16 partitions round-robin one op each, then a
        // stabilization pass drains what became stable.
        b.iter_with_setup(
            || (EunomiaState::<u64>::new(16), Vec::new()),
            |(mut svc, mut out)| {
                for round in 0..64u64 {
                    for p in 0..16u32 {
                        let ts = round * 100 + u64::from(p) + 1;
                        svc.add_op(PartitionId(p), Timestamp(ts), ts).unwrap();
                    }
                    svc.process_stable(&mut out);
                }
                black_box(out.len())
            },
        )
    });
    c.bench_function("eunomia/replica_duplicate_filtering", |b| {
        // At-least-once delivery on the threaded hot path: half of each
        // batch frame was already seen, sliced off by the watermark dedup
        // (this is the same `ShardedReplicaState::ingest` the fig2–fig4
        // service figures and `perf_service` exercise).
        b.iter_with_setup(
            || {
                let mut r = ShardedReplicaState::new(ReplicaId(0), 1);
                let first = BatchFrame {
                    partition: PartitionId(0),
                    ids: (1..=512u64).map(Timestamp).collect(),
                    heartbeat: None,
                };
                r.ingest(&first).unwrap();
                let redelivery = BatchFrame {
                    partition: PartitionId(0),
                    ids: (256..=768u64).map(Timestamp).collect(),
                    heartbeat: None,
                };
                (r, redelivery)
            },
            |(mut r, redelivery)| black_box(r.ingest(&redelivery).unwrap()),
        )
    });
    c.bench_function("eunomia/sharded_ingest_and_stabilize_16_lanes", |b| {
        // Steady-state frame cycle of the threaded service: 16 lanes each
        // ingest a 64-id frame, then the leader drains the stable cutoff.
        b.iter_with_setup(
            || {
                let frames: Vec<BatchFrame> = (0..16u32)
                    .map(|lane| BatchFrame {
                        partition: PartitionId(lane),
                        ids: (1..=64u64)
                            .map(|i| Timestamp(i * 100 + lane as u64))
                            .collect(),
                        heartbeat: None,
                    })
                    .collect();
                (ShardedReplicaState::new(ReplicaId(0), 16), frames)
            },
            |(mut r, frames)| {
                for f in &frames {
                    r.ingest(f).unwrap();
                }
                let mut n = 0u64;
                r.leader_process_stable_with(|_, _| n += 1);
                black_box(n)
            },
        )
    });
    c.bench_function("eunomia/lane_sender_frame_ack_cycle", |b| {
        let mut sender = LaneSender::new(3);
        let mut scratch: Vec<Timestamp> = Vec::with_capacity(64);
        let mut ts = 0u64;
        b.iter(|| {
            for _ in 0..64 {
                ts += 1;
                sender.push(Timestamp(ts));
            }
            scratch.clear();
            sender.append_above(Timestamp(ts - 64), &mut scratch);
            for r in 0..3u32 {
                sender.on_ack(ReplicaId(r), Timestamp(ts));
            }
            black_box((scratch.len(), sender.window_len()))
        })
    });
    c.bench_function("eunomia/batcher_push_flush", |b| {
        let mut batcher: Batcher<u64> = Batcher::new(0);
        let mut t = 0u64;
        b.iter(|| {
            for i in 0..64u64 {
                batcher.push(i);
            }
            t += 1;
            black_box(batcher.force_flush(Timestamp(t)).len())
        })
    });
}

fn sequencer_benches(c: &mut Criterion) {
    c.bench_function("sequencer/next", |b| {
        let mut s = Sequencer::new();
        b.iter(|| black_box(s.next_seq()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20);
    targets = clock_benches, eunomia_benches, sequencer_benches
}
criterion_main!(benches);
