//! Figure 2 — maximum throughput of Eunomia vs a synchronous sequencer.
//!
//! As in §7.1, load generators bypass the datastore and feed the ordering
//! service directly, each simulating one partition of a large datacenter.
//! Eunomia ingests 1 ms batches of operation ids asynchronously; the
//! sequencer serves one synchronous request/reply round trip per
//! operation. The paper reports ≈370 kops/s vs ≈48 kops/s (7.7×) on its
//! hardware; absolute numbers here differ (different machine, threads
//! time-share cores) but the batched service must beat the synchronous
//! one by around an order of magnitude, roughly flat in the number of
//! feeding partitions.

use eunomia_bench::{banner, print_table, BenchArgs};
use eunomia_runtime::sequencer::{run_sequencer, SequencerBenchConfig};
use eunomia_runtime::service::{run_eunomia_service, EunomiaBenchConfig};
use std::time::Duration;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(4, 2);
    banner(
        "Figure 2",
        "maximum service throughput: Eunomia (15..75 feeder partitions) vs sequencer",
        "Eunomia sustains roughly an order of magnitude more ops/s than the \
         sequencer and stays roughly flat as feeders increase (paper: 370 kops \
         vs 48 kops, 7.7x)",
    );

    let mut rows = Vec::new();
    let mut eunomia_best = 0.0f64;
    for feeders in [15usize, 30, 45, 60, 75] {
        let cfg = EunomiaBenchConfig {
            feeders,
            replicas: 1,
            duration: Duration::from_secs(secs),
            ..EunomiaBenchConfig::default()
        };
        let t = run_eunomia_service(&cfg);
        eunomia_best = eunomia_best.max(t.ops_per_sec());
        rows.push(vec![
            format!("Eunomia {feeders}"),
            format!("{:.0}", t.ops_per_sec() / 1000.0),
        ]);
    }
    let seq = run_sequencer(&SequencerBenchConfig {
        clients: 60,
        chain: 1,
        duration: Duration::from_secs(secs),
    });
    rows.push(vec![
        "Sequencer".to_string(),
        format!("{:.0}", seq.ops_per_sec() / 1000.0),
    ]);
    print_table(&["service", "kops/s"], &rows);
    println!(
        "\nEunomia(best) / Sequencer = {:.1}x (paper: 7.7x)",
        eunomia_best / seq.ops_per_sec().max(1.0)
    );
}
