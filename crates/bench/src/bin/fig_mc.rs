//! Model-checking matrix: exhaustive schedule exploration of all six
//! systems on their 2-DC certification scenarios, plus the seeded
//! violation demo (Eventual breaks causal delivery on two independent
//! FIFO links; EunomiaKV certifies the very same deployment).
//!
//! Every certification run must come back `Certified` with a complete
//! (untruncated) search; the demo must come back `Violated` with a
//! counterexample that replays to the identical verdict. Any other
//! outcome exits non-zero. Explored-state counts go to `BENCH_mc.json` —
//! the search is deterministic (replay-based DFS over a pinned
//! fingerprint hash), so CI gates on *exact* equality: a drifting count
//! means the explored schedule space silently changed.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin fig_mc [-- --systems eunomia,cure]`
//!
//! (`--quick` is accepted but changes nothing: the scenarios are already
//! sized for exhaustive search, and shrinking them would change the
//! counts CI pins.)

use eunomia_bench::BenchArgs;
use eunomia_geo::{mc_replay, mc_run, McReport, McScenario, SystemId};
use eunomia_sim::McVerdict;
use std::fmt::Write as _;

struct Cell {
    system: SystemId,
    scenario: String,
    expected_certified: bool,
    report: McReport,
    /// For violated runs: did the counterexample replay to the same
    /// step and message on a fresh cluster?
    replayed: Option<bool>,
}

fn verdict_label(v: &McVerdict) -> &'static str {
    if v.is_certified() {
        "certified"
    } else {
        "violated"
    }
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "fig_mc",
        "model checking: six-system certification matrix + seeded violation demo",
        "every certify scenario is Certified with a complete search; the demo \
         violates causal order and its trace replays; explored-state counts are \
         deterministic (CI gates on exact equality)",
    );

    let systems = args.systems(&SystemId::all());
    let mut cells: Vec<Cell> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for &sys in &systems {
        let sc = McScenario::certify(sys);
        let report = mc_run(sys, &sc);
        if !report.verdict.is_certified() {
            failures.push(format!("{sys} x {}: {:?}", sc.name, report.verdict));
        }
        if !report.complete {
            failures.push(format!(
                "{sys} x {}: search truncated ({:?})",
                sc.name, report.stats
            ));
        }
        cells.push(Cell {
            system: sys,
            scenario: sc.name.clone(),
            expected_certified: true,
            report,
            replayed: None,
        });
    }

    // The violation demo: the same two-partition deployment must break
    // the eventually consistent baseline and certify for EunomiaKV.
    let demo = McScenario::violation_demo();
    for (sys, expected_certified) in [(SystemId::Eventual, false), (SystemId::EunomiaKv, true)] {
        if !args.wants(sys) {
            continue;
        }
        let report = mc_run(sys, &demo);
        let mut replayed = None;
        match (&report.verdict, expected_certified) {
            (McVerdict::Certified, true) => {}
            (
                McVerdict::Violated {
                    step,
                    message,
                    trace,
                },
                false,
            ) => {
                let again = mc_replay(sys, &demo, trace);
                let ok = matches!(
                    &again.verdict,
                    McVerdict::Violated { step: s, message: m, .. }
                        if s == step && m == message
                );
                if !ok {
                    failures.push(format!(
                        "{sys} x {}: counterexample did not replay: {:?}",
                        demo.name, again.verdict
                    ));
                }
                replayed = Some(ok);
            }
            (v, want) => {
                failures.push(format!(
                    "{sys} x {}: expected {}, got {}",
                    demo.name,
                    if want { "certified" } else { "violated" },
                    verdict_label(v)
                ));
            }
        }
        cells.push(Cell {
            system: sys,
            scenario: demo.name.clone(),
            expected_certified,
            report,
            replayed,
        });
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.system.to_string(),
                verdict_label(&c.report.verdict).to_string(),
                format!("{}", c.report.stats.explored),
                format!("{}", c.report.stats.pruned),
                format!("{}", c.report.stats.transitions),
                format!("{}", c.report.stats.leaves),
                format!("{}", c.report.stats.deepest),
                match c.replayed {
                    Some(true) => "yes".to_string(),
                    Some(false) => "NO".to_string(),
                    None => "-".to_string(),
                },
            ]
        })
        .collect();
    eunomia_bench::print_table(
        &[
            "scenario",
            "system",
            "verdict",
            "explored",
            "pruned",
            "transitions",
            "leaves",
            "deepest",
            "replayed",
        ],
        &rows,
    );

    let json = render_json(&cells);
    eunomia_bench::write_artifact("BENCH_mc.json", &json, &["runs"], cells.len(), "runs");

    if !failures.is_empty() {
        eprintln!("\nMODEL-CHECKING FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "all {} runs matched their expected verdicts ({} states explored in total)",
        cells.len(),
        cells.iter().map(|c| c.report.stats.explored).sum::<u64>()
    );
}

fn render_json(cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig_mc\",");
    out.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = c.report.stats;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"system\": \"{}\", \"scenario\": \"{}\", \
             \"expected\": \"{}\", \"verdict\": \"{}\", \"complete\": {}, \
             \"explored\": {}, \"pruned\": {}, \"transitions\": {}, \
             \"leaves\": {}, \"truncated\": {}, \"deepest\": {}, \"replayed\": {}",
            c.system,
            c.scenario,
            if c.expected_certified {
                "certified"
            } else {
                "violated"
            },
            verdict_label(&c.report.verdict),
            c.report.complete,
            s.explored,
            s.pruned,
            s.transitions,
            s.leaves,
            s.truncated,
            s.deepest,
            match c.replayed {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
        );
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
