//! Service fan-in sweep: ids/s at stabilization of the threaded Eunomia
//! service across lane and replica scales, written to
//! `BENCH_service.json`.
//!
//! Sweep cells offer a fixed load per lane (the paper's deployment
//! model — every lane is a partition with its own bounded operation
//! stream), so the curve shows throughput scaling with the partition
//! count until the service saturates and credit flow control takes over;
//! the default-config speedup probe below stays closed-loop as a raw
//! capacity measurement. High lane counts are multiplexed: the 1024-lane
//! cells run 16 feeder threads x 64 lanes each (the paper's proxy
//! deployment) rather than 1024 OS threads, which is what carries the
//! sweep past the fan-in knee the thread-per-lane topology hits.
//!
//! A fault cell follows the sweep: kill the leader replica mid-run, then
//! revive it, and assert the credit timeline recovers — the service-path
//! analogue of the simulator's fault matrix.
//!
//! This harness seeds the repo's service-bench trajectory for the PR that
//! rebuilt the threaded hot path (lock-free ring channels, batch frames,
//! the sharded watermark stabilizer). The pre-refactor baseline recorded
//! below was measured on the same default configuration with the old path
//! (Mutex+Condvar channel shim, per-id `ReplicaState` red-black-tree
//! ingest, per-id window clones) so the speedup is directly comparable.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin perf_service [-- --quick]`
//!
//! `--quick` shrinks measured durations for a CI smoke run; the JSON is
//! marked accordingly. Wall-clock numbers are machine-dependent — the
//! committed baseline and the CI run measure *relative* speedup on
//! whatever machine executes them.

use eunomia_bench::BenchArgs;
use eunomia_geo::{run, Scenario, SystemId};
use eunomia_runtime::service::{run_eunomia_service_with_stats, EunomiaBenchConfig};
use eunomia_stats::ServiceStats;
use std::fmt::Write as _;
use std::time::Duration;

/// Ids stabilized per wall-second by the pre-refactor service on the
/// default configuration (16 feeders, 1 replica, 4 s): best of repeated
/// runs on the reference machine at the commit before the hot-path
/// rebuild ("PR 4" in CHANGES.md).
const PRE_REFACTOR_IDS_PER_SEC: f64 = 5_087_121.0;

/// Offered load per lane (ids/s) for the sweep cells — the paper's
/// deployment model: each lane is a datacenter partition with its own
/// bounded operation stream, and scaling the partition count scales the
/// offered load until the service saturates. (The default-config capacity
/// probe below stays closed-loop.)
const SWEEP_FEEDER_RATE: u64 = 300_000;

/// Mux geometry per sweep cell: `(lanes_per_feeder, stabilizers)`.
///
/// The small cells keep the thread-per-lane topology (one lane per
/// feeder thread, one stabilizer) so their numbers stay directly
/// comparable with the pre-mux sweep. The 1024-lane cells are where
/// thread-per-lane hits the fan-in knee — context-switch storm between
/// 1024 feeders, one doorbell per lane, one serial theta sweep — so they
/// run the proxy topology: 16 feeder threads x 64 lanes each.
fn geometry(lanes: usize) -> (usize, usize) {
    if lanes >= 1024 {
        (64, 1)
    } else {
        (1, 1)
    }
}

struct Cell {
    feeders: usize,
    replicas: usize,
    lanes_per_feeder: usize,
    stabilizers: usize,
    stats: ServiceStats,
}

impl Cell {
    fn offered_ids_per_sec(&self) -> u64 {
        self.feeders as u64 * SWEEP_FEEDER_RATE
    }

    fn feeder_threads(&self) -> usize {
        self.feeders.div_ceil(self.lanes_per_feeder)
    }

    /// `threads x lanes/thread` — the mux-geometry column.
    fn geometry(&self) -> String {
        format!("{}x{}", self.feeder_threads(), self.lanes_per_feeder)
    }
}

/// The kill/restart fault cell: leader replica 0 dies mid-run and is
/// revived; the run is judged on whether flow control *recovers* —
/// stabilization resumes and the advertised-credit timeline climbs back
/// off the floor — rather than on raw throughput.
struct FaultCell {
    cfg: EunomiaBenchConfig,
    crash_at: Duration,
    revive_at: Duration,
    per_second: Vec<u64>,
    stats: ServiceStats,
}

fn run_fault_cell(secs: u64) -> FaultCell {
    let crash_at = Duration::from_millis(1200);
    let revive_at = Duration::from_millis(2400);
    let cfg = EunomiaBenchConfig {
        feeders: 64,
        lanes_per_feeder: 4,
        replicas: 3,
        duration: Duration::from_secs(secs + 2),
        feeder_rate: Some(SWEEP_FEEDER_RATE),
        crashes: vec![(crash_at, 0)],
        revives: vec![(revive_at, 0)],
        ..EunomiaBenchConfig::default()
    };
    let (timeline, stats) = run_eunomia_service_with_stats(&cfg);
    FaultCell {
        cfg,
        crash_at,
        revive_at,
        per_second: timeline.per_second,
        stats,
    }
}

impl FaultCell {
    /// The recovery predicate the CI gate relies on. Panics (failing the
    /// bench run) if the service did not come back from the fault.
    fn assert_recovered(&self) {
        let last_sec = self.per_second.len() - 1;
        assert!(
            self.per_second[last_sec] > 0,
            "no stabilization in the final second after revival: {:?}",
            self.per_second
        );
        let last_credit = self.stats.credit_timeline.last().copied();
        assert!(
            matches!(last_credit, Some(v) if v != ServiceStats::NO_CREDIT_SAMPLE && v > 0),
            "credit timeline did not recover after revival: {:?}",
            self.stats.credit_timeline
        );
        assert!(
            self.stats.duplicate_ids * 1000 <= self.stats.accepted_ids,
            "revival resend produced {} duplicates against {} accepted",
            self.stats.duplicate_ids,
            self.stats.accepted_ids
        );
    }
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "perf_service",
        "threaded service fan-in sweep: lanes x {16, 64, 256, 1024} at \
         300k ids/s offered per lane, replicas x {1, 3}; 1024-lane cells \
         multiplex 64 lanes per feeder thread",
        "credit flow control holds the overload regime: throughput scales \
         with lanes until the service saturates (256-lane cells beat \
         64-lane cells), duplicate ids ~0 across the sweep, and lane \
         multiplexing + grant batching carry the 1024-lane point past \
         the thread-per-lane fan-in knee; a kill/restart fault cell \
         must re-converge its credit timeline",
    );

    let secs = args.secs(4, 2);
    let mut cells: Vec<Cell> = Vec::new();
    for &feeders in &[16usize, 64, 256, 1024] {
        for &replicas in &[1usize, 3] {
            let (lanes_per_feeder, stabilizers) = geometry(feeders);
            let cfg = EunomiaBenchConfig {
                feeders,
                lanes_per_feeder,
                replicas,
                stabilizers,
                duration: Duration::from_secs(secs),
                feeder_rate: Some(SWEEP_FEEDER_RATE),
                ..EunomiaBenchConfig::default()
            };
            let (_, stats) = run_eunomia_service_with_stats(&cfg);
            cells.push(Cell {
                feeders,
                replicas,
                lanes_per_feeder,
                stabilizers,
                stats,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let s = &c.stats;
            let stab = s.stabilization_latencies_ms(&[50.0, 99.0]);
            vec![
                format!("{}", c.feeders),
                c.geometry(),
                format!("{}", c.replicas),
                format!("{:.0}", c.offered_ids_per_sec() as f64 / 1000.0),
                format!("{}", s.stabilized_ids),
                format!("{:.0}", s.ids_per_sec() / 1000.0),
                format!("{:.0}", s.mean_batch_size()),
                format!("{}", s.queue_depth_high_water),
                eunomia_bench::fmt_ms(stab[0]),
                eunomia_bench::fmt_ms(stab[1]),
                format!("{}", s.duplicate_ids),
                format!("{}", s.credit_stalls),
                format!("{}", s.retransmitted_ids),
                s.theta_sweep_us(99.0)
                    .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
                format!("{:.1}", s.mean_grant_batch_lanes()),
            ]
        })
        .collect();
    eunomia_bench::print_table(
        &[
            "lanes",
            "geometry",
            "replicas",
            "offered k/s",
            "stabilized",
            "kids/s",
            "mean batch",
            "queue hw",
            "stab p50 (ms)",
            "stab p99 (ms)",
            "dups",
            "credit stalls",
            "resent",
            "sweep p99 us",
            "batch lanes",
        ],
        &rows,
    );

    // The kill/restart fault cell (leader dies at 1.2 s, revives at
    // 2.4 s). Runs after the sweep so a recovery failure still leaves
    // the sweep numbers on screen.
    let fault = run_fault_cell(secs);
    fault.assert_recovered();
    println!(
        "\nfault cell ({} lanes as {}x{}, {} replicas): leader killed at {:.1} s, \
         revived at {:.1} s -> {:.0} ids/s overall, final-second {} ids, dups {}, \
         credit timeline recovered",
        fault.cfg.feeders,
        fault.cfg.feeders / fault.cfg.lanes_per_feeder,
        fault.cfg.lanes_per_feeder,
        fault.cfg.replicas,
        fault.crash_at.as_secs_f64(),
        fault.revive_at.as_secs_f64(),
        fault.stats.ids_per_sec(),
        fault.per_second.last().copied().unwrap_or(0),
        fault.stats.duplicate_ids,
    );

    // Speedup vs the recorded pre-refactor service on the default config.
    // Best-of-3 to shed scheduler noise — the baseline constant was
    // likewise the best of repeated runs on an otherwise idle host.
    let best_stats = (0..3)
        .map(|_| {
            let cfg = EunomiaBenchConfig {
                duration: Duration::from_secs(secs),
                ..EunomiaBenchConfig::default()
            };
            run_eunomia_service_with_stats(&cfg).1
        })
        .max_by(|a, b| a.ids_per_sec().total_cmp(&b.ids_per_sec()))
        .expect("three runs");
    let best = best_stats.ids_per_sec();
    let speedup = best / PRE_REFACTOR_IDS_PER_SEC;
    println!(
        "\ndefault config (16 feeders, 1 replica), best of 3: {:.0} ids/s = {speedup:.2}x \
         the pre-refactor service ({PRE_REFACTOR_IDS_PER_SEC:.0} ids/s)",
        best
    );

    // The RunReport plumbing: pair a simulated deployment with the
    // measured threaded-service stats so one report carries engine *and*
    // service counters (`RunReport.service` is the `engine` analogue for
    // the real-thread side).
    let paired = run(SystemId::EunomiaKv, &Scenario::small_test().seed(args.seed))
        .with_service_stats(best_stats);
    let svc = paired.service.as_ref().expect("just attached");
    println!(
        "paired RunReport: simulated {:.0} ops/s over {} engine events + threaded \
         service {:.0} ids/s (stab p99 {} ms)",
        paired.throughput,
        paired.engine.events,
        svc.ids_per_sec(),
        eunomia_bench::fmt_ms(svc.stabilization_latency_ms(99.0)),
    );

    let json = render_json(&cells, &fault, best, speedup, args.quick);
    eunomia_bench::write_artifact(
        "BENCH_service.json",
        &json,
        &["runs", "baseline_pre_refactor", "fault_cell"],
        cells.len(),
        "runs",
    );
}

fn render_json(
    cells: &[Cell],
    fault: &FaultCell,
    best_default: f64,
    speedup: f64,
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_service\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"sweep_feeder_rate_ids_per_sec\": {SWEEP_FEEDER_RATE},"
    );
    out.push_str("  \"baseline_pre_refactor\": {\n");
    out.push_str("    \"feeders\": 16,\n");
    out.push_str("    \"replicas\": 1,\n");
    let _ = writeln!(out, "    \"ids_per_sec\": {PRE_REFACTOR_IDS_PER_SEC:.0},");
    out.push_str(
        "    \"note\": \"old service path: Mutex+Condvar channel shim, per-id \
         ReplicaState rb-tree ingest, per-id window clones\"\n",
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"default_best_ids_per_sec\": {best_default:.0},");
    let _ = writeln!(out, "  \"default_speedup_vs_baseline\": {speedup:.3},");
    out.push_str("  \"fault_cell\": {\n");
    let _ = writeln!(
        out,
        "    \"feeders\": {}, \"lanes_per_feeder\": {}, \"replicas\": {},",
        fault.cfg.feeders, fault.cfg.lanes_per_feeder, fault.cfg.replicas
    );
    let _ = writeln!(
        out,
        "    \"crash_at_s\": {:.1}, \"revive_at_s\": {:.1}, \"duration_s\": {:.1},",
        fault.crash_at.as_secs_f64(),
        fault.revive_at.as_secs_f64(),
        fault.cfg.duration.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "    \"ids_per_sec\": {:.0}, \"accepted_ids\": {}, \"duplicate_ids\": {}, \
         \"retransmitted_ids\": {},",
        fault.stats.ids_per_sec(),
        fault.stats.accepted_ids,
        fault.stats.duplicate_ids,
        fault.stats.retransmitted_ids
    );
    let _ = writeln!(
        out,
        "    \"stabilized_per_second\": [{}],",
        fault
            .per_second
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "    \"credit_timeline_min\": [{}],",
        credit_timeline_json(&fault.stats)
    );
    out.push_str("    \"recovered\": true\n");
    out.push_str("  },\n");
    out.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.stats;
        let stab = s.stabilization_latencies_ms(&[50.0, 99.0]);
        out.push_str("    {");
        let _ = write!(
            out,
            "\"feeders\": {}, \"replicas\": {}, \"feeder_threads\": {}, \
             \"lanes_per_feeder\": {}, \"stabilizers\": {}, \
             \"offered_ids_per_sec\": {}, \
             \"wall_secs\": {:.3}, \
             \"stabilized_ids\": {}, \"ids_per_sec\": {:.0}, \"frames\": {}, \
             \"mean_batch\": {:.1}, \"queue_depth_high_water\": {}, \
             \"stab_p50_ms\": {}, \"stab_p99_ms\": {}, \
             \"accepted_ids\": {}, \"duplicate_ids\": {}, \
             \"credit_stalls\": {}, \"ring_full_stalls\": {}, \
             \"retransmitted_ids\": {}, \"credit_min\": {}, \
             \"credit_p50\": {}, \
             \"theta_sweep_p50_us\": {}, \"theta_sweep_p99_us\": {}, \
             \"grant_batches\": {}, \"mean_grant_batch_lanes\": {:.2}, \
             \"doorbell_unparks\": {}, \"credit_timeline_min\": [{}]",
            c.feeders,
            c.replicas,
            c.feeder_threads(),
            c.lanes_per_feeder,
            c.stabilizers,
            c.offered_ids_per_sec(),
            s.elapsed.as_secs_f64(),
            s.stabilized_ids,
            s.ids_per_sec(),
            s.frames,
            s.mean_batch_size(),
            s.queue_depth_high_water,
            json_opt(stab[0]),
            json_opt(stab[1]),
            s.accepted_ids,
            s.duplicate_ids,
            s.credit_stalls,
            s.ring_full_stalls,
            s.retransmitted_ids,
            json_u64_opt(s.advertised_credits.min()),
            json_u64_opt(s.advertised_credits.percentile(50.0)),
            json_opt(s.theta_sweep_us(50.0)),
            json_opt(s.theta_sweep_us(99.0)),
            s.grant_batches,
            s.mean_grant_batch_lanes(),
            s.doorbell_unparks,
            credit_timeline_json(s),
        );
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn credit_timeline_json(s: &ServiceStats) -> String {
    s.credit_timeline
        .iter()
        .map(|&v| {
            if v == ServiceStats::NO_CREDIT_SAMPLE {
                "null".to_string()
            } else {
                v.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

fn json_u64_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}
