//! Service fan-in sweep: ids/s at stabilization of the threaded Eunomia
//! service across feeder and replica scales, written to
//! `BENCH_service.json`.
//!
//! Sweep cells offer a fixed load per feeder (the paper's deployment
//! model — every feeder is a partition with its own bounded operation
//! stream), so the curve shows throughput scaling with the partition
//! count until the service saturates and credit flow control takes over;
//! the default-config speedup probe below stays closed-loop as a raw
//! capacity measurement.
//!
//! This harness seeds the repo's service-bench trajectory for the PR that
//! rebuilt the threaded hot path (lock-free ring channels, batch frames,
//! the sharded watermark stabilizer). The pre-refactor baseline recorded
//! below was measured on the same default configuration with the old path
//! (Mutex+Condvar channel shim, per-id `ReplicaState` red-black-tree
//! ingest, per-id window clones) so the speedup is directly comparable.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin perf_service [-- --quick]`
//!
//! `--quick` shrinks measured durations for a CI smoke run; the JSON is
//! marked accordingly. Wall-clock numbers are machine-dependent — the
//! committed baseline and the CI run measure *relative* speedup on
//! whatever machine executes them.

use eunomia_bench::BenchArgs;
use eunomia_geo::{run, Scenario, SystemId};
use eunomia_runtime::service::{run_eunomia_service_with_stats, EunomiaBenchConfig};
use eunomia_stats::ServiceStats;
use std::fmt::Write as _;
use std::time::Duration;

/// Ids stabilized per wall-second by the pre-refactor service on the
/// default configuration (16 feeders, 1 replica, 4 s): best of repeated
/// runs on the reference machine at the commit before the hot-path
/// rebuild ("PR 4" in CHANGES.md).
const PRE_REFACTOR_IDS_PER_SEC: f64 = 5_087_121.0;

/// Offered load per feeder (ids/s) for the sweep cells — the paper's
/// deployment model: each feeder is a datacenter partition with its own
/// bounded operation stream, and scaling the partition count scales the
/// offered load until the service saturates. (The default-config capacity
/// probe below stays closed-loop.)
const SWEEP_FEEDER_RATE: u64 = 300_000;

struct Cell {
    feeders: usize,
    replicas: usize,
    stats: ServiceStats,
}

impl Cell {
    fn offered_ids_per_sec(&self) -> u64 {
        self.feeders as u64 * SWEEP_FEEDER_RATE
    }
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "perf_service",
        "threaded service fan-in sweep: feeders x {16, 64, 256, 1024} at \
         300k ids/s offered per feeder, replicas x {1, 3}",
        "credit flow control holds the overload regime: throughput scales \
         with feeders until the service saturates (256-feeder cells beat \
         64-feeder cells), duplicate ids ~0 across the sweep, and the \
         oversubscribed 1024-feeder point degrades gracefully instead of \
         melting into a retransmission storm",
    );

    let secs = args.secs(4, 2);
    let mut cells: Vec<Cell> = Vec::new();
    for &feeders in &[16usize, 64, 256, 1024] {
        for &replicas in &[1usize, 3] {
            let cfg = EunomiaBenchConfig {
                feeders,
                replicas,
                duration: Duration::from_secs(secs),
                feeder_rate: Some(SWEEP_FEEDER_RATE),
                ..EunomiaBenchConfig::default()
            };
            let (_, stats) = run_eunomia_service_with_stats(&cfg);
            cells.push(Cell {
                feeders,
                replicas,
                stats,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let s = &c.stats;
            let stab = s.stabilization_latencies_ms(&[50.0, 99.0]);
            vec![
                format!("{}", c.feeders),
                format!("{}", c.replicas),
                format!("{:.0}", c.offered_ids_per_sec() as f64 / 1000.0),
                format!("{}", s.stabilized_ids),
                format!("{:.0}", s.ids_per_sec() / 1000.0),
                format!("{:.0}", s.mean_batch_size()),
                format!("{}", s.queue_depth_high_water),
                eunomia_bench::fmt_ms(stab[0]),
                eunomia_bench::fmt_ms(stab[1]),
                format!("{}", s.duplicate_ids),
                format!("{}", s.credit_stalls),
                format!("{}", s.retransmitted_ids),
                s.advertised_credits
                    .min()
                    .map_or_else(|| "-".into(), |v| format!("{v}")),
            ]
        })
        .collect();
    eunomia_bench::print_table(
        &[
            "feeders",
            "replicas",
            "offered k/s",
            "stabilized",
            "kids/s",
            "mean batch",
            "queue hw",
            "stab p50 (ms)",
            "stab p99 (ms)",
            "dups",
            "credit stalls",
            "resent",
            "credit min",
        ],
        &rows,
    );

    // Speedup vs the recorded pre-refactor service on the default config.
    // Best-of-3 to shed scheduler noise — the baseline constant was
    // likewise the best of repeated runs on an otherwise idle host.
    let best_stats = (0..3)
        .map(|_| {
            let cfg = EunomiaBenchConfig {
                duration: Duration::from_secs(secs),
                ..EunomiaBenchConfig::default()
            };
            run_eunomia_service_with_stats(&cfg).1
        })
        .max_by(|a, b| a.ids_per_sec().total_cmp(&b.ids_per_sec()))
        .expect("three runs");
    let best = best_stats.ids_per_sec();
    let speedup = best / PRE_REFACTOR_IDS_PER_SEC;
    println!(
        "\ndefault config (16 feeders, 1 replica), best of 3: {:.0} ids/s = {speedup:.2}x \
         the pre-refactor service ({PRE_REFACTOR_IDS_PER_SEC:.0} ids/s)",
        best
    );

    // The RunReport plumbing: pair a simulated deployment with the
    // measured threaded-service stats so one report carries engine *and*
    // service counters (`RunReport.service` is the `engine` analogue for
    // the real-thread side).
    let paired = run(SystemId::EunomiaKv, &Scenario::small_test().seed(args.seed))
        .with_service_stats(best_stats);
    let svc = paired.service.as_ref().expect("just attached");
    println!(
        "paired RunReport: simulated {:.0} ops/s over {} engine events + threaded \
         service {:.0} ids/s (stab p99 {} ms)",
        paired.throughput,
        paired.engine.events,
        svc.ids_per_sec(),
        eunomia_bench::fmt_ms(svc.stabilization_latency_ms(99.0)),
    );

    let json = render_json(&cells, best, speedup, args.quick);
    eunomia_bench::write_artifact(
        "BENCH_service.json",
        &json,
        &["runs", "baseline_pre_refactor"],
        cells.len(),
        "runs",
    );
}

fn render_json(cells: &[Cell], best_default: f64, speedup: f64, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_service\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"sweep_feeder_rate_ids_per_sec\": {SWEEP_FEEDER_RATE},"
    );
    out.push_str("  \"baseline_pre_refactor\": {\n");
    out.push_str("    \"feeders\": 16,\n");
    out.push_str("    \"replicas\": 1,\n");
    let _ = writeln!(out, "    \"ids_per_sec\": {PRE_REFACTOR_IDS_PER_SEC:.0},");
    out.push_str(
        "    \"note\": \"old service path: Mutex+Condvar channel shim, per-id \
         ReplicaState rb-tree ingest, per-id window clones\"\n",
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"default_best_ids_per_sec\": {best_default:.0},");
    let _ = writeln!(out, "  \"default_speedup_vs_baseline\": {speedup:.3},");
    out.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.stats;
        let stab = s.stabilization_latencies_ms(&[50.0, 99.0]);
        out.push_str("    {");
        let _ = write!(
            out,
            "\"feeders\": {}, \"replicas\": {}, \"offered_ids_per_sec\": {}, \
             \"wall_secs\": {:.3}, \
             \"stabilized_ids\": {}, \"ids_per_sec\": {:.0}, \"frames\": {}, \
             \"mean_batch\": {:.1}, \"queue_depth_high_water\": {}, \
             \"stab_p50_ms\": {}, \"stab_p99_ms\": {}, \
             \"accepted_ids\": {}, \"duplicate_ids\": {}, \
             \"credit_stalls\": {}, \"ring_full_stalls\": {}, \
             \"retransmitted_ids\": {}, \"credit_min\": {}, \
             \"credit_p50\": {}, \"credit_timeline_min\": [{}]",
            c.feeders,
            c.replicas,
            c.offered_ids_per_sec(),
            s.elapsed.as_secs_f64(),
            s.stabilized_ids,
            s.ids_per_sec(),
            s.frames,
            s.mean_batch_size(),
            s.queue_depth_high_water,
            json_opt(stab[0]),
            json_opt(stab[1]),
            s.accepted_ids,
            s.duplicate_ids,
            s.credit_stalls,
            s.ring_full_stalls,
            s.retransmitted_ids,
            json_u64_opt(s.advertised_credits.min()),
            json_u64_opt(s.advertised_credits.percentile(50.0)),
            s.credit_timeline
                .iter()
                .map(|&v| {
                    if v == ServiceStats::NO_CREDIT_SAMPLE {
                        "null".to_string()
                    } else {
                        v.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

fn json_u64_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}
