//! Figure 1 — motivation: the visibility-latency / throughput tradeoff.
//!
//! Sweeps the clock-computation (global stabilization) interval for
//! GentleRain and Cure and reports, per interval: the 90th-percentile
//! remote-update visibility extra delay at dc1 for updates originating at
//! dc0 (the paper's dc2/dc1), and the throughput penalty versus an
//! eventually consistent store. S-Seq and A-Seq are interval-independent
//! and reported once. Workload: 50:50 uniform (updates stress both the
//! sequencer round trip and the stabilization machinery).

use eunomia_baselines::{gs, seq};
use eunomia_bench::{banner, fmt_delta_pct, fmt_ms, geo_config, print_table, BenchArgs};
use eunomia_geo::{run_system, SystemKind};
use eunomia_sim::units;
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(30, 10);
    banner(
        "Figure 1",
        "visibility latency vs throughput tradeoff (3 DCs, 80/80/160 ms RTT)",
        "GentleRain/Cure visibility grows with the interval; their throughput \
         penalty shrinks with it but Cure keeps a per-op vector cost (paper: \
         -11.6% even at 100 ms); S-Seq pays ~-15% from the synchronous \
         sequencer while A-Seq shows the penalty vanishes off the critical path",
    );

    let base = |seed| {
        let mut cfg = geo_config(secs, seed);
        cfg.workload = WorkloadConfig::paper(50, false);
        cfg
    };

    let eventual = run_system(SystemKind::Eventual, base(args.seed));
    println!("baseline (Eventual): {:.0} ops/s\n", eventual.throughput);

    let mut rows = Vec::new();
    for interval_ms in [1u64, 10, 20, 50, 100] {
        let mut cfg = base(args.seed + interval_ms);
        cfg.stab_aggregation_interval = units::ms(interval_ms);
        let gr = gs::run(gs::StabilizationMode::Scalar, cfg.clone());
        let cu = gs::run(gs::StabilizationMode::Vector, cfg);
        rows.push(vec![
            format!("{interval_ms}"),
            fmt_ms(gr.visibility_percentile_ms(0, 1, 90.0)),
            fmt_ms(cu.visibility_percentile_ms(0, 1, 90.0)),
            fmt_delta_pct(gr.throughput, eventual.throughput),
            fmt_delta_pct(cu.throughput, eventual.throughput),
        ]);
    }
    print_table(
        &[
            "interval_ms",
            "GentleRain vis p90 (ms)",
            "Cure vis p90 (ms)",
            "GentleRain thpt",
            "Cure thpt",
        ],
        &rows,
    );

    println!();
    let sseq = seq::run(seq::SeqMode::Synchronous, base(args.seed + 1000));
    let aseq = seq::run(seq::SeqMode::Asynchronous, base(args.seed + 2000));
    let mut rows = Vec::new();
    for r in [&sseq, &aseq] {
        rows.push(vec![
            r.system.clone(),
            fmt_ms(r.visibility_percentile_ms(0, 1, 90.0)),
            fmt_delta_pct(r.throughput, eventual.throughput),
        ]);
    }
    print_table(&["system", "vis p90 (ms)", "thpt vs eventual"], &rows);
}
