//! Figure 1 — motivation: the visibility-latency / throughput tradeoff.
//!
//! Sweeps the clock-computation (global stabilization) interval for
//! GentleRain and Cure and reports, per interval: the 90th-percentile
//! remote-update visibility extra delay at dc1 for updates originating at
//! dc0 (the paper's dc2/dc1), and the throughput penalty versus an
//! eventually consistent store. S-Seq and A-Seq are interval-independent
//! and reported once. Workload: 50:50 uniform (updates stress both the
//! sequencer round trip and the stabilization machinery).

use eunomia_bench::{banner, fmt_delta_pct, fmt_ms, paper_scenario, print_table, BenchArgs};
use eunomia_geo::{run, Sweep, SystemId};
use eunomia_sim::units;
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(30, 10);
    banner(
        "Figure 1",
        "visibility latency vs throughput tradeoff (3 DCs, 80/80/160 ms RTT)",
        "GentleRain/Cure visibility grows with the interval; their throughput \
         penalty shrinks with it but Cure keeps a per-op vector cost (paper: \
         -11.6% even at 100 ms); S-Seq pays ~-15% from the synchronous \
         sequencer while A-Seq shows the penalty vanishes off the critical \
         path",
    );

    let base = |seed| paper_scenario(secs, seed).workload(WorkloadConfig::paper(50, false));

    let eventual = run(SystemId::Eventual, &base(args.seed));
    println!("baseline (Eventual): {:.0} ops/s\n", eventual.throughput);

    // [GentleRain, Cure] x [stabilization interval] grid. Filtered
    // non-fatally: `--system sseq` legitimately selects only the
    // sequencer half of this figure.
    let gs_systems: Vec<SystemId> = [SystemId::GentleRain, SystemId::Cure]
        .into_iter()
        .filter(|&s| args.wants(s))
        .collect();
    if !gs_systems.is_empty() {
        let intervals = [1u64, 10, 20, 50, 100];
        let results = Sweep::new()
            .systems(gs_systems.iter().copied())
            .scenarios(intervals.iter().map(|&ms| {
                base(args.seed + ms)
                    .named(format!("{ms}"))
                    .with(|c| c.stab_aggregation_interval = units::ms(ms))
            }))
            .run();

        let mut headers = vec!["interval_ms".to_string()];
        for s in &gs_systems {
            headers.push(format!("{s} vis p90 (ms)"));
        }
        for s in &gs_systems {
            headers.push(format!("{s} thpt"));
        }
        let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        let rows: Vec<Vec<String>> = results
            .scenarios()
            .iter()
            .map(|sc| {
                let mut row = vec![sc.clone()];
                for &s in &gs_systems {
                    let r = results.get(s, sc).expect("cell ran");
                    row.push(fmt_ms(r.visibility_percentile_ms(0, 1, 90.0)));
                }
                for &s in &gs_systems {
                    let r = results.get(s, sc).expect("cell ran");
                    row.push(fmt_delta_pct(r.throughput, eventual.throughput));
                }
                row
            })
            .collect();
        print_table(&header_refs, &rows);
        println!();
    }
    let mut rows = Vec::new();
    for (id, seed_off) in [(SystemId::SSeq, 1000u64), (SystemId::ASeq, 2000)] {
        if !args.wants(id) {
            continue;
        }
        let r = run(id, &base(args.seed + seed_off));
        rows.push(vec![
            r.system.clone(),
            fmt_ms(r.visibility_percentile_ms(0, 1, 90.0)),
            fmt_delta_pct(r.throughput, eventual.throughput),
        ]);
    }
    if !rows.is_empty() {
        print_table(&["system", "vis p90 (ms)", "thpt vs eventual"], &rows);
    }
}
