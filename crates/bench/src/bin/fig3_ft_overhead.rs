//! Figure 3 — fault-tolerance overhead of Eunomia vs the sequencer.
//!
//! Normalized maximum throughput of the replicated Eunomia service
//! (replicas never coordinate — their outputs are order-insensitive — so
//! the overhead is just the duplicate feeder traffic) against the
//! chain-replicated sequencer (every request traverses the whole chain
//! before the client is released). Paper: ≈9% penalty for Eunomia at any
//! replica count vs ≈33% for a 3-replica sequencer chain.
//!
//! Note: in this implementation the non-fault-tolerant service *is* the
//! 1-replica configuration (the ack/resend machinery is always on), so
//! "Eunomia 1-FT" is 1.00 by construction and the paper's Non-FT → 1-FT
//! step is folded into it.

use eunomia_bench::{banner, print_table, BenchArgs};
use eunomia_runtime::sequencer::{run_sequencer, SequencerBenchConfig};
use eunomia_runtime::service::{run_eunomia_service, EunomiaBenchConfig};
use std::time::Duration;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(4, 2);
    banner(
        "Figure 3",
        "normalized throughput of fault-tolerant Eunomia and sequencer",
        "replicating Eunomia costs little at any replica count (paper: ~9%); \
         chain-replicating the sequencer costs much more (paper: ~33%)",
    );

    let eunomia = |replicas| {
        let cfg = EunomiaBenchConfig {
            feeders: 30,
            replicas,
            duration: Duration::from_secs(secs),
            ..EunomiaBenchConfig::default()
        };
        run_eunomia_service(&cfg).ops_per_sec()
    };
    let e1 = eunomia(1);
    let e2 = eunomia(2);
    let e3 = eunomia(3);

    let sequencer = |chain| {
        run_sequencer(&SequencerBenchConfig {
            clients: 30,
            chain,
            duration: Duration::from_secs(secs),
        })
        .ops_per_sec()
    };
    let s1 = sequencer(1);
    let s3 = sequencer(3);

    // On this host all replica threads share the available cores, so an
    // R-replica service is bounded by 1/R of raw throughput even with zero
    // protocol overhead; the paper's replicas run on separate machines and
    // parallelize. The "work-normalized" column multiplies back by R —
    // the hardware-neutral measure of the *protocol* overhead (duplicate
    // feeder traffic, ack processing), which is what the paper's ~9% is.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let adj = |tput: f64, replicas: f64| tput * (replicas / cores as f64).max(1.0);
    let rows = vec![
        vec![
            "Eunomia Non-FT (1 replica)".into(),
            format!("{:.0}", e1 / 1000.0),
            "1.00".into(),
            "1.00".into(),
        ],
        vec![
            "Eunomia 2-FT".into(),
            format!("{:.0}", e2 / 1000.0),
            format!("{:.2}", e2 / e1),
            format!("{:.2}", adj(e2, 2.0) / adj(e1, 1.0)),
        ],
        vec![
            "Eunomia 3-FT".into(),
            format!("{:.0}", e3 / 1000.0),
            format!("{:.2}", e3 / e1),
            format!("{:.2}", adj(e3, 3.0) / adj(e1, 1.0)),
        ],
        vec![
            "Sequencer Non-FT".into(),
            format!("{:.0}", s1 / 1000.0),
            format!("{:.2}", s1 / e1),
            "-".into(),
        ],
        vec![
            "Sequencer 3-FT (chain)".into(),
            format!("{:.0}", s3 / 1000.0),
            format!("{:.2}", s3 / e1),
            "-".into(),
        ],
    ];
    print_table(
        &[
            "service",
            "kops/s",
            "normalized (raw)",
            "normalized (work, x replicas/cores)",
        ],
        &rows,
    );
    println!("\nhost cores: {cores} (replica threads time-share; the paper's replicas are separate machines)");
    println!(
        "Eunomia 3-FT keeps {:.0}% of Non-FT work-normalized (paper ~91%); sequencer 3-FT keeps {:.0}% of its Non-FT (paper ~67%)",
        100.0 * adj(e3, 3.0) / adj(e1, 1.0),
        100.0 * s3 / s1.max(1.0)
    );
}
