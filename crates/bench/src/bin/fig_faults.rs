//! Fault matrix: all six systems across the five fault presets
//! (`partitioned-3dc`, `flapping-links`, `gray-wan`, `hub-and-spoke`,
//! `asymmetric-5dc`),
//! reporting availability-under-failure metrics and *asserting* that
//! every system converges after the last heal. Results go to
//! `BENCH_faults.json` for the CI fault-matrix gate.
//!
//! The paper's evaluation only ever crashes Eunomia leaders; related
//! systems (Okapi, SwiftCloud) make availability under WAN misbehavior a
//! headline metric. This harness closes that gap: partitions and gray
//! links stall *visibility* (and inflate staleness exposure) while local
//! throughput keeps serving — and once the fault heals, every pre-heal
//! update must still land at every datacenter.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin fig_faults [-- --quick]`
//!
//! `--scenario NAME` swaps in any preset; `--quick` shrinks the runs
//! (fault windows scale proportionally).

use eunomia_bench::BenchArgs;
use eunomia_geo::{run, Scenario, SystemId};
use std::fmt::Write as _;

struct Cell {
    system: SystemId,
    scenario: String,
    sim_secs: f64,
    throughput: f64,
    p99_ms: f64,
    vis_p90_ms: Option<f64>,
    stale_reads: u64,
    deferred: u64,
    retransmits: u64,
    convergence_ms: Option<f64>,
    /// `None` = not measurable for this run (no heal / no apply log);
    /// `Some(n)` = pre-heal updates that never reached every DC.
    unconverged: Option<usize>,
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "fig_faults",
        "fault matrix: six systems x {partitioned-3dc, flapping-links, gray-wan, \
         hub-and-spoke, asymmetric-5dc}",
        "local throughput survives WAN faults; visibility stalls and recovers; \
         every system converges after the heal (unconverged = 0)",
    );

    let secs = args.secs(30, 10);
    // `--scenario` names that match a fault preset are rebuilt at the
    // requested duration (their windows scale), so `--quick --scenario
    // gray-wan` really is quick; other presets run as named.
    let scenarios: Vec<Scenario> = args
        .scenarios_or(Scenario::fault_presets(secs))
        .into_iter()
        .map(|named| {
            Scenario::fault_presets(secs)
                .into_iter()
                .find(|f| f.name() == named.name())
                .unwrap_or(named)
                .seed(args.seed)
        })
        .collect();
    let systems = args.systems(&SystemId::all());

    let mut cells: Vec<Cell> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for scenario in &scenarios {
        for &sys in &systems {
            let report = run(sys, scenario);
            // One analysis pass per run: converged-ness and the ms both
            // derive from the same HealConvergence.
            let hc = report.heal_convergence();
            let unconverged = hc.map(|c| c.unconverged);
            let convergence_ms = hc.and_then(|c| c.after_heal_ms());
            if report.last_heal.is_some() && scenario.cfg().apply_log {
                match unconverged {
                    Some(0) => {}
                    Some(n) => failures.push(format!(
                        "{sys} x {}: {n} pre-heal updates never reached every DC",
                        scenario.name()
                    )),
                    None => failures.push(format!(
                        "{sys} x {}: convergence not measurable (empty apply log?)",
                        scenario.name()
                    )),
                }
            }
            cells.push(Cell {
                system: sys,
                scenario: scenario.name().to_string(),
                sim_secs: scenario.cfg().duration as f64 / 1e9,
                throughput: report.throughput,
                p99_ms: report.p99_latency_ms,
                vis_p90_ms: report.visibility_percentile_ms(0, 1, 90.0),
                stale_reads: report.stale_reads,
                deferred: report.engine.messages_deferred,
                retransmits: report.engine.retransmits,
                convergence_ms,
                unconverged,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.system.to_string(),
                format!("{:.0}", c.throughput),
                format!("{:.2}", c.p99_ms),
                eunomia_bench::fmt_ms(c.vis_p90_ms),
                format!("{}", c.stale_reads),
                format!("{}", c.deferred),
                format!("{}", c.retransmits),
                eunomia_bench::fmt_ms(c.convergence_ms),
            ]
        })
        .collect();
    eunomia_bench::print_table(
        &[
            "scenario",
            "system",
            "ops/s",
            "op p99 (ms)",
            "vis p90 dc0->dc1 (ms)",
            "stale reads",
            "deferred msgs",
            "retransmits",
            "converge after heal (ms)",
        ],
        &rows,
    );

    let json = render_json(&cells, args.quick);
    eunomia_bench::write_artifact("BENCH_faults.json", &json, &["runs"], cells.len(), "runs");

    if !failures.is_empty() {
        eprintln!("\nCONVERGENCE FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all {} runs converged after their last heal", cells.len());
}

fn render_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig_faults\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        // Three-valued: true/false when convergence was measurable,
        // null for runs without a heal or an apply log (a fault-free
        // `--scenario small-test` run is healthy, not "unconverged").
        let converged = match c.unconverged {
            Some(0) => "true".to_string(),
            Some(_) => "false".to_string(),
            None => "null".to_string(),
        };
        out.push_str("    {");
        let _ = write!(
            out,
            "\"system\": \"{}\", \"scenario\": \"{}\", \"sim_seconds\": {}, \
             \"throughput_ops_sec\": {:.1}, \
             \"p99_ms\": {:.3}, \"stale_reads\": {}, \"messages_deferred\": {}, \
             \"retransmits\": {}, \"converged\": {converged}, \"convergence_after_heal_ms\": {}",
            c.system,
            c.scenario,
            c.sim_secs,
            c.throughput,
            c.p99_ms,
            c.stale_reads,
            c.deferred,
            c.retransmits,
            match c.convergence_ms {
                Some(ms) => format!("{ms:.3}"),
                None => "null".to_string(),
            },
        );
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
