//! Ablation — the receiver's apply discipline (Algorithm 5).
//!
//! The published receiver keeps exactly one APPLY in flight: it sends one,
//! awaits the `ok`, and restarts `FLUSH`. That serialization is what makes
//! dependency checking trivial, but it caps the remote-apply rate at one
//! per intra-datacenter round trip — under a write-heavy workload the
//! pending queues back up and visibility grows, while client throughput
//! (which never touches the receiver) is unaffected. The `pipelined`
//! extension allows one in-flight APPLY per origin datacenter.
//!
//! This ablation quantifies that trade at 50:50 and 90:10.

use eunomia_bench::{banner, fmt_ms, paper_scenario, print_table, BenchArgs};
use eunomia_geo::{run, SystemId};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    // This ablation exercises EunomiaKV only; --system must include it.
    args.systems(&[SystemId::EunomiaKv]);
    let secs = args.secs(30, 10);
    banner(
        "Ablation: receiver discipline",
        "faithful Alg. 5 (one in-flight APPLY) vs pipelined (one per origin DC)",
        "identical throughput (the receiver is off the client path); \
         write-heavy visibility queues shrink with pipelining",
    );

    let mut rows = Vec::new();
    for read_pct in [90u8, 50] {
        for pipelined in [false, true] {
            let scenario = paper_scenario(secs, args.seed)
                .named(format!(
                    "{}:{}-{}",
                    read_pct,
                    100 - read_pct,
                    if pipelined { "pipelined" } else { "faithful" }
                ))
                .workload(WorkloadConfig::paper(read_pct, false))
                .with(|cfg| cfg.pipelined_receiver = pipelined);
            let r = run(SystemId::EunomiaKv, &scenario);
            // One sort of the visibility samples serves all three
            // percentiles.
            let vis = r.visibility_percentiles_ms(0, 1, &[50.0, 90.0, 99.0]);
            let mut row = vec![
                format!("{}:{}", read_pct, 100 - read_pct),
                if pipelined {
                    "pipelined".into()
                } else {
                    "faithful".into()
                },
                format!("{:.0}", r.throughput),
            ];
            row.extend(vis.into_iter().map(fmt_ms));
            rows.push(row);
        }
    }
    print_table(
        &[
            "workload",
            "receiver",
            "ops/s",
            "vis p50 (ms)",
            "vis p90 (ms)",
            "vis p99 (ms)",
        ],
        &rows,
    );
}
