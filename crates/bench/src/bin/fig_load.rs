//! Open-loop load sweep: throughput-vs-p99 knee curves for all six
//! systems.
//!
//! Closed-loop clients (the paper's Basho Bench setup) slow down with
//! the server, so saturation never shows up in their latency numbers —
//! coordinated omission. This harness drives each system with
//! *open-loop* Poisson arrivals at increasing per-client rates, measures
//! latency from the **intended** arrival time, and reports the
//! saturation knee: the first offered rate where the system stops
//! keeping up (achieved/offered < 0.95) or its p99 blows past 10x the
//! low-load baseline. Results go to `BENCH_load.json` for the CI
//! bench-smoke gate.
//!
//! The sweep runs the paper 3-DC deployment for every system (a knee is
//! *required* there — if the top rate doesn't saturate a system, the
//! sweep is too short and the binary exits nonzero) and, for scale, the
//! 8-DC `massive` deployment for the two native systems (informational;
//! no knee required).
//!
//! Usage: `cargo run --release -p eunomia-bench --bin fig_load [-- --quick]`

use eunomia_bench::BenchArgs;
use eunomia_geo::{run, Scenario, SystemId};
use eunomia_sim::units;
use std::fmt::Write as _;

/// Per-client offered rates swept on the paper 3-DC deployment. The
/// one-op-in-flight open-loop channel saturates near 1/(local service
/// time) ~ a few hundred Hz per client, so the top rates overload every
/// system.
const RATES_3DC: &[f64] = &[100.0, 200.0, 400.0, 800.0, 1600.0];

/// Per-client rates for the informational `massive` sweep (8 DCs, 64
/// clients — only the ends of the curve, the runs are expensive).
const RATES_MASSIVE: &[f64] = &[200.0, 800.0];

/// A system has saturated when it completes less than this fraction of
/// what was offered...
const ACHIEVED_FLOOR: f64 = 0.95;
/// ...or its p99 exceeds this multiple of the lowest-rate p99.
const P99_BLOWUP: f64 = 10.0;

struct Point {
    offered_hz_per_client: f64,
    offered_hz: f64,
    achieved_hz: f64,
    p50_ms: f64,
    p99_ms: f64,
    queue_p99_ms: f64,
    dropped: u64,
}

struct Curve {
    system: SystemId,
    scenario: &'static str,
    points: Vec<Point>,
    /// Index of the first saturated point, if the sweep reached one.
    knee: Option<usize>,
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "fig_load",
        "open-loop load sweep: offered rate vs achieved rate and CO-free p99",
        "latency is flat until the knee, then p99 blows up while achieved \
         throughput plateaus; every system has a knee on paper-3dc",
    );

    let secs = args.secs(20, 6);

    let mut curves: Vec<Curve> = Vec::new();
    for sys in args.systems(&SystemId::all()) {
        curves.push(sweep(sys, "paper-3dc", RATES_3DC, |rate| {
            Scenario::open_loop_poisson(rate)
                .seconds(secs)
                .seed(args.seed)
        }));
    }
    // Scale check on the two native systems; quick mode skips it (the CI
    // gate only scores the paper-3dc knees, and 8-DC open-loop runs
    // dominate wall time).
    if !args.quick {
        for sys in [SystemId::Eventual, SystemId::EunomiaKv] {
            if !args.wants(sys) {
                continue;
            }
            curves.push(sweep(sys, "massive", RATES_MASSIVE, |rate| {
                Scenario::massive()
                    .with(|cfg| {
                        cfg.open_loop = Some(eunomia_geo::OpenLoopConfig {
                            arrivals: eunomia_workload::ArrivalSpec::Poisson { rate_hz: rate },
                            queue_limit: 64,
                        });
                    })
                    .seed(args.seed)
            }));
        }
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in &curves {
        for (i, p) in c.points.iter().enumerate() {
            rows.push(vec![
                c.scenario.to_string(),
                c.system.to_string(),
                format!("{:.0}", p.offered_hz_per_client),
                format!("{:.0}", p.offered_hz),
                format!("{:.0}", p.achieved_hz),
                format!("{:.3}", p.achieved_hz / p.offered_hz),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p99_ms),
                format!("{:.2}", p.queue_p99_ms),
                format!("{}", p.dropped),
                if c.knee == Some(i) { "<- knee" } else { "" }.to_string(),
            ]);
        }
    }
    eunomia_bench::print_table(
        &[
            "scenario",
            "system",
            "offered/client (Hz)",
            "offered (Hz)",
            "achieved (Hz)",
            "ach/off",
            "p50 (ms)",
            "p99 (ms)",
            "queue p99 (ms)",
            "dropped",
            "",
        ],
        &rows,
    );

    let json = render_json(&curves, args.quick);
    eunomia_bench::write_artifact(
        "BENCH_load.json",
        &json,
        &["curves"],
        curves.len(),
        "curves",
    );

    let missing: Vec<String> = curves
        .iter()
        .filter(|c| c.scenario == "paper-3dc" && c.knee.is_none())
        .map(|c| c.system.to_string())
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "\nNO KNEE FOUND on paper-3dc for: {} — raise the top sweep rate",
            missing.join(", ")
        );
        std::process::exit(1);
    }
    println!("every paper-3dc sweep found its saturation knee");
}

fn sweep(
    sys: SystemId,
    scenario: &'static str,
    rates: &[f64],
    mk: impl Fn(f64) -> Scenario,
) -> Curve {
    let mut points = Vec::new();
    for &rate in rates {
        let s = mk(rate);
        let report = run(sys, &s);
        let load = report
            .load
            .as_ref()
            .expect("open-loop scenario must produce LoadStats");
        let (offered_hz, achieved_hz) = report
            .load_rates_hz()
            .expect("open-loop scenario must produce load rates");
        // One batched scan for the queue-wait tail (the latency tail is
        // already on the report, measured from intended arrival).
        let queue_p99 = load.queue_wait.percentiles(&[99.0])[0].unwrap_or(0);
        points.push(Point {
            offered_hz_per_client: rate,
            offered_hz,
            achieved_hz,
            p50_ms: report.p50_latency_ms,
            p99_ms: report.p99_latency_ms,
            queue_p99_ms: units::to_ms(queue_p99),
            dropped: load.dropped,
        });
    }
    let baseline_p99 = points.first().map(|p| p.p99_ms).unwrap_or(0.0);
    let knee = points.iter().position(|p| {
        p.achieved_hz / p.offered_hz < ACHIEVED_FLOOR || p.p99_ms > P99_BLOWUP * baseline_p99
    });
    Curve {
        system: sys,
        scenario,
        points,
        knee,
    }
}

fn render_json(curves: &[Curve], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig_load\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"curves\": [\n");
    for (i, c) in curves.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"system\": \"{}\", \"scenario\": \"{}\",",
            c.system, c.scenario
        );
        out.push_str("      \"points\": [\n");
        for (j, p) in c.points.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"offered_hz_per_client\": {:.1}, \"offered_hz\": {:.1}, \
                 \"achieved_hz\": {:.1}, \"achieved_fraction\": {:.4}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"queue_p99_ms\": {:.3}, \
                 \"dropped\": {}}}",
                p.offered_hz_per_client,
                p.offered_hz,
                p.achieved_hz,
                p.achieved_hz / p.offered_hz,
                p.p50_ms,
                p.p99_ms,
                p.queue_p99_ms,
                p.dropped,
            );
            out.push_str(if j + 1 == c.points.len() { "\n" } else { ",\n" });
        }
        out.push_str("      ],\n");
        let knee = match c.knee {
            Some(k) => {
                let p = &c.points[k];
                format!(
                    "{{\"offered_hz_per_client\": {:.1}, \"achieved_hz\": {:.1}, \"p99_ms\": {:.3}}}",
                    p.offered_hz_per_client, p.achieved_hz, p.p99_ms
                )
            }
            None => "null".to_string(),
        };
        let _ = writeln!(out, "      \"knee\": {knee}");
        out.push_str(if i + 1 == curves.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
