//! Figure 5 — geo-replicated throughput across workload mixes.
//!
//! Runs Eventual, EunomiaKV, GentleRain and Cure on the paper's 3-DC
//! deployment for every cell of the workload grid: read:write ratios
//! {50:50, 75:25, 90:10, 99:1} crossed with {uniform (U), power-law (P)}
//! key distributions (100 k keys, 100-byte values). Paper expectation:
//! EunomiaKV tracks eventual consistency closely (−4.7% on average, −1%
//! when read-heavy) while GentleRain and always-lower Cure sit clearly
//! below, and everything degrades as the update fraction grows.

use eunomia_baselines::gs;
use eunomia_bench::{banner, fmt_delta_pct, geo_config, print_table, BenchArgs};
use eunomia_geo::{run_system, SystemKind};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(30, 8);
    banner(
        "Figure 5",
        "throughput: EunomiaKV vs eventual consistency and sequencer-free baselines",
        "Eventual >= EunomiaKV (-4.7% avg) > GentleRain > Cure on every cell; \
         throughput falls as updates increase",
    );

    let mut rows = Vec::new();
    let mut eunomia_drops = Vec::new();
    for (label, workload) in WorkloadConfig::figure5_cells() {
        let with_workload = |seed_off: u64| {
            let mut cfg = geo_config(secs, args.seed + seed_off);
            cfg.workload = workload.clone();
            cfg
        };
        let ev = run_system(SystemKind::Eventual, with_workload(1));
        let eu = run_system(SystemKind::EunomiaKv, with_workload(2));
        let gr = gs::run(gs::StabilizationMode::Scalar, with_workload(3));
        let cu = gs::run(gs::StabilizationMode::Vector, with_workload(4));
        eunomia_drops.push(eu.throughput / ev.throughput - 1.0);
        rows.push(vec![
            label,
            format!("{:.0}", ev.throughput),
            format!("{:.0}", eu.throughput),
            format!("{:.0}", gr.throughput),
            format!("{:.0}", cu.throughput),
            fmt_delta_pct(eu.throughput, ev.throughput),
        ]);
    }
    print_table(
        &[
            "workload",
            "Eventual",
            "EunomiaKV",
            "GentleRain",
            "Cure",
            "EunomiaKV vs Eventual",
        ],
        &rows,
    );
    let avg = eunomia_drops.iter().sum::<f64>() / eunomia_drops.len() as f64 * 100.0;
    println!("\nEunomiaKV average drop vs eventual: {avg:.1}% (paper: -4.7%)");
}
