//! Figure 5 — geo-replicated throughput across workload mixes.
//!
//! Runs Eventual, EunomiaKV, GentleRain and Cure on the paper's 3-DC
//! deployment for every cell of the workload grid: read:write ratios
//! {50:50, 75:25, 90:10, 99:1} crossed with {uniform (U), power-law (P)}
//! key distributions (100 k keys, 100-byte values). Paper expectation:
//! EunomiaKV tracks eventual consistency closely (−4.7% on average, −1%
//! when read-heavy) while GentleRain and always-lower Cure sit clearly
//! below, and everything degrades as the update fraction grows.

use eunomia_bench::{banner, paper_scenario, BenchArgs};
use eunomia_geo::{Sweep, SystemId};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(30, 8);
    banner(
        "Figure 5",
        "throughput: EunomiaKV vs eventual consistency and sequencer-free baselines",
        "Eventual >= EunomiaKV (-4.7% avg) > GentleRain > Cure on every cell; \
         throughput falls as updates increase",
    );

    let systems = args.systems(&[
        SystemId::Eventual,
        SystemId::EunomiaKv,
        SystemId::GentleRain,
        SystemId::Cure,
    ]);
    let results = Sweep::new()
        .systems(systems.iter().copied())
        .scenarios(WorkloadConfig::figure5_cells().into_iter().enumerate().map(
            |(i, (label, workload))| {
                paper_scenario(secs, args.seed + i as u64)
                    .named(label)
                    .workload(workload)
            },
        ))
        .run();

    print!("{}", results.throughput_table(Some(SystemId::Eventual)));

    if systems.contains(&SystemId::Eventual) && systems.contains(&SystemId::EunomiaKv) {
        let drops: Vec<f64> = results
            .scenarios()
            .iter()
            .filter_map(|sc| results.delta_vs(SystemId::EunomiaKv, SystemId::Eventual, sc))
            .collect();
        let avg = drops.iter().sum::<f64>() / drops.len().max(1) as f64 * 100.0;
        println!("\nEunomiaKV average drop vs eventual: {avg:.1}% (paper: -4.7%)");
    }
}
