//! Figure 6 — CDFs of remote update visibility extra delay.
//!
//! Left plot of the paper: updates from dc1 observed at dc2 (40 ms
//! one-way; here dc0 -> dc1). Right plot: dc2 -> dc3 (80 ms one-way; here
//! dc1 -> dc2). Values are the *extra* delay past the update's arrival —
//! network latency is factored out (§7.2.2). Paper expectations:
//! EunomiaKV makes ~95% of updates visible within ~15 ms extra and some
//! with ~no extra delay; Cure sits in between; GentleRain cannot go below
//! ~40 ms on the left plot because its scalar waits on the farthest
//! datacenter, while on the right plot (where the origin *is* the
//! farthest) its floor disappears and only stabilization lag remains.

use eunomia_bench::{banner, fmt_ms, paper_scenario, print_table, BenchArgs};
use eunomia_geo::harness::RunReport;
use eunomia_geo::{Sweep, SystemId};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(40, 10);
    banner(
        "Figure 6",
        "remote update visibility CDFs (extra delay past arrival, ms)",
        "EunomiaKV << Cure << GentleRain on dc0->dc1; GentleRain floor ~40 ms \
         there (scalar waits on the farthest DC) but not on dc1->dc2",
    );

    let systems = args.systems(&[SystemId::EunomiaKv, SystemId::GentleRain, SystemId::Cure]);
    let results = Sweep::new()
        .systems(systems.iter().copied())
        .scenario(
            paper_scenario(secs, args.seed)
                .named("fig6")
                .workload(WorkloadConfig::paper(90, false)),
        )
        .run();
    let report = |id: SystemId| results.get(id, "fig6").expect("cell ran");

    for (title, origin, dest) in [
        ("dc0 -> dc1 (40 ms one-way; paper's left plot)", 0u16, 1u16),
        ("dc1 -> dc2 (80 ms one-way; paper's right plot)", 1, 2),
    ] {
        println!("\n{title}");
        let headers: Vec<String> = std::iter::once("percentile".to_string())
            .chain(systems.iter().map(|s| s.to_string()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        // One sorted pass per system covers the whole percentile column.
        const PS: [f64; 7] = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];
        let columns: Vec<Vec<Option<f64>>> = systems
            .iter()
            .map(|&s| report(s).visibility_percentiles_ms(origin, dest, &PS))
            .collect();
        let mut rows = Vec::new();
        for (i, p) in PS.iter().enumerate() {
            let mut row = vec![format!("p{p:.0}")];
            for col in &columns {
                row.push(fmt_ms(col[i]));
            }
            rows.push(row);
        }
        print_table(&header_refs, &rows);
        let frac_within = |r: &RunReport, ms: f64| {
            let cdf = r.visibility_cdf_ms(origin, dest);
            cdf.iter()
                .take_while(|(v, _)| *v <= ms)
                .last()
                .map_or(0.0, |(_, f)| *f)
        };
        let within: Vec<String> = systems
            .iter()
            .map(|&s| format!("{s} {:.0}%", frac_within(report(s), 15.0) * 100.0))
            .collect();
        println!(
            "within 15 ms extra: {} (paper left plot: EunomiaKV ~95% / GentleRain 0% / Cure <50%)",
            within.join(", ")
        );
    }
}
