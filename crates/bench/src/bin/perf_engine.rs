//! Engine performance sweep: raw event throughput of the discrete-event
//! core across all six systems and five deployment scales (small-test,
//! paper-3dc, massive, huge-16dc, huge-24dc), written to
//! `BENCH_engine.json`.
//!
//! This harness seeds the repo's bench trajectory for the PR that
//! rebuilt the simulator hot path (zero-alloc dispatch, flat link state,
//! direct delivery). The pre-refactor baseline recorded below was
//! measured on the same scenario/seed with the old engine (per-dispatch
//! `proc_nodes` collect, HashMap link state, Arrive→Dispatch double-hop,
//! unbounded cancelled-timer set) so the speedup is directly comparable.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin perf_engine [-- --quick]`
//!
//! `--quick` shrinks simulated durations for a CI smoke run; the JSON is
//! marked accordingly. Wall-clock numbers are machine-dependent — the
//! committed baseline and the CI run measure *relative* speedup on
//! whatever machine executes them. `--assert-scale-floor` turns the
//! sweep into a gate: per system, massive must hold an event rate within
//! 1.75x of that system's paper-3dc rate (a machine-speed-invariant
//! ratio), or the binary exits non-zero.

use eunomia_bench::BenchArgs;
use eunomia_geo::{run, RunReport, Scenario, SystemId};
use std::fmt::Write as _;

/// Engine event throughput (events per wall-second) of the pre-refactor
/// engine on `paper-3dc` x EunomiaKV, 20 simulated seconds, seed 42:
/// best of repeated runs on the reference machine at the commit before
/// the hot-path rebuild ("PR 2" in CHANGES.md).
const PRE_REFACTOR_EVENTS_PER_SEC: f64 = 2_675_298.0;

struct Cell {
    scenario: String,
    sim_secs: f64,
    report: RunReport,
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "perf_engine",
        "raw engine event throughput, six systems x five scales",
        "post-refactor engine sustains >=2x the pre-refactor events/sec on paper-3dc",
    );

    // `--scenario` swaps any named preset(s) in for the default five
    // scales (the baseline-speedup comparison below only runs when the
    // selection still contains a 20-second paper-3dc). The huge presets
    // run trimmed to 30 simulated seconds here — long enough for steady
    // overflow migration, short enough that the full sweep stays under a
    // few minutes — while their native two minutes stay available via
    // `--scenario huge-16dc --seconds 120`.
    let scenarios = args.scenarios_or(vec![
        Scenario::small_test(),
        Scenario::paper_three_dc()
            .seconds(args.secs(20, 5))
            .seed(args.seed),
        Scenario::massive()
            .seconds(args.secs(10, 4))
            .seed(args.seed),
        Scenario::huge_sixteen_dc()
            .seconds(args.secs(30, 5))
            .seed(args.seed),
        Scenario::huge_twenty_four_dc()
            .seconds(args.secs(30, 5))
            .seed(args.seed),
    ]);
    let systems = args.systems(&SystemId::all());

    let mut cells: Vec<(SystemId, Cell)> = Vec::new();
    for scenario in &scenarios {
        for &sys in &systems {
            let report = run(sys, scenario);
            cells.push((
                sys,
                Cell {
                    scenario: scenario.name().to_string(),
                    sim_secs: scenario.cfg().duration as f64 / 1e9,
                    report,
                },
            ));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(sys, c)| {
            let e = &c.report.engine;
            vec![
                c.scenario.clone(),
                sys.to_string(),
                format!("{}", e.events),
                format!("{}", e.messages_routed),
                format!("{}", e.heap_peak),
                format!("{}", e.bucket_peak),
                format!("{}", e.overflow_migrations),
                format!("{}", e.arena_high_water),
                format!(
                    "{:.0}%",
                    100.0 * e.direct_deliveries as f64 / e.events.max(1) as f64
                ),
                format!("{:.1}", e.wall_ns as f64 / 1e6),
                format!("{:.0}", e.events_per_sec()),
            ]
        })
        .collect();
    eunomia_bench::print_table(
        &[
            "scenario",
            "system",
            "events",
            "messages",
            "heap peak",
            "bucket pk",
            "migrations",
            "arena hw",
            "direct",
            "wall (ms)",
            "events/s",
        ],
        &rows,
    );

    // Speedup vs the recorded pre-refactor engine, on the same cell the
    // baseline was measured on. Best-of-5 to shed scheduler noise (the
    // shared-machine variance between identical runs exceeds 20%) — the
    // baseline constant was likewise the best of repeated runs. Only
    // computed when the selection contains a paper-3dc at the baseline's
    // 20 simulated seconds (not under --quick, a --seconds override, or
    // a --scenario swap): anything else would record an
    // apples-to-oranges ratio, so the field stays null instead.
    let reference = scenarios
        .iter()
        .find(|s| s.name() == "paper-3dc" && s.cfg().duration == eunomia_sim::units::secs(20));
    let speedup = match (reference, systems.contains(&SystemId::EunomiaKv)) {
        (Some(scenario), true) => {
            let best = (0..5)
                .map(|_| run(SystemId::EunomiaKv, scenario).engine.events_per_sec())
                .fold(0.0f64, f64::max);
            Some(best / PRE_REFACTOR_EVENTS_PER_SEC)
        }
        _ => None,
    };
    if let Some(s) = speedup {
        println!(
            "\npaper-3dc x EunomiaKV (best of 5): {s:.2}x the pre-refactor engine \
             ({PRE_REFACTOR_EVENTS_PER_SEC:.0} events/s)"
        );
    }

    let json = render_json(&cells, speedup, args.quick);
    eunomia_bench::write_artifact(
        "BENCH_engine.json",
        &json,
        &["runs", "baseline_pre_refactor"],
        cells.len(),
        "runs",
    );

    // `--assert-scale-floor`: CI smoke gate. Per system, the massive
    // event rate must stay within SCALE_FLOOR of that system's paper-3dc
    // rate — the property this engine's scale work bought, phrased as a
    // ratio so it holds on any machine speed. Measurement is the hard
    // part, not the assertion: shared boxes drift ±20-30% over minutes,
    // and the paper-3dc cell finishes in tens of wall-milliseconds under
    // --quick (catching turbo bursts the 300ms+ massive cell averages
    // away), so sweep cells measured minutes apart routinely exaggerate
    // the ratio. A cell pair that misses the floor on the sweep numbers
    // is therefore re-measured as interleaved back-to-back (paper,
    // massive) pairs, taking the *minimum* pairwise ratio: interleaving
    // cancels drift, and min-of-pairs sheds one-sided noise — the gate
    // exists to catch structural collapse (the seed engine sat at
    // 1.9-2.6x even at its best moments), not scheduler jitter.
    if args.assert_scale_floor {
        let eps = |cells: &[(SystemId, Cell)], sys: SystemId, name: &str| {
            cells
                .iter()
                .find(|(s, c)| *s == sys && c.scenario == name)
                .map(|(_, c)| c.report.engine.events_per_sec())
        };
        let min_pair_ratio = |sys: SystemId| {
            let sc = |name: &str| scenarios.iter().find(|s| s.name() == name).expect("swept");
            // The paper cell runs its full 20 simulated seconds here even
            // under --quick: a 5-second cell finishes in ~30 wall-ms for
            // the lighter systems, and rates measured over a frequency-
            // boost burst are not comparable to a 300ms+ massive cell.
            let paper_sc = sc("paper-3dc").clone().seconds(20);
            let massive_sc = sc("massive");
            (0..3)
                .map(|_| {
                    let p = run(sys, &paper_sc).engine.events_per_sec();
                    let m = run(sys, massive_sc).engine.events_per_sec();
                    p / m
                })
                .fold(f64::INFINITY, f64::min)
        };
        // 1.75 holds with margin on the reference box (steady-state
        // min-pair ratios measure 1.3-1.7 per system) and the seed
        // engine's 1.9-2.6x collapse fails it for every system; holding
        // 1.5x across all six is the next optimization rung (ROADMAP).
        const SCALE_FLOOR: f64 = 1.75;
        let mut failures = Vec::new();
        for &sys in &systems {
            let (Some(paper), Some(massive)) =
                (eps(&cells, sys, "paper-3dc"), eps(&cells, sys, "massive"))
            else {
                continue;
            };
            let mut ratio = paper / massive;
            if ratio > SCALE_FLOOR {
                ratio = min_pair_ratio(sys);
            }
            if ratio > SCALE_FLOOR {
                failures.push(format!(
                    "{sys}: massive is {ratio:.2}x below paper-3dc \
                     (floor {SCALE_FLOOR}x; sweep cells {massive:.0} vs {paper:.0} events/s)"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("\nSCALE FLOOR VIOLATIONS:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("\nscale floor held: massive within {SCALE_FLOOR}x of paper-3dc per system");
    }
}

fn render_json(cells: &[(SystemId, Cell)], speedup: Option<f64>, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_engine\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"baseline_pre_refactor\": {\n");
    out.push_str("    \"scenario\": \"paper-3dc\",\n");
    out.push_str("    \"system\": \"EunomiaKV\",\n");
    out.push_str("    \"sim_seconds\": 20,\n");
    let _ = writeln!(
        out,
        "    \"events_per_sec\": {PRE_REFACTOR_EVENTS_PER_SEC:.0},"
    );
    out.push_str(
        "    \"note\": \"old engine: per-dispatch proc_nodes collect, HashMap link state, \
         Arrive->Dispatch double-hop, unbounded cancelled-timer set\"\n",
    );
    out.push_str("  },\n");
    match speedup {
        Some(s) => {
            let _ = writeln!(out, "  \"paper_3dc_speedup_vs_baseline\": {s:.3},");
        }
        None => out.push_str("  \"paper_3dc_speedup_vs_baseline\": null,\n"),
    }
    out.push_str("  \"runs\": [\n");
    for (i, (sys, c)) in cells.iter().enumerate() {
        let e = &c.report.engine;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"system\": \"{sys}\", \"scenario\": \"{}\", \"sim_seconds\": {}, \
             \"events\": {}, \"messages_routed\": {}, \"timers_set\": {}, \
             \"direct_deliveries\": {}, \"heap_peak\": {}, \"bucket_peak\": {}, \
             \"overflow_migrations\": {}, \"arena_high_water\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \
             \"throughput_ops_sec\": {:.1}",
            c.scenario,
            c.sim_secs,
            e.events,
            e.messages_routed,
            e.timers_set,
            e.direct_deliveries,
            e.heap_peak,
            e.bucket_peak,
            e.overflow_migrations,
            e.arena_high_water,
            e.wall_ns as f64 / 1e6,
            e.events_per_sec(),
            c.report.throughput,
        );
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
