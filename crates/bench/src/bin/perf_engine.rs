//! Engine performance sweep: raw event throughput of the discrete-event
//! core across all six systems and three deployment scales, written to
//! `BENCH_engine.json`.
//!
//! This harness seeds the repo's bench trajectory for the PR that
//! rebuilt the simulator hot path (zero-alloc dispatch, flat link state,
//! direct delivery). The pre-refactor baseline recorded below was
//! measured on the same scenario/seed with the old engine (per-dispatch
//! `proc_nodes` collect, HashMap link state, Arrive→Dispatch double-hop,
//! unbounded cancelled-timer set) so the speedup is directly comparable.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin perf_engine [-- --quick]`
//!
//! `--quick` shrinks simulated durations for a CI smoke run; the JSON is
//! marked accordingly. Wall-clock numbers are machine-dependent — the
//! committed baseline and the CI run measure *relative* speedup on
//! whatever machine executes them.

use eunomia_bench::BenchArgs;
use eunomia_geo::{run, RunReport, Scenario, SystemId};
use std::fmt::Write as _;

/// Engine event throughput (events per wall-second) of the pre-refactor
/// engine on `paper-3dc` x EunomiaKV, 20 simulated seconds, seed 42:
/// best of repeated runs on the reference machine at the commit before
/// the hot-path rebuild ("PR 2" in CHANGES.md).
const PRE_REFACTOR_EVENTS_PER_SEC: f64 = 2_675_298.0;

struct Cell {
    scenario: String,
    sim_secs: f64,
    report: RunReport,
}

fn main() {
    let args = BenchArgs::parse();
    eunomia_bench::banner(
        "perf_engine",
        "raw engine event throughput, six systems x three scales",
        "post-refactor engine sustains >=2x the pre-refactor events/sec on paper-3dc",
    );

    // `--scenario` swaps any named preset(s) in for the default three
    // scales (the baseline-speedup comparison below only runs when the
    // selection still contains a 20-second paper-3dc).
    let scenarios = args.scenarios_or(vec![
        Scenario::small_test(),
        Scenario::paper_three_dc()
            .seconds(args.secs(20, 5))
            .seed(args.seed),
        Scenario::massive()
            .seconds(args.secs(10, 4))
            .seed(args.seed),
    ]);
    let systems = args.systems(&SystemId::all());

    let mut cells: Vec<(SystemId, Cell)> = Vec::new();
    for scenario in &scenarios {
        for &sys in &systems {
            let report = run(sys, scenario);
            cells.push((
                sys,
                Cell {
                    scenario: scenario.name().to_string(),
                    sim_secs: scenario.cfg().duration as f64 / 1e9,
                    report,
                },
            ));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(sys, c)| {
            let e = &c.report.engine;
            vec![
                c.scenario.clone(),
                sys.to_string(),
                format!("{}", e.events),
                format!("{}", e.messages_routed),
                format!("{}", e.heap_peak),
                format!(
                    "{:.0}%",
                    100.0 * e.direct_deliveries as f64 / e.events.max(1) as f64
                ),
                format!("{:.1}", e.wall_ns as f64 / 1e6),
                format!("{:.0}", e.events_per_sec()),
            ]
        })
        .collect();
    eunomia_bench::print_table(
        &[
            "scenario",
            "system",
            "events",
            "messages",
            "heap peak",
            "direct",
            "wall (ms)",
            "events/s",
        ],
        &rows,
    );

    // Speedup vs the recorded pre-refactor engine, on the same cell the
    // baseline was measured on. Best-of-5 to shed scheduler noise (the
    // shared-machine variance between identical runs exceeds 20%) — the
    // baseline constant was likewise the best of repeated runs. Only
    // computed when the selection contains a paper-3dc at the baseline's
    // 20 simulated seconds (not under --quick, a --seconds override, or
    // a --scenario swap): anything else would record an
    // apples-to-oranges ratio, so the field stays null instead.
    let reference = scenarios
        .iter()
        .find(|s| s.name() == "paper-3dc" && s.cfg().duration == eunomia_sim::units::secs(20));
    let speedup = match (reference, systems.contains(&SystemId::EunomiaKv)) {
        (Some(scenario), true) => {
            let best = (0..5)
                .map(|_| run(SystemId::EunomiaKv, scenario).engine.events_per_sec())
                .fold(0.0f64, f64::max);
            Some(best / PRE_REFACTOR_EVENTS_PER_SEC)
        }
        _ => None,
    };
    if let Some(s) = speedup {
        println!(
            "\npaper-3dc x EunomiaKV (best of 5): {s:.2}x the pre-refactor engine \
             ({PRE_REFACTOR_EVENTS_PER_SEC:.0} events/s)"
        );
    }

    let json = render_json(&cells, speedup, args.quick);
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    // Self-check: the file must at least round-trip our own reader's
    // structural expectations before CI trusts it.
    let back = std::fs::read_to_string(path).expect("re-read BENCH_engine.json");
    assert!(
        back.trim_start().starts_with('{') && back.trim_end().ends_with('}'),
        "malformed BENCH_engine.json"
    );
    assert!(
        back.contains("\"runs\"") && back.contains("\"baseline_pre_refactor\""),
        "BENCH_engine.json missing required keys"
    );
    println!("\nwrote {path} ({} runs)", cells.len());
}

fn render_json(cells: &[(SystemId, Cell)], speedup: Option<f64>, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_engine\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"baseline_pre_refactor\": {\n");
    out.push_str("    \"scenario\": \"paper-3dc\",\n");
    out.push_str("    \"system\": \"EunomiaKV\",\n");
    out.push_str("    \"sim_seconds\": 20,\n");
    let _ = writeln!(
        out,
        "    \"events_per_sec\": {PRE_REFACTOR_EVENTS_PER_SEC:.0},"
    );
    out.push_str(
        "    \"note\": \"old engine: per-dispatch proc_nodes collect, HashMap link state, \
         Arrive->Dispatch double-hop, unbounded cancelled-timer set\"\n",
    );
    out.push_str("  },\n");
    match speedup {
        Some(s) => {
            let _ = writeln!(out, "  \"paper_3dc_speedup_vs_baseline\": {s:.3},");
        }
        None => out.push_str("  \"paper_3dc_speedup_vs_baseline\": null,\n"),
    }
    out.push_str("  \"runs\": [\n");
    for (i, (sys, c)) in cells.iter().enumerate() {
        let e = &c.report.engine;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"system\": \"{sys}\", \"scenario\": \"{}\", \"sim_seconds\": {}, \
             \"events\": {}, \"messages_routed\": {}, \"timers_set\": {}, \
             \"direct_deliveries\": {}, \"heap_peak\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.0}, \"throughput_ops_sec\": {:.1}",
            c.scenario,
            c.sim_secs,
            e.events,
            e.messages_routed,
            e.timers_set,
            e.direct_deliveries,
            e.heap_peak,
            e.wall_ns as f64 / 1e6,
            e.events_per_sec(),
            c.report.throughput,
        );
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
