//! Ablation — the §5 metadata propagation tree.
//!
//! With `N` partitions batching every millisecond, the Eunomia service
//! receives `N` messages per millisecond (all-to-one). Routing the batches
//! through a fan-in tree among the partition servers cuts the message rate
//! at the service to roughly one bundle per root flush, "at the cost of a
//! slight increase in the stabilization time" — each tree level can add up
//! to one batching interval of delay. This ablation measures both sides of
//! the trade at two datacenter sizes.

use eunomia_bench::{banner, fmt_ms, paper_scenario, print_table, BenchArgs};
use eunomia_geo::{run, SystemId};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    // This ablation exercises EunomiaKV only; --system must include it.
    args.systems(&[SystemId::EunomiaKv]);
    let secs = args.secs(20, 8);
    banner(
        "Ablation: metadata propagation tree (§5)",
        "all-to-one vs fan-in tree routing of partition batches into Eunomia",
        "service message rate drops by ~the partition count; visibility pays \
         about one batching interval per tree level",
    );

    let mut rows = Vec::new();
    for partitions in [8usize, 32] {
        for arity in [None, Some(4), Some(2)] {
            let scenario = paper_scenario(secs, args.seed)
                .named(match arity {
                    None => format!("{partitions}p-direct"),
                    Some(a) => format!("{partitions}p-tree{a}"),
                })
                .workload(WorkloadConfig::paper(90, false))
                .with(|cfg| {
                    cfg.partitions_per_dc = partitions;
                    cfg.metadata_tree_arity = arity;
                });
            let r = run(SystemId::EunomiaKv, &scenario);
            let msgs = r.metrics.service_messages() as f64 / (secs as f64 * 3.0);
            rows.push(vec![
                format!("{partitions}"),
                match arity {
                    None => "direct".to_string(),
                    Some(a) => format!("tree (arity {a})"),
                },
                format!("{:.0}", msgs),
                format!("{:.0}", r.throughput),
                fmt_ms(r.visibility_percentile_ms(0, 1, 50.0)),
                fmt_ms(r.visibility_percentile_ms(0, 1, 90.0)),
            ]);
        }
    }
    print_table(
        &[
            "partitions/DC",
            "routing",
            "msgs/s at Eunomia (per DC)",
            "ops/s",
            "vis p50 (ms)",
            "vis p90 (ms)",
        ],
        &rows,
    );
}
