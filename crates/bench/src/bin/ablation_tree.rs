//! Ablation — the §5 metadata propagation tree.
//!
//! With `N` partitions batching every millisecond, the Eunomia service
//! receives `N` messages per millisecond (all-to-one). Routing the batches
//! through a fan-in tree among the partition servers cuts the message rate
//! at the service to roughly one bundle per root flush, "at the cost of a
//! slight increase in the stabilization time" — each tree level can add up
//! to one batching interval of delay. This ablation measures both sides of
//! the trade at two datacenter sizes.

use eunomia_bench::{banner, fmt_ms, geo_config, print_table, BenchArgs};
use eunomia_geo::{run_system, SystemKind};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(20, 8);
    banner(
        "Ablation: metadata propagation tree (§5)",
        "all-to-one vs fan-in tree routing of partition batches into Eunomia",
        "service message rate drops by ~the partition count; visibility pays \
         about one batching interval per tree level",
    );

    let mut rows = Vec::new();
    for partitions in [8usize, 32] {
        for arity in [None, Some(4), Some(2)] {
            let mut cfg = geo_config(secs, args.seed);
            cfg.partitions_per_dc = partitions;
            cfg.metadata_tree_arity = arity;
            cfg.workload = WorkloadConfig::paper(90, false);
            let r = run_system(SystemKind::EunomiaKv, cfg);
            let msgs = r.metrics.service_messages() as f64 / (secs as f64 * 3.0);
            rows.push(vec![
                format!("{partitions}"),
                match arity {
                    None => "direct".to_string(),
                    Some(a) => format!("tree (arity {a})"),
                },
                format!("{:.0}", msgs),
                format!("{:.0}", r.throughput),
                fmt_ms(r.visibility_percentile_ms(0, 1, 50.0)),
                fmt_ms(r.visibility_percentile_ms(0, 1, 90.0)),
            ]);
        }
    }
    print_table(
        &[
            "partitions/DC",
            "routing",
            "msgs/s at Eunomia (per DC)",
            "ops/s",
            "vis p50 (ms)",
            "vis p90 (ms)",
        ],
        &rows,
    );
}
