//! Runs every figure and ablation harness in sequence, writing each
//! output under `results/`. This is the one-command reproduction of the
//! paper's whole evaluation section.
//!
//! Usage: `cargo run --release -p eunomia-bench --bin runall [-- --quick]`
//!
//! Threaded experiments (Figs. 2–4, the batching ablation) are sensitive
//! to concurrent load — run this on an otherwise idle machine.

use std::fs;
use std::path::Path;
use std::process::Command;

const HARNESSES: &[&str] = &[
    "fig1_motivation",
    "fig2_service_throughput",
    "fig3_ft_overhead",
    "fig4_failures",
    "fig5_geo_throughput",
    "fig6_visibility_cdf",
    "fig7_stragglers",
    "ablation_receiver",
    "ablation_batching",
    "ablation_clock_skew",
    "ablation_tree",
    "fig_faults",
    "fig_load",
    "perf_engine",
    "perf_service",
];

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");

    let mut combined = String::new();
    for name in HARNESSES {
        eprintln!("== running {name} {} ==", forward.join(" "));
        let output = Command::new(bin_dir.join(name))
            .args(&forward)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        let stdout = String::from_utf8_lossy(&output.stdout);
        if !output.status.success() {
            eprintln!(
                "{name} FAILED:\n{}",
                String::from_utf8_lossy(&output.stderr)
            );
            std::process::exit(1);
        }
        fs::write(out_dir.join(format!("{name}.txt")), stdout.as_bytes())
            .expect("write result file");
        combined.push_str(&format!("### {name}\n{stdout}\n"));
    }
    fs::write(out_dir.join("all_figures.txt"), combined).expect("write combined results");
    eprintln!("\nall harnesses done -> results/all_figures.txt");
}
