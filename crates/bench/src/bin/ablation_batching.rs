//! Ablation — partition-side batching towards Eunomia (§5).
//!
//! "Batch operations at partitions, and propagate them to Eunomia only
//! periodically" cuts the message rate at the service at the cost of a
//! slight increase in stabilization time — and unlike a sequencer, the
//! waiting is not in any client's critical path (§7.1). This ablation
//! sweeps the batching interval on the threaded service and, on the
//! simulator, shows the visibility cost of larger batches.

use eunomia_bench::{banner, fmt_ms, paper_scenario, print_table, BenchArgs};
use eunomia_geo::{run, SystemId};
use eunomia_runtime::service::{run_eunomia_service, EunomiaBenchConfig};
use eunomia_sim::units;
use std::time::Duration;

fn main() {
    let args = BenchArgs::parse();
    // This ablation exercises EunomiaKV only; --system must include it.
    args.systems(&[SystemId::EunomiaKv]);
    let secs = args.secs(3, 2);
    banner(
        "Ablation: metadata batching interval",
        "threaded service ingest throughput and simulated visibility vs batch interval",
        "larger batches stretch service throughput while visibility extra \
         delay grows by roughly the batching interval",
    );

    let mut rows = Vec::new();
    for (label, interval) in [
        ("0.2 ms", Duration::from_micros(200)),
        ("0.5 ms", Duration::from_micros(500)),
        ("1 ms", Duration::from_millis(1)),
        ("2 ms", Duration::from_millis(2)),
        ("5 ms", Duration::from_millis(5)),
    ] {
        let cfg = EunomiaBenchConfig {
            feeders: 30,
            replicas: 1,
            duration: Duration::from_secs(secs),
            batch_interval: interval,
            ..EunomiaBenchConfig::default()
        };
        let t = run_eunomia_service(&cfg);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", t.ops_per_sec() / 1000.0),
        ]);
    }
    println!("\nthreaded service (30 feeders):");
    print_table(&["batch interval", "kops/s stabilized"], &rows);

    let mut rows = Vec::new();
    for interval_us in [200u64, 500, 1000, 2000, 5000] {
        let scenario = paper_scenario(args.secs(20, 8), args.seed)
            .named(format!("batch-{interval_us}us"))
            .with(|cfg| {
                cfg.batch_interval = units::us(interval_us);
                cfg.heartbeat_delta = units::us(interval_us);
            });
        let r = run(SystemId::EunomiaKv, &scenario);
        rows.push(vec![
            format!("{:.1} ms", interval_us as f64 / 1000.0),
            format!("{:.0}", r.throughput),
            fmt_ms(r.visibility_percentile_ms(0, 1, 50.0)),
            fmt_ms(r.visibility_percentile_ms(0, 1, 90.0)),
        ]);
    }
    println!("\nsimulated geo deployment (90:10 U):");
    print_table(
        &["batch interval", "ops/s", "vis p50 (ms)", "vis p90 (ms)"],
        &rows,
    );
}
