//! Figure 7 — impact of stragglers on Eunomia.
//!
//! Three phases: healthy, then one partition of dc2 contacts its local
//! Eunomia only every {10, 100, 1000} ms instead of every 1 ms, then
//! healthy again (the paper uses one-minute phases; scaled here). The
//! plot tracks the visibility extra delay at dc1 for updates originating
//! at dc2 — the straggler holds back dc2's *stable time*, so updates from
//! healthy partitions of dc2 are delayed by roughly the straggling
//! interval (paper Fig. 7), and recovery is immediate once healed.
//!
//! The §7.2.3 comparison also runs: under S-Seq the visibility of healthy
//! partitions' updates is unaffected, but clients touching the straggler
//! partition absorb the interval into *operation latency* — visible in
//! the mean update latency during the straggle window.

use eunomia_bench::{banner, paper_scenario, print_table, BenchArgs};
use eunomia_geo::config::StragglerConfig;
use eunomia_geo::{run, Scenario, SystemId};
use eunomia_sim::{units, SimTime};
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    let phase = args.secs(30, 10);
    banner(
        "Figure 7",
        &format!("straggler impact ({phase}s healthy / {phase}s straggling / {phase}s healed)"),
        "visibility of dc2-origin updates at dc1 rises to ~the straggling \
         interval during the window and recovers after; a sequencer system \
         instead pushes the interval into client latency at the straggler \
         partition only",
    );

    let bucket = units::secs(2);
    let mk_scenario = |interval_ms: u64, seed_off: u64| -> Scenario {
        paper_scenario(phase * 3, args.seed + seed_off)
            .named(format!("straggler-{interval_ms}ms"))
            .workload(WorkloadConfig::paper(75, false))
            .with(|cfg| {
                cfg.warmup = units::secs(2);
                cfg.cooldown = 0;
                cfg.straggler = Some(StragglerConfig {
                    dc: 2,
                    partition: 0,
                    from: units::secs(phase),
                    to: units::secs(phase * 2),
                    interval: units::ms(interval_ms),
                });
            })
    };

    // This figure compares EunomiaKV's straggler response with S-Seq's;
    // --system restricts to either half (the helper aborts if neither
    // was selected).
    let selected = args.systems(&[SystemId::EunomiaKv, SystemId::SSeq]);
    let n_buckets = (phase * 3) / 2;

    if selected.contains(&SystemId::EunomiaKv) {
        // EunomiaKV runs, one per straggling interval.
        let mut runs = Vec::new();
        for (i, interval_ms) in [10u64, 100, 1000].iter().enumerate() {
            runs.push((
                *interval_ms,
                run(SystemId::EunomiaKv, &mk_scenario(*interval_ms, i as u64)),
            ));
        }

        println!(
            "\nEunomiaKV: mean visibility extra (ms) for dc2-origin updates at dc1, 2 s buckets"
        );
        let mut rows = Vec::new();
        for b in 0..n_buckets {
            let from = b * bucket;
            let to = from + bucket;
            let mut row = vec![format!("{}", b * 2)];
            for (_, r) in &runs {
                let extras = r.metrics.visibility_extras(2, 1, from, to);
                if extras.is_empty() {
                    row.push("-".into());
                } else {
                    let mean = extras.iter().sum::<u64>() as f64 / extras.len() as f64;
                    row.push(format!("{:.1}", units::to_ms(mean as SimTime)));
                }
            }
            let mut mark = String::new();
            if b * 2 == phase {
                mark.push_str(" <- straggler starts");
            }
            if b * 2 == phase * 2 {
                mark.push_str(" <- straggler healed");
            }
            row.push(mark);
            rows.push(row);
        }
        print_table(&["t (s)", "10 ms", "100 ms", "1000 ms", ""], &rows);
    }

    if !selected.contains(&SystemId::SSeq) {
        return;
    }
    // Sequencer comparison (1000 ms straggler): visibility flat, client
    // update latency absorbs the interval.
    let sseq = run(SystemId::SSeq, &mk_scenario(1000, 100));
    println!("\nS-Seq with the 1000 ms straggler: visibility stays flat; latency absorbs it");
    let mut rows = Vec::new();
    for b in 0..n_buckets {
        let from = b * bucket;
        let to = from + bucket;
        let extras = sseq.metrics.visibility_extras(2, 1, from, to);
        let vis = if extras.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{:.1}",
                units::to_ms(extras.iter().sum::<u64>() / extras.len() as u64)
            )
        };
        let (lat, lat_max) = sseq.metrics.with(|m| {
            let idx0 = (from / units::secs(1)) as usize;
            let idx1 = (to / units::secs(1)) as usize;
            let (mut total, mut count, mut max) = (0u64, 0u64, 0u64);
            for i in idx0..idx1 {
                total += m.update_latency_series.total_at(i);
                count += m.update_latency_series.count_at(i);
                max = max.max(m.update_latency_series.max_at(i).unwrap_or(0));
            }
            match total.checked_div(count) {
                None => ("-".to_string(), "-".to_string()),
                Some(mean) => (
                    format!("{:.1}", units::to_ms(mean)),
                    format!("{:.0}", units::to_ms(max)),
                ),
            }
        });
        rows.push(vec![format!("{}", b * 2), vis, lat, lat_max]);
    }
    print_table(
        &[
            "t (s)",
            "vis extra dc2->dc1 (ms)",
            "mean update lat (ms)",
            "max update lat (ms)",
        ],
        &rows,
    );
    println!(
        "\nmean update latency is diluted across all clients/DCs; the max column shows the \
         straggler partition's clients absorbing the full interval (paper §7.2.3)."
    );
}
