//! Ablation — hybrid clocks vs physical-clock waiting under skew (§3.2).
//!
//! Eunomia's scalar hybrid clock moves the logical component forward when
//! a dependency is ahead of the local physical clock, so update latency is
//! immune to skew. GentleRain timestamps with raw physical clocks and must
//! *wait out* the skew whenever a client's causal past is ahead of the
//! local clock. Both pay for skew in *visibility* (their stabilization
//! floors are minima over skewed clocks); only the physical-clock design
//! pays in client latency.

use eunomia_bench::{banner, fmt_ms, paper_scenario, print_table, BenchArgs};
use eunomia_geo::{Sweep, SystemId};
use eunomia_sim::units;
use eunomia_workload::WorkloadConfig;

fn main() {
    let args = BenchArgs::parse();
    // A paired EunomiaKV-vs-GentleRain comparison: --system must pick
    // at least one of them, and both columns always run (the table
    // pairs them per skew level).
    if args
        .systems(&[SystemId::EunomiaKv, SystemId::GentleRain])
        .len()
        < 2
    {
        eprintln!("note: this ablation always runs EunomiaKV and GentleRain side by side");
    }
    let secs = args.secs(25, 8);
    banner(
        "Ablation: clock skew",
        "EunomiaKV (hybrid clock) vs GentleRain (physical clock + waits) under skew",
        "EunomiaKV client latency is flat in skew while GentleRain's update \
         p99 grows with it; both pay skew in visibility through their \
         stabilization minima",
    );

    let skews = [0u64, 500, 5_000, 50_000];
    let results = Sweep::new()
        .systems([SystemId::EunomiaKv, SystemId::GentleRain])
        .scenarios(skews.iter().enumerate().map(|(i, &skew_us)| {
            paper_scenario(secs, args.seed + i as u64)
                .named(format!("{:.1} ms", skew_us as f64 / 1000.0))
                .workload(WorkloadConfig::paper(75, false))
                .with(|cfg| {
                    cfg.clock_skew = units::us(skew_us);
                    cfg.drift_ppm = 0.0;
                })
        }))
        .run();

    let update_p99 = |r: &eunomia_geo::harness::RunReport| {
        r.metrics
            .with(|m| m.update_latency.percentile(99.0))
            .map(units::to_ms)
    };
    let rows: Vec<Vec<String>> = results
        .scenarios()
        .iter()
        .map(|sc| {
            let eu = results.get(SystemId::EunomiaKv, sc).expect("cell ran");
            let gr = results.get(SystemId::GentleRain, sc).expect("cell ran");
            vec![
                sc.clone(),
                fmt_ms(update_p99(eu)),
                fmt_ms(update_p99(gr)),
                fmt_ms(eu.visibility_percentile_ms(0, 1, 90.0)),
                fmt_ms(gr.visibility_percentile_ms(0, 1, 90.0)),
                format!("{:.0}", eu.throughput),
                format!("{:.0}", gr.throughput),
            ]
        })
        .collect();
    print_table(
        &[
            "skew (+/-)",
            "EunomiaKV upd p99 (ms)",
            "GentleRain upd p99 (ms)",
            "EunomiaKV vis p90 (ms)",
            "GentleRain vis p90 (ms)",
            "EunomiaKV ops/s",
            "GentleRain ops/s",
        ],
        &rows,
    );
}
