//! Figure 4 — impact of replica failures on Eunomia.
//!
//! Runs the replicated threaded service with 1, 2 and 3 replicas, killing
//! one replica ~30% into the run and a second ~70% in (the paper crashes
//! at 160 s and 470 s of a ~700 s run; the timeline here is scaled).
//! Throughput per second is reported normalized to an uncrashed 1-replica
//! run. Expected shape (paper): 1-FT drops to zero at the first crash;
//! 2-FT survives the first and dies at the second; 3-FT survives both,
//! recovering to ≈95-100% within seconds of each fail-over.

use eunomia_bench::{banner, print_table, BenchArgs};
use eunomia_runtime::service::{run_eunomia_service, EunomiaBenchConfig};
use std::time::Duration;

fn main() {
    let args = BenchArgs::parse();
    let secs = args.secs(24, 10);
    let crash1 = Duration::from_secs_f64(secs as f64 * 0.3);
    let crash2 = Duration::from_secs_f64(secs as f64 * 0.7);
    banner(
        "Figure 4",
        &format!(
            "throughput under replica crashes (crash leader at {:.0}s, next leader at {:.0}s)",
            crash1.as_secs_f64(),
            crash2.as_secs_f64()
        ),
        "1-FT -> 0 after the first crash; 2-FT survives one crash then -> 0; \
         3-FT survives both, recovering to ~95-100% after a brief fail-over dip",
    );

    let run = |replicas: usize, crashes: Vec<(Duration, usize)>| {
        let cfg = EunomiaBenchConfig {
            feeders: 16,
            replicas,
            duration: Duration::from_secs(secs),
            crashes,
            omega_timeout: Duration::from_millis(150),
            ..EunomiaBenchConfig::default()
        };
        run_eunomia_service(&cfg)
    };

    // Reference: no crashes, single replica.
    let reference = run(1, vec![]);
    let ref_rate = {
        let n = reference.per_second.len().max(1);
        reference.per_second.iter().sum::<u64>() as f64 / n as f64
    };

    let t1 = run(1, vec![(crash1, 0)]);
    let t2 = run(2, vec![(crash1, 0), (crash2, 1)]);
    let t3 = run(3, vec![(crash1, 0), (crash2, 1)]);

    let buckets = t1
        .per_second
        .len()
        .min(t2.per_second.len())
        .min(t3.per_second.len());
    let mut rows = Vec::new();
    for s in 0..buckets {
        let norm = |t: &eunomia_runtime::ThroughputTimeline| {
            format!("{:.2}", t.per_second[s] as f64 / ref_rate.max(1.0))
        };
        let mut marks = String::new();
        if s as u64 == crash1.as_secs() {
            marks.push_str(" <- crash replica 0");
        }
        if s as u64 == crash2.as_secs() {
            marks.push_str(" <- crash replica 1");
        }
        rows.push(vec![format!("{s}"), norm(&t1), norm(&t2), norm(&t3), marks]);
    }
    print_table(&["second", "1-FT", "2-FT", "3-FT", ""], &rows);

    let tail = |t: &eunomia_runtime::ThroughputTimeline| {
        let after = crash2.as_secs() as usize + 2;
        let slice: Vec<u64> = t.per_second.iter().skip(after).copied().collect();
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<u64>() as f64 / slice.len() as f64 / ref_rate.max(1.0)
        }
    };
    println!(
        "\nafter both crashes: 1-FT {:.2}, 2-FT {:.2}, 3-FT {:.2} of reference (paper: 0, 0, ~0.95+)",
        tail(&t1),
        tail(&t2),
        tail(&t3)
    );
}
