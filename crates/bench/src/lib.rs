//! Benchmark harness support: argument parsing, table output, and shared
//! experiment configuration.
//!
//! Each figure of the paper has a dedicated binary in `src/bin/`
//! (`fig1_motivation` … `fig7_stragglers`) that prints the same rows or
//! series the paper reports, plus `ablation_*` binaries for the design
//! choices called out in DESIGN.md. Criterion micro-benches live under
//! `benches/`.
//!
//! All binaries accept:
//!
//! * `--quick` — scale durations down for a fast smoke run;
//! * `--seconds N` — override the per-run measured duration;
//! * `--seed N` — change the deterministic seed.

use eunomia_geo::ClusterConfig;
use eunomia_sim::units;

/// Parsed command-line options shared by all harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct BenchArgs {
    /// Scale durations down for a smoke run.
    pub quick: bool,
    /// Explicit per-run duration in (simulated or wall) seconds.
    pub seconds: Option<u64>,
    /// Deterministic seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `std::env::args()`. Unknown flags abort with a usage hint.
    pub fn parse() -> Self {
        let mut out = BenchArgs {
            quick: false,
            seconds: None,
            seed: 42,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seconds" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--seconds needs a value"));
                    out.seconds = Some(v.parse().unwrap_or_else(|_| usage("bad --seconds")));
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("bad --seed"));
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// Chooses a duration: explicit `--seconds`, else `quick` or `full`.
    pub fn secs(&self, full: u64, quick: u64) -> u64 {
        self.seconds
            .unwrap_or(if self.quick { quick } else { full })
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: <bin> [--quick] [--seconds N] [--seed N]");
    std::process::exit(2);
}

/// Prints the figure banner: what the paper shows and what to expect.
pub fn banner(fig: &str, title: &str, expectation: &str) {
    println!("==================================================================");
    println!("{fig}: {title}");
    println!("paper expectation: {expectation}");
    println!("==================================================================");
}

/// Prints an aligned ASCII table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// The standard geo-replication experiment configuration: the paper's
/// 3-DC deployment with `secs` simulated seconds (10% warm-up/cool-down
/// trims, mirroring the paper's discarded first/last minute).
pub fn geo_config(secs: u64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.duration = units::secs(secs);
    cfg.warmup = units::secs((secs / 10).max(2));
    cfg.cooldown = units::secs((secs / 10).max(1));
    cfg.seed = seed;
    cfg
}

/// Formats an optional millisecond value.
pub fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".to_string(),
    }
}

/// Formats a throughput delta vs a baseline as a signed percentage.
pub fn fmt_delta_pct(value: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", (value / baseline - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_resolution_order() {
        let explicit = BenchArgs {
            quick: true,
            seconds: Some(7),
            seed: 1,
        };
        assert_eq!(explicit.secs(30, 10), 7);
        let quick = BenchArgs {
            quick: true,
            seconds: None,
            seed: 1,
        };
        assert_eq!(quick.secs(30, 10), 10);
        let full = BenchArgs {
            quick: false,
            seconds: None,
            seed: 1,
        };
        assert_eq!(full.secs(30, 10), 30);
    }

    #[test]
    fn geo_config_trims_ten_percent() {
        let cfg = geo_config(30, 9);
        assert_eq!(cfg.duration, units::secs(30));
        assert_eq!(cfg.warmup, units::secs(3));
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta_pct(90.0, 100.0), "-10.0%");
        assert_eq!(fmt_delta_pct(100.0, 0.0), "-");
        assert_eq!(fmt_ms(None), "-");
        assert_eq!(fmt_ms(Some(1.234)), "1.23");
    }
}
