//! Benchmark harness support: argument parsing, table output, and shared
//! experiment scenarios.
//!
//! Each figure of the paper has a dedicated binary in `src/bin/`
//! (`fig1_motivation` … `fig7_stragglers`) that prints the same rows or
//! series the paper reports, plus `ablation_*` binaries for the design
//! choices called out in DESIGN.md. Criterion micro-benches live under
//! `benches/`.
//!
//! All binaries accept:
//!
//! * `--quick` — scale durations down for a fast smoke run;
//! * `--seconds N` — override the per-run measured duration;
//! * `--seed N` — change the deterministic seed;
//! * `--system NAME` — restrict the run to one system (repeatable, or
//!   comma-separated; names parse via `SystemId::from_str`);
//! * `--list-systems` — print every system id and exit;
//! * `--scenario NAME` — run a named `Scenario` preset instead of the
//!   figure's default scenarios (repeatable, or comma-separated), so new
//!   presets are runnable without a dedicated binary;
//! * `--list-scenarios` — print every scenario preset name and exit;
//! * `--assert-scale-floor` — scale-sweeping harnesses exit non-zero if
//!   large-scale throughput falls below its floor (see `perf_engine`).
//!
//! `BenchArgs::parse` also installs the baseline runners into
//! `eunomia-geo`'s system registry, so after parsing, any binary can call
//! `eunomia_geo::run` with any [`SystemId`].

use eunomia_geo::{Scenario, SystemId};

/// Parsed command-line options shared by all harness binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Scale durations down for a smoke run.
    pub quick: bool,
    /// Explicit per-run duration in (simulated or wall) seconds.
    pub seconds: Option<u64>,
    /// Deterministic seed.
    pub seed: u64,
    /// `--system` restrictions; `None` means "whatever the figure runs".
    pub systems: Option<Vec<SystemId>>,
    /// `--scenario` overrides; `None` means "whatever the figure runs".
    pub scenarios: Option<Vec<Scenario>>,
    /// `--assert-scale-floor`: harnesses that sweep multiple deployment
    /// scales (today `perf_engine`) exit non-zero if the large-scale
    /// event rate falls below its floor relative to paper-3dc. Ignored
    /// by binaries without a scale sweep.
    pub assert_scale_floor: bool,
}

impl BenchArgs {
    /// Parses `std::env::args()` and installs the baseline runners.
    /// Unknown flags abort with a usage hint.
    pub fn parse() -> Self {
        eunomia_baselines::install();
        let mut out = BenchArgs {
            quick: false,
            seconds: None,
            seed: 42,
            systems: None,
            scenarios: None,
            assert_scale_floor: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--assert-scale-floor" => out.assert_scale_floor = true,
                "--seconds" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--seconds needs a value"));
                    out.seconds = Some(v.parse().unwrap_or_else(|_| usage("bad --seconds")));
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("bad --seed"));
                }
                "--system" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--system needs a name"));
                    let list = out.systems.get_or_insert_with(Vec::new);
                    for name in v.split(',').filter(|s| !s.is_empty()) {
                        match name.parse::<SystemId>() {
                            Ok(id) => {
                                if !list.contains(&id) {
                                    list.push(id);
                                }
                            }
                            Err(e) => usage(&e.to_string()),
                        }
                    }
                }
                "--list-systems" => {
                    for id in SystemId::all() {
                        println!("{id}");
                    }
                    std::process::exit(0);
                }
                "--scenario" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--scenario needs a name"));
                    let list = out.scenarios.get_or_insert_with(Vec::new);
                    for name in v.split(',').filter(|s| !s.is_empty()) {
                        match Scenario::by_name(name) {
                            Some(sc) => {
                                if !list.iter().any(|s| s.name() == sc.name()) {
                                    list.push(sc);
                                }
                            }
                            None => usage(&format!(
                                "unknown scenario {:?}; expected one of: {}",
                                name,
                                Scenario::presets()
                                    .iter()
                                    .map(|s| s.name().to_string())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )),
                        }
                    }
                }
                "--list-scenarios" => {
                    for sc in Scenario::presets() {
                        println!("{}", sc.name());
                    }
                    std::process::exit(0);
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// Chooses a duration: explicit `--seconds`, else `quick` or `full`.
    pub fn secs(&self, full: u64, quick: u64) -> u64 {
        self.seconds
            .unwrap_or(if self.quick { quick } else { full })
    }

    /// The systems this binary should run: `default` filtered by any
    /// `--system` restriction (order of `default` is preserved). Aborts
    /// if the restriction selects none of them.
    pub fn systems(&self, default: &[SystemId]) -> Vec<SystemId> {
        match &self.systems {
            None => default.to_vec(),
            Some(sel) => {
                let picked: Vec<SystemId> = default
                    .iter()
                    .copied()
                    .filter(|s| sel.contains(s))
                    .collect();
                if picked.is_empty() {
                    usage(&format!(
                        "--system selected none of this figure's systems ({})",
                        default
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                picked
            }
        }
    }

    /// Whether `id` survives the `--system` restriction.
    pub fn wants(&self, id: SystemId) -> bool {
        self.systems.as_ref().is_none_or(|sel| sel.contains(&id))
    }

    /// The scenarios this binary should run: any `--scenario` overrides,
    /// seeded with `--seed`, else `default`. Unlike `--system` (a filter
    /// over a figure's fixed set), `--scenario` *replaces* the default
    /// list — that is what makes new presets runnable from any binary.
    ///
    /// Overridden presets run at their preset durations: `--quick` /
    /// `--seconds` cannot re-time an arbitrary preset safely (fault
    /// windows are part of the preset). Binaries whose defaults *are*
    /// parameterized presets (e.g. `fig_faults`) rebuild matching names
    /// at the requested duration instead.
    pub fn scenarios_or(&self, default: Vec<Scenario>) -> Vec<Scenario> {
        match &self.scenarios {
            None => default,
            Some(sel) => sel.iter().map(|s| s.clone().seed(self.seed)).collect(),
        }
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: <bin> [--quick] [--seconds N] [--seed N] [--system NAME]... [--list-systems] \
         [--scenario NAME]... [--list-scenarios] [--assert-scale-floor]"
    );
    std::process::exit(2);
}

/// Prints the figure banner: what the paper shows and what to expect.
pub fn banner(fig: &str, title: &str, expectation: &str) {
    println!("==================================================================");
    println!("{fig}: {title}");
    println!("paper expectation: {expectation}");
    println!("==================================================================");
}

/// Prints an aligned ASCII table (shared renderer from `eunomia-geo`).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", eunomia_geo::format_table(headers, rows));
}

/// Writes a figure's committed JSON artifact and self-checks the bytes
/// on disk before CI trusts them: the file must read back as a single
/// object (`{` … `}`) containing every one of `required_keys` as a
/// quoted JSON key. Ends with the standard `wrote <path> (<n> <what>)`
/// line every harness prints.
///
/// # Panics
/// Panics if the file cannot be written or fails the structural check —
/// a harness that produced a malformed artifact must not exit 0.
pub fn write_artifact(path: &str, json: &str, required_keys: &[&str], n: usize, what: &str) {
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    let back = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("re-read {path}: {e}"));
    assert!(
        back.trim_start().starts_with('{') && back.trim_end().ends_with('}'),
        "malformed {path}"
    );
    for key in required_keys {
        assert!(
            back.contains(&format!("\"{key}\"")),
            "{path} missing required key {key:?}"
        );
    }
    println!("\nwrote {path} ({n} {what})");
}

/// The standard geo-replication experiment scenario: the paper's 3-DC
/// deployment with `secs` simulated seconds (10% warm-up/cool-down
/// trims, mirroring the paper's discarded first/last minute).
pub fn paper_scenario(secs: u64, seed: u64) -> Scenario {
    Scenario::paper_three_dc().seconds(secs).seed(seed)
}

/// Formats an optional millisecond value.
pub fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".to_string(),
    }
}

/// Formats a throughput delta vs a baseline as a signed percentage.
pub fn fmt_delta_pct(value: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", (value / baseline - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eunomia_sim::units;

    fn args(systems: Option<Vec<SystemId>>) -> BenchArgs {
        BenchArgs {
            quick: false,
            seconds: None,
            seed: 1,
            systems,
            scenarios: None,
            assert_scale_floor: false,
        }
    }

    #[test]
    fn secs_resolution_order() {
        let mut a = args(None);
        a.quick = true;
        a.seconds = Some(7);
        assert_eq!(a.secs(30, 10), 7);
        a.seconds = None;
        assert_eq!(a.secs(30, 10), 10);
        a.quick = false;
        assert_eq!(a.secs(30, 10), 30);
    }

    #[test]
    fn paper_scenario_trims_ten_percent() {
        let sc = paper_scenario(30, 9);
        assert_eq!(sc.cfg().duration, units::secs(30));
        assert_eq!(sc.cfg().warmup, units::secs(3));
        assert_eq!(sc.cfg().seed, 9);
    }

    #[test]
    fn system_restriction_filters_preserving_order() {
        let def = [SystemId::Eventual, SystemId::EunomiaKv, SystemId::Cure];
        assert_eq!(args(None).systems(&def), def.to_vec());
        let restricted = args(Some(vec![SystemId::Cure, SystemId::Eventual]));
        assert_eq!(
            restricted.systems(&def),
            vec![SystemId::Eventual, SystemId::Cure]
        );
        assert!(restricted.wants(SystemId::Cure));
        assert!(!restricted.wants(SystemId::SSeq));
        assert!(args(None).wants(SystemId::SSeq));
    }

    #[test]
    fn scenario_override_replaces_defaults_and_reseeds() {
        let mut a = args(None);
        let default = vec![paper_scenario(10, 1)];
        assert_eq!(a.scenarios_or(default.clone())[0].name(), "paper-3dc");
        a.scenarios = Some(vec![
            Scenario::by_name("gray-wan").unwrap(),
            Scenario::by_name("small-test").unwrap(),
        ]);
        let picked = a.scenarios_or(default);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name(), "gray-wan");
        assert_eq!(picked[0].cfg().seed, 1, "--seed applies to overrides");
    }

    #[test]
    fn write_artifact_round_trips_and_checks_keys() {
        let path = std::env::temp_dir().join("eunomia_bench_artifact_test.json");
        let path = path.to_str().unwrap().to_string();
        write_artifact(&path, "{\n  \"runs\": []\n}\n", &["runs"], 0, "runs");
        assert!(std::fs::read_to_string(&path).unwrap().contains("\"runs\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "missing required key")]
    fn write_artifact_rejects_missing_keys() {
        let path = std::env::temp_dir().join("eunomia_bench_artifact_bad.json");
        let path = path.to_str().unwrap().to_string();
        write_artifact(&path, "{}", &["runs"], 0, "runs");
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta_pct(90.0, 100.0), "-10.0%");
        assert_eq!(fmt_delta_pct(100.0, 0.0), "-");
        assert_eq!(fmt_ms(None), "-");
        assert_eq!(fmt_ms(Some(1.234)), "1.23");
    }
}
