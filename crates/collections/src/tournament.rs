//! Min tournament (winner) tree over a fixed set of leaves.
//!
//! The sharded Eunomia stabilizer keeps one watermark per feeder lane and
//! needs their minimum — the stable cutoff — after every lane advance.
//! Scanning `n` lanes per update is `O(n)`; this tree re-plays only the
//! updated leaf's path to the root, `O(log n)`, and answers the min (and
//! which lane holds it) in `O(1)`.
//!
//! The tree is a complete binary heap in an array: internal node `i` holds
//! the winner (minimum) of its children `2i` and `2i + 1`, leaves occupy
//! `cap..cap + n` (with `cap` the padded power of two), and `tree[1]` is
//! the overall winner. Unused leaves are padded with a caller-supplied
//! sentinel that must compare `>=` every real value (e.g. `u64::MAX`).
//!
//! # Examples
//!
//! ```
//! use eunomia_collections::TournamentTree;
//!
//! let mut t = TournamentTree::new(3, 0u64, u64::MAX);
//! t.update(0, 7);
//! t.update(1, 3);
//! t.update(2, 9);
//! assert_eq!(*t.min(), 3);
//! assert_eq!(t.winner(), 1);
//! t.update(1, 20);
//! assert_eq!((t.winner(), *t.min()), (0, 7));
//! ```

/// A min winner tree over `n` leaves with `O(log n)` updates and `O(1)`
/// minimum queries.
#[derive(Clone, Debug)]
pub struct TournamentTree<T> {
    /// Heap array: `1` is the root, leaves start at `cap`.
    tree: Vec<T>,
    /// Padded leaf count (power of two).
    cap: usize,
    /// Real leaf count.
    n: usize,
}

impl<T: Ord + Copy> TournamentTree<T> {
    /// Builds a tree of `n` leaves all holding `init`. `sentinel` pads the
    /// unused leaves and must compare `>=` every value ever stored.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `sentinel < init`.
    pub fn new(n: usize, init: T, sentinel: T) -> Self {
        assert!(n > 0, "tournament tree needs at least one leaf");
        assert!(sentinel >= init, "sentinel must dominate every value");
        let cap = n.next_power_of_two();
        let mut tree = vec![sentinel; 2 * cap];
        for leaf in &mut tree[cap..cap + n] {
            *leaf = init;
        }
        // Play every internal match bottom-up.
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i].min(tree[2 * i + 1]);
        }
        TournamentTree { tree, cap, n }
    }

    /// Number of (real) leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree has no leaves (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current value of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> &T {
        assert!(i < self.n, "leaf out of range");
        &self.tree[self.cap + i]
    }

    /// Sets leaf `i` to `value` and replays its path to the root.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&mut self, i: usize, value: T) {
        assert!(i < self.n, "leaf out of range");
        let mut node = self.cap + i;
        self.tree[node] = value;
        while node > 1 {
            node /= 2;
            let winner = self.tree[2 * node].min(self.tree[2 * node + 1]);
            if self.tree[node] == winner {
                // The replayed match would not change anything above.
                break;
            }
            self.tree[node] = winner;
        }
    }

    /// The minimum over all leaves.
    pub fn min(&self) -> &T {
        &self.tree[1]
    }

    /// Index of a leaf holding the minimum (the lowest such index).
    pub fn winner(&self) -> usize {
        let mut node = 1;
        while node < self.cap {
            node = if self.tree[2 * node] <= self.tree[2 * node + 1] {
                2 * node
            } else {
                2 * node + 1
            };
        }
        node - self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_leaf() {
        let mut t = TournamentTree::new(1, 5u64, u64::MAX);
        assert_eq!(*t.min(), 5);
        assert_eq!(t.winner(), 0);
        t.update(0, 9);
        assert_eq!(*t.min(), 9);
    }

    #[test]
    fn non_power_of_two_padding_is_invisible() {
        let mut t = TournamentTree::new(5, 0u64, u64::MAX);
        for i in 0..5 {
            t.update(i, 10 + i as u64);
        }
        assert_eq!(*t.min(), 10);
        assert_eq!(t.winner(), 0);
        t.update(0, 100);
        assert_eq!((*t.min(), t.winner()), (11, 1));
    }

    #[test]
    fn monotone_watermark_advance() {
        // The stabilizer use case: leaves only grow; the min tracks the
        // laggard.
        let mut t = TournamentTree::new(4, 0u64, u64::MAX);
        t.update(0, 10);
        t.update(1, 20);
        t.update(2, 30);
        assert_eq!(*t.min(), 0, "leaf 3 never advanced");
        t.update(3, 5);
        assert_eq!((*t.min(), t.winner()), (5, 3));
        t.update(3, 50);
        assert_eq!((*t.min(), t.winner()), (10, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let mut t = TournamentTree::new(3, 0u64, u64::MAX);
        t.update(3, 1);
    }

    proptest! {
        /// The tree always agrees with a brute-force scan, across any
        /// sequence of leaf updates on any tree width.
        #[test]
        fn matches_brute_force(
            n in 1usize..33,
            updates in proptest::collection::vec((0usize..33, 0u64..1_000), 0..200),
        ) {
            let mut t = TournamentTree::new(n, 0u64, u64::MAX);
            let mut shadow = vec![0u64; n];
            for (i, v) in updates {
                let i = i % n;
                t.update(i, v);
                shadow[i] = v;
                let min = *shadow.iter().min().unwrap();
                prop_assert_eq!(*t.min(), min);
                prop_assert_eq!(*t.get(i), shadow[i]);
                let w = t.winner();
                prop_assert_eq!(shadow[w], min, "winner must hold the min");
            }
        }
    }
}
