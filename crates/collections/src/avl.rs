//! Arena-based AVL tree — the self-balancing alternative the paper's
//! prototype evaluated and rejected in favour of the red-black tree (§6).
//!
//! Kept here so the `ordered_map` ablation bench can reproduce that design
//! comparison. The implementation is recursive over arena indices (`u32`
//! links, `NONE` sentinel) and `unsafe`-free.

use crate::OrderedMap;

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Links {
    left: u32,
    right: u32,
    height: i32,
}

/// An AVL tree mapping `K` to `V` (strict height balancing, |bf| <= 1).
#[derive(Clone, Debug)]
pub struct AvlTree<K, V> {
    links: Vec<Links>,
    data: Vec<Option<(K, V)>>,
    root: u32,
    free: Vec<u32>,
    len: usize,
}

impl<K: Ord, V> Default for AvlTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> AvlTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        AvlTree {
            links: Vec::new(),
            data: Vec::new(),
            root: NONE,
            free: Vec::new(),
            len: 0,
        }
    }

    fn key(&self, n: u32) -> &K {
        &self.data[n as usize].as_ref().expect("occupied node").0
    }

    fn height(&self, n: u32) -> i32 {
        if n == NONE {
            0
        } else {
            self.links[n as usize].height
        }
    }

    fn update_height(&mut self, n: u32) {
        let h = 1 + self
            .height(self.links[n as usize].left)
            .max(self.height(self.links[n as usize].right));
        self.links[n as usize].height = h;
    }

    fn balance_factor(&self, n: u32) -> i32 {
        self.height(self.links[n as usize].left) - self.height(self.links[n as usize].right)
    }

    fn alloc(&mut self, key: K, value: V) -> u32 {
        let links = Links {
            left: NONE,
            right: NONE,
            height: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.links[idx as usize] = links;
            self.data[idx as usize] = Some((key, value));
            idx
        } else {
            let idx = self.links.len() as u32;
            self.links.push(links);
            self.data.push(Some((key, value)));
            idx
        }
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.links[y as usize].left;
        let t2 = self.links[x as usize].right;
        self.links[x as usize].right = y;
        self.links[y as usize].left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.links[x as usize].right;
        let t2 = self.links[y as usize].left;
        self.links[y as usize].left = x;
        self.links[x as usize].right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, n: u32) -> u32 {
        self.update_height(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.links[n as usize].left) < 0 {
                let l = self.links[n as usize].left;
                self.links[n as usize].left = self.rotate_left(l);
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.links[n as usize].right) > 0 {
                let r = self.links[n as usize].right;
                self.links[n as usize].right = self.rotate_right(r);
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn insert_at(&mut self, n: u32, key: K, value: V, replaced: &mut Option<V>) -> u32 {
        if n == NONE {
            self.len += 1;
            return self.alloc(key, value);
        }
        match key.cmp(self.key(n)) {
            std::cmp::Ordering::Less => {
                let l = self.links[n as usize].left;
                self.links[n as usize].left = self.insert_at(l, key, value, replaced);
            }
            std::cmp::Ordering::Greater => {
                let r = self.links[n as usize].right;
                self.links[n as usize].right = self.insert_at(r, key, value, replaced);
            }
            std::cmp::Ordering::Equal => {
                let slot = self.data[n as usize].as_mut().expect("occupied node");
                *replaced = Some(std::mem::replace(&mut slot.1, value));
                return n;
            }
        }
        self.rebalance(n)
    }

    /// Removes the minimum of the subtree, returning (new_root, detached_min).
    fn detach_min(&mut self, n: u32) -> (u32, u32) {
        let l = self.links[n as usize].left;
        if l == NONE {
            return (self.links[n as usize].right, n);
        }
        let (new_left, min) = self.detach_min(l);
        self.links[n as usize].left = new_left;
        (self.rebalance(n), min)
    }

    fn remove_at(&mut self, n: u32, key: &K, removed: &mut Option<(K, V)>) -> u32 {
        if n == NONE {
            return NONE;
        }
        match key.cmp(self.key(n)) {
            std::cmp::Ordering::Less => {
                let l = self.links[n as usize].left;
                self.links[n as usize].left = self.remove_at(l, key, removed);
            }
            std::cmp::Ordering::Greater => {
                let r = self.links[n as usize].right;
                self.links[n as usize].right = self.remove_at(r, key, removed);
            }
            std::cmp::Ordering::Equal => {
                *removed = Some(self.data[n as usize].take().expect("occupied node"));
                self.free.push(n);
                self.len -= 1;
                let (l, r) = (self.links[n as usize].left, self.links[n as usize].right);
                if l == NONE {
                    return r;
                }
                if r == NONE {
                    return l;
                }
                let (new_right, succ) = self.detach_min(r);
                self.links[succ as usize].left = l;
                self.links[succ as usize].right = new_right;
                return self.rebalance(succ);
            }
        }
        self.rebalance(n)
    }

    /// Returns an iterator over entries in ascending key order.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NONE {
            stack.push(cur);
            cur = self.links[cur as usize].left;
        }
        AvlIter { tree: self, stack }
    }

    /// Validates AVL invariants (BST order, |balance factor| <= 1, heights,
    /// accurate `len`), panicking on violation. `O(n)`.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        self.check_subtree(self.root, None, None, &mut count);
        assert_eq!(count, self.len, "len must match node count");
    }

    fn check_subtree(
        &self,
        n: u32,
        lower: Option<&K>,
        upper: Option<&K>,
        count: &mut usize,
    ) -> i32 {
        if n == NONE {
            return 0;
        }
        *count += 1;
        let k = self.key(n);
        if let Some(lo) = lower {
            assert!(k > lo, "BST order violated (lower bound)");
        }
        if let Some(hi) = upper {
            assert!(k < hi, "BST order violated (upper bound)");
        }
        let hl = self.check_subtree(self.links[n as usize].left, lower, Some(k), count);
        let hr = self.check_subtree(self.links[n as usize].right, Some(k), upper, count);
        assert!((hl - hr).abs() <= 1, "AVL balance violated");
        let h = 1 + hl.max(hr);
        assert_eq!(h, self.links[n as usize].height, "stored height stale");
        h
    }
}

impl<K: Ord, V> OrderedMap<K, V> for AvlTree<K, V> {
    fn new() -> Self {
        AvlTree::new()
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut replaced = None;
        let root = self.root;
        self.root = self.insert_at(root, key, value, &mut replaced);
        replaced
    }

    fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root;
        while cur != NONE {
            match key.cmp(self.key(cur)) {
                std::cmp::Ordering::Less => cur = self.links[cur as usize].left,
                std::cmp::Ordering::Greater => cur = self.links[cur as usize].right,
                std::cmp::Ordering::Equal => {
                    return Some(&self.data[cur as usize].as_ref().expect("occupied node").1)
                }
            }
        }
        None
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        let mut removed = None;
        let root = self.root;
        self.root = self.remove_at(root, key, &mut removed);
        removed.map(|(_, v)| v)
    }

    fn pop_min(&mut self) -> Option<(K, V)> {
        if self.root == NONE {
            return None;
        }
        let root = self.root;
        let (new_root, min) = self.detach_min(root);
        self.root = new_root;
        self.len -= 1;
        let entry = self.data[min as usize].take().expect("occupied node");
        self.free.push(min);
        Some(entry)
    }

    fn min_key(&self) -> Option<&K> {
        if self.root == NONE {
            return None;
        }
        let mut cur = self.root;
        while self.links[cur as usize].left != NONE {
            cur = self.links[cur as usize].left;
        }
        Some(self.key(cur))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.links.clear();
        self.data.clear();
        self.free.clear();
        self.root = NONE;
        self.len = 0;
    }

    fn for_each<F: FnMut(&K, &V)>(&self, mut f: F) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }
}

/// In-order iterator over an [`AvlTree`].
pub struct AvlIter<'a, K, V> {
    tree: &'a AvlTree<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let mut cur = self.tree.links[n as usize].right;
        while cur != NONE {
            self.stack.push(cur);
            cur = self.tree.links[cur as usize].left;
        }
        let (k, v) = self.tree.data[n as usize].as_ref().expect("occupied node");
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_sorted_vec;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut t = AvlTree::new();
        for i in 0..1000u32 {
            t.insert(i, i);
        }
        t.check_invariants();
        // A perfectly balanced AVL of 1000 nodes has height <= 1.44 log2(n).
        assert!(t.links[t.root as usize].height <= 15);
    }

    #[test]
    fn remove_internal_nodes() {
        let mut t = AvlTree::new();
        for &k in &[50u32, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43] {
            t.insert(k, k);
        }
        assert_eq!(t.remove(&50), Some(50));
        t.check_invariants();
        assert_eq!(t.remove(&25), Some(25));
        t.check_invariants();
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(&50), None);
        assert_eq!(t.get(&37), Some(&37));
    }

    #[test]
    fn pop_min_drains_in_order() {
        let mut t = AvlTree::new();
        for &k in &[9u32, 1, 8, 2, 7, 3, 6, 4, 5, 0] {
            t.insert(k, ());
        }
        let mut out = Vec::new();
        while let Some((k, _)) = t.pop_min() {
            t.check_invariants();
            out.push(k);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_insert_replaces_value() {
        let mut t = AvlTree::new();
        assert_eq!(t.insert(7, 1), None);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec((0u8..5, 0u16..200, 0u32..1000), 1..400)) {
            let mut tree = AvlTree::new();
            let mut model = BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 | 1 => {
                        prop_assert_eq!(tree.insert(key, val), model.insert(key, val));
                    }
                    2 => {
                        prop_assert_eq!(tree.remove(&key), model.remove(&key));
                    }
                    3 => {
                        prop_assert_eq!(tree.pop_min(), model.pop_first());
                    }
                    _ => {
                        let mut drained = Vec::new();
                        tree.drain_up_to(&key, &mut drained);
                        let rest = model.split_off(&(key + 1));
                        let expected: Vec<_> = std::mem::replace(&mut model, rest).into_iter().collect();
                        prop_assert_eq!(drained, expected);
                    }
                }
                tree.check_invariants();
                prop_assert_eq!(tree.len(), model.len());
            }
            let entries = to_sorted_vec(&tree);
            let expected: Vec<_> = model.into_iter().collect();
            prop_assert_eq!(entries, expected);
        }
    }
}
