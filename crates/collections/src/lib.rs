#![warn(missing_docs)]

//! Ordered-map substrates for the Eunomia stabilization buffer.
//!
//! The paper (§6) reports that Eunomia's core is "a red-black tree, a
//! self-balancing binary search tree optimized for insertions and deletions"
//! and that "the red-black tree turned out to be more efficient than other
//! self-balancing binary search trees such as AVL trees". This crate
//! provides both trees — arena-based and `unsafe`-free — plus an adapter
//! over [`std::collections::BTreeMap`], behind a single [`OrderedMap`]
//! trait, so the choice can be benchmarked (see the `ordered_map` bench in
//! `eunomia-bench`).
//!
//! The operations that matter to Eunomia are:
//!
//! * `insert` — every update received from a partition lands in the buffer;
//! * `drain_up_to` — `PROCESS_STABLE` removes, *in timestamp order*, every
//!   operation with a timestamp less than or equal to the stable time;
//! * `pop_min` — incremental variant of the above.
//!
//! The crate also provides [`TournamentTree`], the min winner tree the
//! sharded stabilizer uses to merge per-lane stable cutoffs in
//! `O(log lanes)` per watermark advance, and [`fasthash`], the
//! deterministic multiply-rotate hasher behind the simulator's hot maps
//! (versioned stores, pending-apply tables).
//!
//! # Examples
//!
//! ```
//! use eunomia_collections::{OrderedMap, RbTree};
//!
//! let mut tree: RbTree<u64, &str> = RbTree::new();
//! tree.insert(30, "c");
//! tree.insert(10, "a");
//! tree.insert(20, "b");
//! let mut stable = Vec::new();
//! tree.drain_up_to(&20, &mut stable);
//! assert_eq!(stable, vec![(10, "a"), (20, "b")]);
//! assert_eq!(tree.len(), 1);
//! ```

mod avl;
mod btree_adapter;
pub mod fasthash;
pub mod fingerprint;
mod rbtree;
mod tournament;

pub use avl::AvlTree;
pub use btree_adapter::BTreeAdapter;
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use fingerprint::{combine_unordered, hash_one, FingerprintSet, Fnv64};
pub use rbtree::RbTree;
pub use tournament::TournamentTree;

/// A totally ordered map supporting the operations Eunomia's stabilization
/// buffer needs.
///
/// Implementations must keep entries sorted by key and must not contain
/// duplicate keys: inserting an existing key replaces the value and returns
/// the old one.
pub trait OrderedMap<K: Ord, V> {
    /// Creates an empty map.
    fn new() -> Self
    where
        Self: Sized;

    /// Inserts a key-value pair, returning the previous value for the key
    /// if one existed.
    fn insert(&mut self, key: K, value: V) -> Option<V>;

    /// Returns a reference to the value for `key`, if present.
    fn get(&self, key: &K) -> Option<&V>;

    /// Removes `key`, returning its value if it was present.
    fn remove(&mut self, key: &K) -> Option<V>;

    /// Removes and returns the entry with the smallest key.
    fn pop_min(&mut self) -> Option<(K, V)>;

    /// Returns a reference to the smallest key, if the map is non-empty.
    fn min_key(&self) -> Option<&K>;

    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether the map holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry with key `<= bound`, appending them to `out` in
    /// ascending key order.
    ///
    /// This is the `FIND_STABLE` + removal step of Algorithm 3: the default
    /// implementation repeatedly pops the minimum, which costs
    /// `O(k log n)` for `k` drained entries.
    fn drain_up_to(&mut self, bound: &K, out: &mut Vec<(K, V)>) {
        while let Some(min) = self.min_key() {
            if min > bound {
                break;
            }
            // `min_key` returned `Some`, so `pop_min` cannot fail.
            let entry = self.pop_min().expect("non-empty map must pop");
            out.push(entry);
        }
    }

    /// Removes all entries.
    fn clear(&mut self);

    /// Visits every entry in ascending key order.
    fn for_each<F: FnMut(&K, &V)>(&self, f: F);
}

/// Collects all entries of a map in ascending order (test/diagnostic helper).
pub fn to_sorted_vec<K: Ord + Clone, V: Clone, M: OrderedMap<K, V>>(map: &M) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(map.len());
    map.for_each(|k, v| out.push((k.clone(), v.clone())));
    out
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<M: OrderedMap<u32, u32>>() {
        let mut m = M::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, 50), None);
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.insert(5, 55), Some(50));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&5), Some(&55));
        assert_eq!(m.min_key(), Some(&3));
        let mut out = Vec::new();
        m.drain_up_to(&4, &mut out);
        assert_eq!(out, vec![(3, 30)]);
        assert_eq!(m.pop_min(), Some((5, 55)));
        assert!(m.pop_min().is_none());
        m.insert(1, 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn rb_satisfies_trait_contract() {
        exercise::<RbTree<u32, u32>>();
    }

    #[test]
    fn avl_satisfies_trait_contract() {
        exercise::<AvlTree<u32, u32>>();
    }

    #[test]
    fn btree_satisfies_trait_contract() {
        exercise::<BTreeAdapter<u32, u32>>();
    }
}
