//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default SipHash is keyed per map instance and costs tens of
//! nanoseconds per `u64` key — measurable when every simulated read is a
//! probe into a million-key versioned store. This is the
//! multiply-rotate scheme popularized by Firefox ("Fx hash"): two or
//! three arithmetic ops per word, no per-instance key, so same-seed
//! simulation runs also get identical map iteration orders for
//! identical insertion sequences.
//!
//! Not DoS-resistant by design — simulation state is never fed adversarial
//! keys. Do not use it for anything that hashes external input.

use std::hash::{BuildHasher, Hasher};

/// Knuth's multiplicative constant (2^64 / φ), the same one Fx uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher state. See the module docs for the contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Stateless [`BuildHasher`] for [`FxHasher`]; every map built from it
/// hashes identically (no per-instance randomness).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically_across_instances() {
        let a = FxBuildHasher.hash_one(0xdead_beef_u64);
        let b = FxBuildHasher.hash_one(0xdead_beef_u64);
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher.hash_one(0xdead_beef_u64 + 1));
    }

    #[test]
    fn write_matches_wordwise_for_aligned_input() {
        // Hashing via `write` on little-endian bytes must agree with the
        // word path, so `#[derive(Hash)]` tuples and manual writes mix.
        let mut h1 = FxHasher::default();
        h1.write(&42u64.to_le_bytes());
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_roundtrip_and_spread() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..10_000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        // Sequential keys must not collapse onto a few buckets: the low
        // bits of the hash have to vary (the rotate+multiply spreads
        // them; identity hashing would fail this).
        let distinct_low: std::collections::HashSet<u64> = (0..1024u64)
            .map(|k| FxBuildHasher.hash_one(k) & 0xff)
            .collect();
        assert!(distinct_low.len() > 200, "low bits: {}", distinct_low.len());
    }

    #[test]
    fn set_type_alias_works() {
        let mut s: FxHashSet<(u16, u64)> = FxHashSet::default();
        assert!(s.insert((3, 9)));
        assert!(!s.insert((3, 9)));
        assert!(s.contains(&(3, 9)));
    }
}
