//! Arena-based red-black tree (CLRS-style, sentinel NIL, no `unsafe`).
//!
//! This is the data structure the paper's C++ Eunomia prototype is built on
//! (§6). Nodes live in a `Vec` arena and reference each other through `u32`
//! indices; index `0` is the shared NIL sentinel, which — exactly as in
//! CLRS — absorbs temporary parent-pointer writes during the delete fixup.
//! Freed slots are recycled through a free list so a long-running
//! stabilization buffer reaches a steady-state allocation footprint.

use crate::OrderedMap;

/// Index of the NIL sentinel in the arena.
const NIL: u32 = 0;

#[derive(Clone, Copy, Debug)]
struct Links {
    left: u32,
    right: u32,
    parent: u32,
    red: bool,
}

impl Links {
    const fn nil() -> Self {
        Links {
            left: NIL,
            right: NIL,
            parent: NIL,
            red: false,
        }
    }
}

/// A red-black tree mapping `K` to `V`.
///
/// All operations are logarithmic; in-order draining of `k` entries costs
/// `O(k log n)`. See [`OrderedMap`] for the operation contract.
#[derive(Clone, Debug)]
pub struct RbTree<K, V> {
    links: Vec<Links>,
    data: Vec<Option<(K, V)>>,
    root: u32,
    free: Vec<u32>,
    len: usize,
}

impl<K: Ord, V> Default for RbTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> RbTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RbTree {
            links: vec![Links::nil()],
            data: vec![None],
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty tree with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        let mut t = Self::new();
        t.links.reserve(cap);
        t.data.reserve(cap);
        t
    }

    fn key(&self, n: u32) -> &K {
        &self.data[n as usize].as_ref().expect("occupied node").0
    }

    fn alloc(&mut self, key: K, value: V, parent: u32) -> u32 {
        let links = Links {
            left: NIL,
            right: NIL,
            parent,
            red: true,
        };
        if let Some(idx) = self.free.pop() {
            self.links[idx as usize] = links;
            self.data[idx as usize] = Some((key, value));
            idx
        } else {
            let idx = self.links.len() as u32;
            self.links.push(links);
            self.data.push(Some((key, value)));
            idx
        }
    }

    fn dealloc(&mut self, n: u32) -> (K, V) {
        let entry = self.data[n as usize].take().expect("occupied node");
        self.free.push(n);
        entry
    }

    fn find(&self, key: &K) -> u32 {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(self.key(cur)) {
                std::cmp::Ordering::Less => cur = self.links[cur as usize].left,
                std::cmp::Ordering::Greater => cur = self.links[cur as usize].right,
                std::cmp::Ordering::Equal => return cur,
            }
        }
        NIL
    }

    fn minimum(&self, mut n: u32) -> u32 {
        while self.links[n as usize].left != NIL {
            n = self.links[n as usize].left;
        }
        n
    }

    fn left_rotate(&mut self, x: u32) {
        let y = self.links[x as usize].right;
        debug_assert_ne!(y, NIL, "left_rotate requires a right child");
        let y_left = self.links[y as usize].left;
        self.links[x as usize].right = y_left;
        if y_left != NIL {
            self.links[y_left as usize].parent = x;
        }
        let xp = self.links[x as usize].parent;
        self.links[y as usize].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.links[xp as usize].left == x {
            self.links[xp as usize].left = y;
        } else {
            self.links[xp as usize].right = y;
        }
        self.links[y as usize].left = x;
        self.links[x as usize].parent = y;
    }

    fn right_rotate(&mut self, x: u32) {
        let y = self.links[x as usize].left;
        debug_assert_ne!(y, NIL, "right_rotate requires a left child");
        let y_right = self.links[y as usize].right;
        self.links[x as usize].left = y_right;
        if y_right != NIL {
            self.links[y_right as usize].parent = x;
        }
        let xp = self.links[x as usize].parent;
        self.links[y as usize].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.links[xp as usize].right == x {
            self.links[xp as usize].right = y;
        } else {
            self.links[xp as usize].left = y;
        }
        self.links[y as usize].right = x;
        self.links[x as usize].parent = y;
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.links[self.links[z as usize].parent as usize].red {
            let zp = self.links[z as usize].parent;
            let zpp = self.links[zp as usize].parent;
            if zp == self.links[zpp as usize].left {
                let uncle = self.links[zpp as usize].right;
                if self.links[uncle as usize].red {
                    self.links[zp as usize].red = false;
                    self.links[uncle as usize].red = false;
                    self.links[zpp as usize].red = true;
                    z = zpp;
                } else {
                    if z == self.links[zp as usize].right {
                        z = zp;
                        self.left_rotate(z);
                    }
                    let zp = self.links[z as usize].parent;
                    let zpp = self.links[zp as usize].parent;
                    self.links[zp as usize].red = false;
                    self.links[zpp as usize].red = true;
                    self.right_rotate(zpp);
                }
            } else {
                let uncle = self.links[zpp as usize].left;
                if self.links[uncle as usize].red {
                    self.links[zp as usize].red = false;
                    self.links[uncle as usize].red = false;
                    self.links[zpp as usize].red = true;
                    z = zpp;
                } else {
                    if z == self.links[zp as usize].left {
                        z = zp;
                        self.right_rotate(z);
                    }
                    let zp = self.links[z as usize].parent;
                    let zpp = self.links[zp as usize].parent;
                    self.links[zp as usize].red = false;
                    self.links[zpp as usize].red = true;
                    self.left_rotate(zpp);
                }
            }
        }
        let root = self.root;
        self.links[root as usize].red = false;
        // The sentinel may have been recolored through an uncle read; it must
        // stay black for the loop conditions above to terminate correctly.
        self.links[NIL as usize].red = false;
    }

    /// Replaces the subtree rooted at `u` with the subtree rooted at `v`.
    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.links[u as usize].parent;
        if up == NIL {
            self.root = v;
        } else if self.links[up as usize].left == u {
            self.links[up as usize].left = v;
        } else {
            self.links[up as usize].right = v;
        }
        // Deliberately unconditional: when `v == NIL`, the sentinel records
        // the parent so `delete_fixup` can walk upward from it (CLRS 12.3).
        self.links[v as usize].parent = up;
    }

    fn remove_node(&mut self, z: u32) -> (K, V) {
        let mut y = z;
        let mut y_was_red = self.links[y as usize].red;
        let x;
        if self.links[z as usize].left == NIL {
            x = self.links[z as usize].right;
            self.transplant(z, x);
        } else if self.links[z as usize].right == NIL {
            x = self.links[z as usize].left;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.links[z as usize].right);
            y_was_red = self.links[y as usize].red;
            x = self.links[y as usize].right;
            if self.links[y as usize].parent == z {
                self.links[x as usize].parent = y;
            } else {
                self.transplant(y, x);
                let zr = self.links[z as usize].right;
                self.links[y as usize].right = zr;
                self.links[zr as usize].parent = y;
            }
            self.transplant(z, y);
            let zl = self.links[z as usize].left;
            self.links[y as usize].left = zl;
            self.links[zl as usize].parent = y;
            self.links[y as usize].red = self.links[z as usize].red;
        }
        if !y_was_red {
            self.delete_fixup(x);
        }
        self.len -= 1;
        self.dealloc(z)
    }

    fn delete_fixup(&mut self, mut x: u32) {
        while x != self.root && !self.links[x as usize].red {
            let xp = self.links[x as usize].parent;
            if x == self.links[xp as usize].left {
                let mut w = self.links[xp as usize].right;
                if self.links[w as usize].red {
                    self.links[w as usize].red = false;
                    self.links[xp as usize].red = true;
                    self.left_rotate(xp);
                    w = self.links[xp as usize].right;
                }
                let wl = self.links[w as usize].left;
                let wr = self.links[w as usize].right;
                if !self.links[wl as usize].red && !self.links[wr as usize].red {
                    self.links[w as usize].red = true;
                    x = xp;
                } else {
                    if !self.links[wr as usize].red {
                        self.links[wl as usize].red = false;
                        self.links[w as usize].red = true;
                        self.right_rotate(w);
                        w = self.links[xp as usize].right;
                    }
                    self.links[w as usize].red = self.links[xp as usize].red;
                    self.links[xp as usize].red = false;
                    let wr = self.links[w as usize].right;
                    self.links[wr as usize].red = false;
                    self.left_rotate(xp);
                    x = self.root;
                }
            } else {
                let mut w = self.links[xp as usize].left;
                if self.links[w as usize].red {
                    self.links[w as usize].red = false;
                    self.links[xp as usize].red = true;
                    self.right_rotate(xp);
                    w = self.links[xp as usize].left;
                }
                let wl = self.links[w as usize].left;
                let wr = self.links[w as usize].right;
                if !self.links[wl as usize].red && !self.links[wr as usize].red {
                    self.links[w as usize].red = true;
                    x = xp;
                } else {
                    if !self.links[wl as usize].red {
                        self.links[wr as usize].red = false;
                        self.links[w as usize].red = true;
                        self.left_rotate(w);
                        w = self.links[xp as usize].left;
                    }
                    self.links[w as usize].red = self.links[xp as usize].red;
                    self.links[xp as usize].red = false;
                    let wl = self.links[w as usize].left;
                    self.links[wl as usize].red = false;
                    self.right_rotate(xp);
                    x = self.root;
                }
            }
        }
        self.links[x as usize].red = false;
        self.links[NIL as usize].red = false;
    }

    /// Returns an iterator over the entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.links[cur as usize].left;
        }
        Iter { tree: self, stack }
    }

    /// Validates every red-black invariant, panicking on violation.
    ///
    /// Checks: BST ordering, black sentinel/root, no red node with a red
    /// child, equal black height on every root-leaf path, parent-pointer
    /// consistency and an accurate `len`. Intended for tests and
    /// `debug_assert!` call sites; costs `O(n)`.
    pub fn check_invariants(&self) {
        assert!(!self.links[NIL as usize].red, "sentinel must be black");
        if self.root != NIL {
            assert!(!self.links[self.root as usize].red, "root must be black");
            assert_eq!(
                self.links[self.root as usize].parent, NIL,
                "root parent must be NIL"
            );
        }
        let mut count = 0usize;
        let black_height = self.check_subtree(self.root, None, None, &mut count);
        assert!(black_height >= 1, "black height must be positive");
        assert_eq!(count, self.len, "len must match node count");
    }

    fn check_subtree(
        &self,
        n: u32,
        lower: Option<&K>,
        upper: Option<&K>,
        count: &mut usize,
    ) -> usize {
        if n == NIL {
            return 1;
        }
        *count += 1;
        let k = self.key(n);
        if let Some(lo) = lower {
            assert!(k > lo, "BST order violated (lower bound)");
        }
        if let Some(hi) = upper {
            assert!(k < hi, "BST order violated (upper bound)");
        }
        let l = self.links[n as usize];
        if l.red {
            assert!(
                !self.links[l.left as usize].red && !self.links[l.right as usize].red,
                "red node must not have red children"
            );
        }
        if l.left != NIL {
            assert_eq!(
                self.links[l.left as usize].parent, n,
                "left child parent link"
            );
        }
        if l.right != NIL {
            assert_eq!(
                self.links[l.right as usize].parent, n,
                "right child parent link"
            );
        }
        let bh_left = self.check_subtree(l.left, lower, Some(k), count);
        let bh_right = self.check_subtree(l.right, Some(k), upper, count);
        assert_eq!(bh_left, bh_right, "black heights must match");
        bh_left + usize::from(!l.red)
    }
}

impl<K: Ord, V> OrderedMap<K, V> for RbTree<K, V> {
    fn new() -> Self {
        RbTree::new()
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            match key.cmp(self.key(cur)) {
                std::cmp::Ordering::Less => cur = self.links[cur as usize].left,
                std::cmp::Ordering::Greater => cur = self.links[cur as usize].right,
                std::cmp::Ordering::Equal => {
                    let slot = self.data[cur as usize].as_mut().expect("occupied node");
                    return Some(std::mem::replace(&mut slot.1, value));
                }
            }
        }
        let is_left = parent != NIL && key < *self.key(parent);
        let z = self.alloc(key, value, parent);
        if parent == NIL {
            self.root = z;
        } else if is_left {
            self.links[parent as usize].left = z;
        } else {
            self.links[parent as usize].right = z;
        }
        self.len += 1;
        self.insert_fixup(z);
        None
    }

    fn get(&self, key: &K) -> Option<&V> {
        let n = self.find(key);
        if n == NIL {
            None
        } else {
            Some(&self.data[n as usize].as_ref().expect("occupied node").1)
        }
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        let n = self.find(key);
        if n == NIL {
            None
        } else {
            Some(self.remove_node(n).1)
        }
    }

    fn pop_min(&mut self) -> Option<(K, V)> {
        if self.root == NIL {
            return None;
        }
        let n = self.minimum(self.root);
        Some(self.remove_node(n))
    }

    fn min_key(&self) -> Option<&K> {
        if self.root == NIL {
            None
        } else {
            Some(self.key(self.minimum(self.root)))
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.links.clear();
        self.links.push(Links::nil());
        self.data.clear();
        self.data.push(None);
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    fn for_each<F: FnMut(&K, &V)>(&self, mut f: F) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }
}

/// In-order iterator over a [`RbTree`].
pub struct Iter<'a, K, V> {
    tree: &'a RbTree<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let mut cur = self.tree.links[n as usize].right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.tree.links[cur as usize].left;
        }
        let (k, v) = self.tree.data[n as usize].as_ref().expect("occupied node");
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_sorted_vec;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = RbTree::new();
        for i in 0..100u32 {
            assert_eq!(t.insert(i * 7 % 101, i), None);
            t.check_invariants();
        }
        assert_eq!(t.len(), 100);
        for i in 0..100u32 {
            assert_eq!(t.get(&(i * 7 % 101)), Some(&i));
        }
        for i in 0..100u32 {
            assert_eq!(t.remove(&(i * 7 % 101)), Some(i));
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_insert_replaces() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn ascending_and_descending_inserts_stay_balanced() {
        let mut asc = RbTree::new();
        let mut desc = RbTree::new();
        for i in 0..1024u32 {
            asc.insert(i, i);
            desc.insert(1024 - i, i);
        }
        asc.check_invariants();
        desc.check_invariants();
        assert_eq!(asc.min_key(), Some(&0));
        assert_eq!(desc.min_key(), Some(&1));
    }

    #[test]
    fn pop_min_yields_sorted_order() {
        let mut t = RbTree::new();
        let keys = [5u32, 3, 9, 1, 7, 2, 8, 4, 6, 0];
        for &k in &keys {
            t.insert(k, k * 10);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = t.pop_min() {
            t.check_invariants();
            out.push(k);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_up_to_respects_bound_inclusively() {
        let mut t = RbTree::new();
        for i in 0..20u32 {
            t.insert(i, ());
        }
        let mut out = Vec::new();
        t.drain_up_to(&9, &mut out);
        assert_eq!(
            out.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(t.len(), 10);
        assert_eq!(t.min_key(), Some(&10));
    }

    #[test]
    fn iter_is_in_order() {
        let mut t = RbTree::new();
        for &k in &[4u32, 2, 6, 1, 3, 5, 7] {
            t.insert(k, k);
        }
        let collected: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn slots_are_recycled_after_removal() {
        let mut t = RbTree::new();
        for i in 0..64u32 {
            t.insert(i, i);
        }
        let arena = t.links.len();
        for i in 0..64u32 {
            t.remove(&i);
        }
        for i in 64..128u32 {
            t.insert(i, i);
        }
        assert_eq!(t.links.len(), arena, "freed slots must be reused");
        t.check_invariants();
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = RbTree::new();
        for i in 0..10u32 {
            t.insert(i, i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.min_key(), None);
        t.insert(3, 3);
        t.check_invariants();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_missing_key_is_none() {
        let mut t: RbTree<u32, u32> = RbTree::new();
        t.insert(1, 1);
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
    }

    proptest! {
        /// Model-based equivalence with `BTreeMap` under random workloads.
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec((0u8..5, 0u16..200, 0u32..1000), 1..400)) {
            let mut tree = RbTree::new();
            let mut model = BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 | 1 => {
                        prop_assert_eq!(tree.insert(key, val), model.insert(key, val));
                    }
                    2 => {
                        prop_assert_eq!(tree.remove(&key), model.remove(&key));
                    }
                    3 => {
                        prop_assert_eq!(tree.pop_min(), model.pop_first());
                    }
                    _ => {
                        let mut drained = Vec::new();
                        tree.drain_up_to(&key, &mut drained);
                        let rest = model.split_off(&(key + 1));
                        let expected: Vec<_> = std::mem::replace(&mut model, rest).into_iter().collect();
                        prop_assert_eq!(drained, expected);
                    }
                }
                tree.check_invariants();
                prop_assert_eq!(tree.len(), model.len());
                prop_assert_eq!(tree.min_key(), model.keys().next());
            }
            let entries = to_sorted_vec(&tree);
            let expected: Vec<_> = model.into_iter().collect();
            prop_assert_eq!(entries, expected);
        }
    }
}
