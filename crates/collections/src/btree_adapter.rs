//! [`OrderedMap`] adapter over [`std::collections::BTreeMap`].
//!
//! The standard-library B-tree is the idiomatic Rust replacement for the
//! paper's red-black tree; the adapter exists so the `ordered_map` ablation
//! bench can compare the three candidates on identical workloads.

use crate::OrderedMap;
use std::collections::BTreeMap;

/// Thin wrapper giving `BTreeMap` the [`OrderedMap`] interface.
#[derive(Clone, Debug, Default)]
pub struct BTreeAdapter<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> BTreeAdapter<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        BTreeAdapter {
            inner: BTreeMap::new(),
        }
    }

    /// Borrows the underlying `BTreeMap`.
    pub fn as_btree(&self) -> &BTreeMap<K, V> {
        &self.inner
    }
}

impl<K: Ord, V> OrderedMap<K, V> for BTreeAdapter<K, V> {
    fn new() -> Self {
        BTreeAdapter::new()
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    fn pop_min(&mut self) -> Option<(K, V)> {
        self.inner.pop_first()
    }

    fn min_key(&self) -> Option<&K> {
        self.inner.keys().next()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn for_each<F: FnMut(&K, &V)>(&self, mut f: F) {
        for (k, v) in &self.inner {
            f(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_forwards_operations() {
        let mut m = BTreeAdapter::new();
        m.insert(2u32, "b");
        m.insert(1, "a");
        assert_eq!(m.min_key(), Some(&1));
        assert_eq!(m.pop_min(), Some((1, "a")));
        assert_eq!(m.remove(&2), Some("b"));
        assert!(m.is_empty());
    }
}
