//! State fingerprinting for the model checker.
//!
//! Exhaustive schedule exploration prunes revisited states by a 64-bit
//! hash of the global state (SPIN-style hash compaction). Two pieces live
//! here so every crate digests state the same way:
//!
//! * [`Fnv64`] — a deterministic [`std::hash::Hasher`] (FNV-1a). The std
//!   `DefaultHasher` makes no cross-version stability promise, and the
//!   model-checking CI gate compares explored-state counts against a
//!   committed baseline, so the hash function must be pinned.
//! * [`FingerprintSet`] — an open-addressing set of `u64` fingerprints,
//!   leaner than `HashSet<u64>` (no per-entry hashing, no `RandomState`)
//!   for the million-insert loops of a DFS sweep.
//!
//! Unordered collections (e.g. a `HashMap` of staged updates) must fold
//! into the digest commutatively or the fingerprint would depend on
//! iteration order; [`combine_unordered`] is the canonical fold.

use std::hash::{Hash, Hasher};

/// FNV-1a 64-bit hasher: deterministic across runs, processes and rust
/// versions (unlike `DefaultHasher`, which only promises determinism
/// within one process).
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes one value with [`Fnv64`].
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// Commutative fold of per-element digests, for hashing unordered
/// collections: `combine_unordered(acc, h)` gives the same result
/// whatever order elements are visited in, while a finishing
/// `write_u64(acc)` into the outer hasher still mixes positions of the
/// *collection* within the overall state.
pub fn combine_unordered(acc: u64, element_digest: u64) -> u64 {
    // Addition is commutative; the multiply inside each element digest
    // already diffuses, so plain wrapping addition suffices and keeps
    // insert/remove of the same element exactly invertible.
    acc.wrapping_add(element_digest)
}

/// Open-addressing set of 64-bit fingerprints (linear probing, power-of-two
/// capacity, ~⅔ max load).
///
/// Zero is a valid fingerprint: it is remapped internally so the empty
/// slot marker never collides with user data.
#[derive(Clone, Debug)]
pub struct FingerprintSet {
    slots: Vec<u64>,
    len: usize,
    mask: usize,
}

const EMPTY: u64 = 0;
/// Stand-in for a genuine zero fingerprint (an arbitrary odd constant).
const ZERO_ALIAS: u64 = 0x9e37_79b9_7f4a_7c15;

impl FingerprintSet {
    /// An empty set with a small initial table.
    pub fn new() -> Self {
        FingerprintSet::with_capacity(1024)
    }

    /// An empty set pre-sized for roughly `n` fingerprints.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(16) * 3 / 2).next_power_of_two();
        FingerprintSet {
            slots: vec![EMPTY; cap],
            len: 0,
            mask: cap - 1,
        }
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no fingerprint has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn key_of(fp: u64) -> u64 {
        if fp == EMPTY {
            ZERO_ALIAS
        } else {
            fp
        }
    }

    /// Inserts `fp`, returning `true` if it was not present before.
    pub fn insert(&mut self, fp: u64) -> bool {
        if (self.len + 1) * 3 > self.slots.len() * 2 {
            self.grow();
        }
        let key = Self::key_of(fp);
        let mut i = (key as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            if slot == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether `fp` has been inserted.
    pub fn contains(&self, fp: u64) -> bool {
        let key = Self::key_of(fp);
        let mut i = (key as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return false;
            }
            if slot == key {
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        self.mask = new_cap - 1;
        for key in old {
            if key == EMPTY {
                continue;
            }
            let mut i = (key as usize) & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = key;
        }
    }
}

impl Default for FingerprintSet {
    fn default() -> Self {
        FingerprintSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_sensitive() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
        assert_ne!(hash_one(&(1u8, 2u8)), hash_one(&(2u8, 1u8)));
    }

    #[test]
    fn combine_unordered_is_order_insensitive() {
        let a = hash_one(&"a");
        let b = hash_one(&"b");
        let c = hash_one(&"c");
        let x = combine_unordered(combine_unordered(combine_unordered(0, a), b), c);
        let y = combine_unordered(combine_unordered(combine_unordered(0, c), a), b);
        assert_eq!(x, y);
        assert_ne!(x, combine_unordered(combine_unordered(0, a), b));
    }

    #[test]
    fn set_insert_contains_and_growth() {
        let mut s = FingerprintSet::with_capacity(4);
        assert!(s.is_empty());
        for i in 0..10_000u64 {
            assert!(s.insert(hash_one(&i)), "first insert of {i}");
        }
        assert_eq!(s.len(), 10_000);
        for i in 0..10_000u64 {
            assert!(!s.insert(hash_one(&i)), "reinsert of {i}");
            assert!(s.contains(hash_one(&i)));
        }
        assert!(!s.contains(hash_one(&99_999u64)));
    }

    #[test]
    fn zero_fingerprint_is_storable() {
        let mut s = FingerprintSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.contains(0));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 1);
    }
}
