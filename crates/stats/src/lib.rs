#![deny(missing_docs)]

//! Measurement utilities shared by the simulator, the threaded runtime and
//! the benchmark harnesses.
//!
//! * [`Histogram`] — log-bucketed latency histogram (HDR-style: power-of-two
//!   buckets with linear sub-buckets) supporting percentiles and CDFs.
//! * [`TimeSeries`] — fixed-width time buckets for throughput timelines
//!   (e.g. the failure-impact plot, Fig. 4 of the paper).
//! * [`Summary`] — Welford online mean/variance with min/max.
//! * [`ServiceStats`] — counters and distributions of one threaded-service
//!   run (stabilized ids/s, batch sizes, queue depth, stabilization
//!   latency), shared by `eunomia-runtime`, `eunomia-geo` and the bench
//!   harnesses.
//! * [`LoadStats`] — offered vs achieved rate, coordinated-omission-free
//!   latency, and queueing delay of one open-loop load run.
//!
//! All values are `u64`; callers choose the unit (this workspace uses
//! nanoseconds for latencies and operations for counters).
//!
//! # Examples
//!
//! ```
//! use eunomia_stats::Histogram;
//!
//! let mut h = Histogram::new();
//! for v in [120, 340, 560, 780, 10_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert!(h.percentile(50.0).unwrap() >= 340);
//! ```

mod histogram;
mod load;
mod service;
mod summary;
mod timeseries;

pub use histogram::Histogram;
pub use load::LoadStats;
pub use service::ServiceStats;
pub use summary::Summary;
pub use timeseries::TimeSeries;

/// Computes the `p`-th percentile (0.0..=100.0) of an *unsorted* sample set
/// using nearest-rank on a sorted copy.
///
/// Returns `None` on an empty slice. Exact, so preferred over
/// [`Histogram::percentile`] when the full sample fits in memory.
pub fn exact_percentile(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    Some(rank_of_sorted(&sorted, p))
}

/// Nearest-rank percentile over an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn rank_of_sorted(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Builds an empirical CDF from samples: returns `(value, cumulative_fraction)`
/// pairs at each distinct sample value, sorted ascending.
pub fn empirical_cdf(samples: &[u64]) -> Vec<(u64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out: Vec<(u64, f64)> = Vec::new();
    for (i, v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *v => last.1 = frac,
            _ => out.push((*v, frac)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentile_basics() {
        let data: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&data, 50.0), Some(50));
        assert_eq!(exact_percentile(&data, 90.0), Some(90));
        assert_eq!(exact_percentile(&data, 100.0), Some(100));
        assert_eq!(exact_percentile(&data, 0.0), Some(1));
        assert_eq!(exact_percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_of_single_sample() {
        assert_eq!(exact_percentile(&[42], 1.0), Some(42));
        assert_eq!(exact_percentile(&[42], 99.0), Some(42));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[5, 1, 5, 3, 1, 9]);
        assert_eq!(cdf.first().unwrap().0, 1);
        assert_eq!(cdf.last().unwrap().0, 9);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // Two of six samples are <= 1.
        assert!((cdf[0].1 - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(empirical_cdf(&[]).is_empty());
    }
}
