//! Log-bucketed histogram (HDR-style) for latency recording.

/// Number of linear sub-buckets per power-of-two bucket. With 32
/// sub-buckets the worst-case relative quantization error is ~3%.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// A histogram over `u64` values with bounded relative error.
///
/// Values are bucketed into power-of-two ranges, each split into
/// `SUB_BUCKETS` (32) linear sub-buckets, giving O(1) recording, a fixed
/// memory footprint and percentile estimates within a few percent — the
/// same scheme HdrHistogram popularized, sized for microsecond latencies.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // 64 exponent buckets x SUB_BUCKETS linear sub-buckets.
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        ((exp - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (upper-bound) value for a bucket index.
    fn value_of(index: usize) -> u64 {
        let exp = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if exp == 0 {
            return sub;
        }
        let shift = (exp - 1) as u32;
        ((SUB_BUCKETS as u64 + sub) << shift) + (1u64 << shift) - 1
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index(value)] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Estimates the `p`-th percentile (0.0..=100.0).
    ///
    /// The estimate is the representative value of the bucket containing
    /// the rank, clamped to the observed min/max, so the relative error is
    /// bounded by the sub-bucket width (~3%).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::value_of(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Estimates several percentiles in one scan over the buckets.
    ///
    /// Returns one entry per requested percentile, in the same order as
    /// `ps`; each entry matches what [`Histogram::percentile`] would
    /// return for that `p`. Prefer this in report code that needs p50 and
    /// p99 (and more) from the same histogram — it walks the 2048-bucket
    /// array once instead of once per percentile.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<Option<u64>> {
        if self.total == 0 {
            return vec![None; ps.len()];
        }
        // Visit the requested percentiles in ascending order, remembering
        // where each came from so the output matches the input order.
        let mut order: Vec<usize> = (0..ps.len()).collect();
        order.sort_by(|&a, &b| ps[a].total_cmp(&ps[b]));
        let mut out = vec![None; ps.len()];
        let mut order_iter = order.into_iter().peekable();
        let mut seen = 0u64;
        let rank = |p: f64| {
            let p = p.clamp(0.0, 100.0);
            ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64
        };
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            while let Some(&slot) = order_iter.peek() {
                if seen >= rank(ps[slot]) {
                    out[slot] = Some(Self::value_of(i).clamp(self.min, self.max));
                    order_iter.next();
                } else {
                    break;
                }
            }
            if order_iter.peek().is_none() {
                return out;
            }
        }
        for slot in order_iter {
            out[slot] = Some(self.max);
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Returns the CDF as `(bucket_upper_value, cumulative_fraction)` pairs
    /// over non-empty buckets.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((
                Self::value_of(i).clamp(self.min, self.max),
                cum as f64 / self.total as f64,
            ));
        }
        out
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        assert_eq!(h.percentile(100.0), Some(31));
        assert_eq!(h.percentile(50.0), Some(15));
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (0..10_000).map(|i| 1 + (i * i) % 1_000_000).collect();
        for &s in &samples {
            h.record(s);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = crate::exact_percentile(&samples, p).unwrap();
            let est = h.percentile(p).unwrap();
            let err = (est as f64 - exact as f64).abs() / exact.max(1) as f64;
            assert!(err < 0.05, "p{p}: est {est} vs exact {exact} (err {err})");
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(123, 10);
        for _ in 0..10 {
            b.record(123);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert!(a.max().unwrap() >= 1_000_000 - 1_000_000 / 20);
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 5, 100, 10_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(7);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn batched_percentiles_match_single_calls() {
        let mut h = Histogram::new();
        for i in 0..5_000u64 {
            h.record(1 + (i * 31) % 750_000);
        }
        let ps = [99.9, 50.0, 0.0, 90.0, 100.0, 99.0];
        let batched = h.percentiles(&ps);
        for (p, got) in ps.iter().zip(&batched) {
            assert_eq!(*got, h.percentile(*p), "p{p}");
        }
        assert_eq!(Histogram::new().percentiles(&ps), vec![None; ps.len()]);
        assert!(h.percentiles(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn batched_percentiles_agree_for_random_data(
            vals in proptest::collection::vec(1u64..1_000_000_000, 1..300),
            ps in proptest::collection::vec(0.0f64..100.0, 1..8),
        ) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            let batched = h.percentiles(&ps);
            for (p, got) in ps.iter().zip(&batched) {
                prop_assert_eq!(*got, h.percentile(*p));
            }
        }

        #[test]
        fn index_is_monotone_and_value_brackets(v in 0u64..u64::MAX / 2) {
            let i = Histogram::index(v);
            let i2 = Histogram::index(v + 1);
            prop_assert!(i2 >= i);
            // The representative value of the bucket must be >= v and within
            // one sub-bucket width above it.
            let rep = Histogram::value_of(i);
            prop_assert!(rep >= v);
            if v >= SUB_BUCKETS as u64 {
                let exp = 63 - v.leading_zeros();
                let width = 1u64 << (exp - SUB_BITS);
                prop_assert!(rep - v < width);
            }
        }

        #[test]
        fn max_percentile_close_to_true_max(vals in proptest::collection::vec(1u64..1_000_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            let true_max = *vals.iter().max().unwrap();
            let est = h.percentile(100.0).unwrap();
            prop_assert!(est <= true_max);
            prop_assert!((true_max - est) as f64 / true_max as f64 <= 0.04);
        }
    }
}
