//! Counters and distributions of one threaded-service run.
//!
//! The threaded runtime (`eunomia-runtime`) fills one [`ServiceStats`]
//! per run; `eunomia-geo` carries it on `RunReport` (alongside the
//! simulator's `EngineStats`) and `perf_service` commits it to
//! `BENCH_service.json`. It lives here so the runtime, the geo layer and
//! the bench harnesses can share it without depending on each other.

use crate::Histogram;
use std::time::Duration;

/// Measurements of the threaded Eunomia service's hot path.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Ids that left the service stabilized — the paper's throughput
    /// quantity (operations leaving towards remote datacenters).
    pub stabilized_ids: u64,
    /// Ids accepted by replicas (non-duplicate).
    pub accepted_ids: u64,
    /// Duplicate id deliveries filtered by the watermark dedup.
    pub duplicate_ids: u64,
    /// Batch frames ingested by replicas.
    pub frames: u64,
    /// Distribution of ids per ingested frame.
    pub batch_sizes: Histogram,
    /// Highest frame backlog observed on any replica's ingest queue.
    pub queue_depth_high_water: u64,
    /// Stabilization latency (ns): id issue (its timestamp) to the
    /// leader's stable drain that emitted it.
    pub stabilization_latency: Histogram,
    /// Feeder-side: intervals in which a lane had unshipped ids but its
    /// credit window admitted none of them (the `EXHAUSTED` state of the
    /// flow-control machine) — how often backpressure actually bit.
    pub credit_stalls: u64,
    /// Feeder-side: frames deferred because a replica's ingest ring was
    /// full. Under credit flow control this should stay near zero — the
    /// credits, not the ring, are supposed to be the limit.
    pub ring_full_stalls: u64,
    /// Feeder-side: ids re-shipped by the retransmission timeout (the
    /// at-least-once safety net). Every one of these lands as a
    /// `duplicate_ids` entry at some replica.
    pub retransmitted_ids: u64,
    /// Replica-side: distribution of credits advertised in grants.
    pub advertised_credits: Histogram,
    /// Replica-side: per-second minimum credit advertised by any lane —
    /// the advertised-window timeline. [`ServiceStats::NO_CREDIT_SAMPLE`]
    /// marks seconds in which no grant was issued.
    ///
    /// With sharded stabilizers each shard thread records only the grants
    /// *it* issued; [`merge`](ServiceStats::merge) folds the per-shard
    /// series element-wise by minimum (a second one shard never sampled
    /// keeps the other shards' minimum — the sentinel always loses), so
    /// the merged run-level series is one per-second min over every lane
    /// of every shard, exactly what a single-threaded stabilizer would
    /// have recorded.
    pub credit_timeline: Vec<u64>,
    /// Stabilizer-side: wall-clock nanoseconds of each theta sweep (one
    /// sample per shard thread per tick: publish the shard minimum,
    /// combine the global cutoff, drain or discard the stable prefix).
    pub theta_sweep_ns: Histogram,
    /// Replica-side: lanes carried per enqueued [`GrantBatch`] — the
    /// grant-coalescing occupancy (1 everywhere means batching never
    /// amortized anything; the lanes-per-feeder-thread ceiling means the
    /// doorbell storm collapsed into one ring entry per sweep).
    ///
    /// [`GrantBatch`]: ../eunomia_core/shard/struct.GrantBatch.html
    pub grant_batch_lanes: Histogram,
    /// Replica-side: grant batches successfully enqueued to feeder rings.
    pub grant_batches: u64,
    /// Replica-side: doorbell unparks rung — at most one per enqueued
    /// batch, so `doorbell_unparks / grant_batches <= 1` pins the
    /// one-unpark-per-batch amortization.
    pub doorbell_unparks: u64,
    /// Measured wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ServiceStats {
    /// Sentinel in [`credit_timeline`](ServiceStats::credit_timeline) for
    /// a second with no grants.
    pub const NO_CREDIT_SAMPLE: u64 = u64::MAX;

    /// Folds one advertised credit into the per-second timeline: the
    /// bucket keeps the *minimum* credit seen that second, the clearest
    /// view of how hard flow control was squeezing.
    pub fn record_credit(&mut self, second: usize, credit: u64) {
        if self.credit_timeline.len() <= second {
            self.credit_timeline
                .resize(second + 1, Self::NO_CREDIT_SAMPLE);
        }
        let slot = &mut self.credit_timeline[second];
        *slot = (*slot).min(credit);
    }

    /// Ids stabilized per wall-clock second.
    pub fn ids_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.stabilized_ids as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean ids per ingested frame.
    pub fn mean_batch_size(&self) -> f64 {
        self.batch_sizes.mean().unwrap_or(0.0)
    }

    /// Stabilization-latency percentile in milliseconds (`None` until at
    /// least one id stabilized).
    pub fn stabilization_latency_ms(&self, p: f64) -> Option<f64> {
        self.stabilization_latency
            .percentile(p)
            .map(|ns| ns as f64 / 1e6)
    }

    /// Batched form of [`stabilization_latency_ms`]: one histogram scan
    /// for any number of percentiles.
    ///
    /// [`stabilization_latency_ms`]: ServiceStats::stabilization_latency_ms
    pub fn stabilization_latencies_ms(&self, ps: &[f64]) -> Vec<Option<f64>> {
        self.stabilization_latency
            .percentiles(ps)
            .into_iter()
            .map(|v| v.map(|ns| ns as f64 / 1e6))
            .collect()
    }

    /// Folds another replica's (or run's) stats into this one: counters
    /// add, histograms merge, high-waters take the max, and the longer
    /// elapsed time wins (replica threads of one run overlap in time).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.stabilized_ids += other.stabilized_ids;
        self.accepted_ids += other.accepted_ids;
        self.duplicate_ids += other.duplicate_ids;
        self.frames += other.frames;
        self.batch_sizes.merge(&other.batch_sizes);
        self.queue_depth_high_water = self
            .queue_depth_high_water
            .max(other.queue_depth_high_water);
        self.stabilization_latency
            .merge(&other.stabilization_latency);
        self.credit_stalls += other.credit_stalls;
        self.ring_full_stalls += other.ring_full_stalls;
        self.retransmitted_ids += other.retransmitted_ids;
        self.advertised_credits.merge(&other.advertised_credits);
        // Per-shard timelines fold element-wise by minimum into one
        // per-second min series. The no-sample sentinel is `u64::MAX`, so
        // it loses against any real sample on either side and survives
        // only for seconds in which *no* shard issued a grant.
        if self.credit_timeline.len() < other.credit_timeline.len() {
            self.credit_timeline
                .resize(other.credit_timeline.len(), Self::NO_CREDIT_SAMPLE);
        }
        for (slot, &v) in self.credit_timeline.iter_mut().zip(&other.credit_timeline) {
            *slot = (*slot).min(v);
        }
        self.theta_sweep_ns.merge(&other.theta_sweep_ns);
        self.grant_batch_lanes.merge(&other.grant_batch_lanes);
        self.grant_batches += other.grant_batches;
        self.doorbell_unparks += other.doorbell_unparks;
        self.elapsed = self.elapsed.max(other.elapsed);
    }

    /// Theta-sweep duration percentile in microseconds (`None` until a
    /// stabilizer shard has swept at least once).
    pub fn theta_sweep_us(&self, p: f64) -> Option<f64> {
        self.theta_sweep_ns.percentile(p).map(|ns| ns as f64 / 1e3)
    }

    /// Mean lanes per enqueued grant batch (0.0 before any batch).
    pub fn mean_grant_batch_lanes(&self) -> f64 {
        self.grant_batch_lanes.mean().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_percentiles() {
        let mut s = ServiceStats {
            stabilized_ids: 2_000,
            elapsed: Duration::from_secs(2),
            ..ServiceStats::default()
        };
        assert!((s.ids_per_sec() - 1_000.0).abs() < 1e-9);
        assert_eq!(s.stabilization_latency_ms(99.0), None);
        for ns in [1_000_000u64, 2_000_000, 30_000_000] {
            s.stabilization_latency.record(ns);
        }
        let p50 = s.stabilization_latency_ms(50.0).unwrap();
        assert!((1.0..30.0).contains(&p50), "{p50}");
        assert_eq!(ServiceStats::default().ids_per_sec(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_watermarks() {
        let mut a = ServiceStats {
            stabilized_ids: 10,
            accepted_ids: 12,
            duplicate_ids: 1,
            frames: 3,
            queue_depth_high_water: 4,
            elapsed: Duration::from_secs(1),
            ..ServiceStats::default()
        };
        a.batch_sizes.record(4);
        let mut b = ServiceStats {
            stabilized_ids: 5,
            accepted_ids: 5,
            duplicate_ids: 0,
            frames: 2,
            queue_depth_high_water: 9,
            elapsed: Duration::from_millis(500),
            ..ServiceStats::default()
        };
        b.batch_sizes.record(2);
        b.batch_sizes.record(3);
        a.merge(&b);
        assert_eq!(a.stabilized_ids, 15);
        assert_eq!(a.accepted_ids, 17);
        assert_eq!(a.frames, 5);
        assert_eq!(a.queue_depth_high_water, 9);
        assert_eq!(a.batch_sizes.count(), 3);
        assert_eq!(a.elapsed, Duration::from_secs(1));
    }

    #[test]
    fn credit_timeline_keeps_per_second_minimum_across_merges() {
        let mut a = ServiceStats::default();
        a.record_credit(0, 500);
        a.record_credit(0, 200);
        a.record_credit(2, 900);
        assert_eq!(
            a.credit_timeline,
            vec![200, ServiceStats::NO_CREDIT_SAMPLE, 900]
        );
        let mut b = ServiceStats {
            credit_stalls: 3,
            ring_full_stalls: 1,
            retransmitted_ids: 7,
            ..ServiceStats::default()
        };
        b.record_credit(1, 50);
        b.record_credit(2, 1000);
        b.record_credit(3, 10);
        b.advertised_credits.record(50);
        a.merge(&b);
        assert_eq!(a.credit_timeline, vec![200, 50, 900, 10]);
        assert_eq!(a.credit_stalls, 3);
        assert_eq!(a.ring_full_stalls, 1);
        assert_eq!(a.retransmitted_ids, 7);
        assert_eq!(a.advertised_credits.count(), 1);
    }

    /// The multi-thread stabilizer fold: three shards of one replica,
    /// each sampling only its own lanes in disjoint and overlapping
    /// seconds, merge into the one per-second min series a single-thread
    /// stabilizer over the union of lanes would have recorded — no shard
    /// clobbers another's seconds, and a second nobody sampled stays the
    /// sentinel instead of a spurious zero.
    #[test]
    fn per_shard_timelines_fold_into_one_min_series() {
        let mut shard0 = ServiceStats::default();
        shard0.record_credit(0, 800);
        shard0.record_credit(2, 300);
        shard0.theta_sweep_ns.record(1_000);
        shard0.grant_batch_lanes.record(16);
        shard0.grant_batches = 1;
        shard0.doorbell_unparks = 1;
        let mut shard1 = ServiceStats::default();
        shard1.record_credit(0, 900); // Loses second 0 to shard0's 800.
        shard1.record_credit(1, 40); // Only shard with a sample here.
        let mut shard2 = ServiceStats::default();
        shard2.record_credit(4, 700); // Longer series than the others.
        shard2.theta_sweep_ns.record(3_000);
        shard2.grant_batch_lanes.record(4);
        shard2.grant_batches = 1;

        let mut run = ServiceStats::default();
        run.merge(&shard0);
        run.merge(&shard1);
        run.merge(&shard2);
        assert_eq!(
            run.credit_timeline,
            vec![800, 40, 300, ServiceStats::NO_CREDIT_SAMPLE, 700]
        );
        assert_eq!(run.theta_sweep_ns.count(), 2);
        assert!(run.theta_sweep_us(100.0).unwrap() >= 1.0);
        assert_eq!(run.grant_batches, 2);
        assert_eq!(run.doorbell_unparks, 1);
        assert!((run.mean_grant_batch_lanes() - 10.0).abs() < 1e-9);
        assert!(
            run.doorbell_unparks <= run.grant_batches,
            "at most one unpark per enqueued batch"
        );
    }
}
