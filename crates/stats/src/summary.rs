//! Online summary statistics (Welford's algorithm).

/// Streaming count/mean/variance/min/max over `f64` observations.
///
/// Uses Welford's numerically stable recurrence, so it can run for the
/// whole length of a simulation without catastrophic cancellation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * 37 % 91) as f64).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(3.0);
        let snapshot = s;
        s.merge(&Summary::new());
        assert_eq!(s.count(), snapshot.count());
        assert_eq!(s.mean(), snapshot.mean());
        let mut e = Summary::new();
        e.merge(&snapshot);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), Some(3.0));
    }
}
