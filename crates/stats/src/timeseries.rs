//! Fixed-width time-bucketed counters for throughput timelines.

/// Accumulates `(time, amount)` observations into fixed-width buckets.
///
/// Used for plots like the paper's Fig. 4 (throughput over time while
/// replicas crash) and Fig. 7 (visibility latency over time around a
/// straggler window). Times and widths share a unit chosen by the caller
/// (microseconds throughout this workspace).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket_width: u64,
    buckets: Vec<u64>,
    samples: Vec<u64>,
    maxima: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: u64) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        TimeSeries {
            bucket_width,
            buckets: Vec::new(),
            samples: Vec::new(),
            maxima: Vec::new(),
        }
    }

    fn bucket_of(&self, time: u64) -> usize {
        (time / self.bucket_width) as usize
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
            self.samples.resize(idx + 1, 0);
            self.maxima.resize(idx + 1, 0);
        }
    }

    /// Adds `amount` at `time` (e.g. one completed operation).
    pub fn add(&mut self, time: u64, amount: u64) {
        let idx = self.bucket_of(time);
        self.ensure(idx);
        self.buckets[idx] += amount;
        self.samples[idx] += 1;
        self.maxima[idx] = self.maxima[idx].max(amount);
    }

    /// Records a single observation of value `amount` at `time`; `mean_at`
    /// then reports per-bucket averages (used for latency timelines).
    pub fn observe(&mut self, time: u64, amount: u64) {
        self.add(time, amount);
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Number of buckets (highest touched bucket + 1).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no observation was added.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Sum accumulated in bucket `idx` (0 for untouched buckets in range).
    pub fn total_at(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Number of observations in bucket `idx`.
    pub fn count_at(&self, idx: usize) -> u64 {
        self.samples.get(idx).copied().unwrap_or(0)
    }

    /// Mean observed value in bucket `idx`, or `None` if the bucket is empty.
    pub fn mean_at(&self, idx: usize) -> Option<f64> {
        let n = self.count_at(idx);
        (n > 0).then(|| self.total_at(idx) as f64 / n as f64)
    }

    /// Largest single observation in bucket `idx`, or `None` if empty.
    pub fn max_at(&self, idx: usize) -> Option<u64> {
        (self.count_at(idx) > 0).then(|| self.maxima[idx])
    }

    /// Throughput for bucket `idx` in amount-per-unit-time.
    pub fn rate_at(&self, idx: usize) -> f64 {
        self.total_at(idx) as f64 / self.bucket_width as f64
    }

    /// Iterates `(bucket_start_time, total)` over all buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64 * self.bucket_width, v))
    }

    /// Total across all buckets.
    pub fn grand_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Total restricted to buckets whose start time lies in
    /// `[from, to)` — used to trim warm-up and cool-down windows the way
    /// the paper discards the first and last minute of each run.
    pub fn total_between(&self, from: u64, to: u64) -> u64 {
        self.iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut ts = TimeSeries::new(1000);
        ts.add(0, 1);
        ts.add(999, 1);
        ts.add(1000, 5);
        assert_eq!(ts.total_at(0), 2);
        assert_eq!(ts.total_at(1), 5);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.grand_total(), 7);
    }

    #[test]
    fn mean_and_rate() {
        let mut ts = TimeSeries::new(100);
        ts.observe(10, 4);
        ts.observe(20, 8);
        assert_eq!(ts.mean_at(0), Some(6.0));
        assert_eq!(ts.count_at(0), 2);
        assert!((ts.rate_at(0) - 12.0 / 100.0).abs() < 1e-12);
        assert_eq!(ts.mean_at(5), None);
    }

    #[test]
    fn trimming_window() {
        let mut ts = TimeSeries::new(10);
        for t in 0..100 {
            ts.add(t, 1);
        }
        // Buckets starting in [10, 90): buckets 1..9 -> 80 observations.
        assert_eq!(ts.total_between(10, 90), 80);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_width_panics() {
        let _ = TimeSeries::new(0);
    }

    #[test]
    fn untouched_buckets_read_zero() {
        let ts = TimeSeries::new(10);
        assert_eq!(ts.total_at(3), 0);
        assert!(ts.is_empty());
    }
}
