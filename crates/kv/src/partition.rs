//! Partition logic: Algorithm 2 generalized to the geo-replicated vector
//! protocol of §4, with the §5 optimizations.
//!
//! A partition serializes updates to its share of the key space. For each
//! update it computes the vector timestamp — local entry from the scalar
//! hybrid clock (`max(physical, dep+1, MaxTs+1)`), remote entries copied
//! from the client's vector — stores the new version, and hands the caller
//! what must be shipped: the lightweight id for Eunomia (metadata path) and
//! the full update for sibling partitions in remote datacenters (data
//! path). Remote updates are applied only when *both* the data and the
//! receiver's APPLY instruction (metadata) have arrived, in either order.

use crate::store::{StoredVersion, VersionedStore};
use crate::{Key, Update, UpdateId, Value};
use eunomia_collections::FxHashMap;
use eunomia_core::ids::{DcId, PartitionId};
use eunomia_core::time::{ScalarHlc, Timestamp, VectorTime};

/// Result of a local update: everything the driver must propagate.
#[derive(Clone, Debug)]
pub struct LocalUpdate {
    /// The full update (data path: ship to sibling partitions remotely).
    pub update: Update,
    /// The §5 identifier (metadata path: send to the local Eunomia).
    pub id: UpdateId,
}

/// Outcome of a receiver APPLY instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The update was applied (or superseded under LWW) — ack the receiver.
    Applied,
    /// The payload has not arrived yet; the ack must wait for the data
    /// message (`on_remote_data` will report it).
    WaitingForData,
}

/// State of one logical partition.
#[derive(Clone, Debug)]
pub struct PartitionState {
    id: PartitionId,
    dc: DcId,
    n_dcs: usize,
    store: VersionedStore,
    clock: ScalarHlc,
    /// Data that arrived before its APPLY instruction.
    staged_data: FxHashMap<(DcId, Timestamp), Update>,
    /// APPLY instructions waiting for their data.
    pending_applies: FxHashMap<(DcId, Timestamp), UpdateId>,
    local_updates: u64,
    remote_applies: u64,
}

impl PartitionState {
    /// Creates partition `id` of datacenter `dc` in an `n_dcs`-datacenter
    /// deployment.
    ///
    /// # Panics
    ///
    /// Panics if `dc` is out of range for `n_dcs`.
    pub fn new(id: PartitionId, dc: DcId, n_dcs: usize) -> Self {
        assert!(dc.index() < n_dcs, "datacenter id out of range");
        PartitionState {
            id,
            dc,
            n_dcs,
            store: VersionedStore::new(),
            clock: ScalarHlc::new(),
            staged_data: FxHashMap::default(),
            pending_applies: FxHashMap::default(),
            local_updates: 0,
            remote_applies: 0,
        }
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The datacenter this partition belongs to.
    pub fn dc(&self) -> DcId {
        self.dc
    }

    /// READ (Alg. 2 l. 1–3): returns the stored value and its vector
    /// timestamp; missing keys read as an empty value at the zero vector.
    pub fn read(&self, key: Key) -> (Value, VectorTime) {
        let (value, vts, _) = self.read_versioned(key);
        (value, vts)
    }

    /// [`read`](Self::read) plus the returned version's origin
    /// datacenter — together with `vts[origin]` that is the version's LWW
    /// rank, which session-guarantee checkers compare reads by. Missing
    /// keys read at origin `DcId(0)` with the zero vector (rank `(0, 0)`,
    /// below every written version).
    pub fn read_versioned(&self, key: Key) -> (Value, VectorTime, DcId) {
        match self.store.get(key) {
            Some(v) => (v.value.clone(), v.vts.clone(), v.origin),
            None => (Value::new(), VectorTime::new(self.n_dcs), DcId(0)),
        }
    }

    /// UPDATE (Alg. 2 l. 4–9 extended per §4): timestamps, stores and
    /// returns what to propagate.
    ///
    /// `physical` is the node's physical clock reading; `client_vc` is the
    /// client's dependency vector (`VClock_c`).
    pub fn update(
        &mut self,
        key: Key,
        value: Value,
        client_vc: &VectorTime,
        physical: Timestamp,
    ) -> LocalUpdate {
        debug_assert_eq!(client_vc.len(), self.n_dcs);
        let local_ts = self.clock.tick(physical, client_vc.get(self.dc));
        let mut vts = client_vc.clone();
        vts.set(self.dc, local_ts);
        let version = StoredVersion {
            value: value.clone(),
            vts: vts.clone(),
            origin: self.dc,
        };
        self.store.put_local(key, version);
        self.local_updates += 1;
        let update = Update {
            key,
            value,
            vts,
            origin: self.dc,
        };
        let id = update.id();
        LocalUpdate { update, id }
    }

    /// Whether the heartbeat of Alg. 2 l. 10–12 is due: no update for at
    /// least `delta` of physical time.
    pub fn heartbeat_due(&self, physical: Timestamp, delta: u64) -> bool {
        self.clock.heartbeat_due(physical, delta)
    }

    /// Emits the heartbeat timestamp (and keeps the timestamp stream
    /// monotone past it).
    pub fn heartbeat(&mut self, physical: Timestamp) -> Timestamp {
        self.clock.heartbeat(physical)
    }

    /// Latest timestamp issued by this partition (`MaxTs_n`).
    pub fn max_ts(&self) -> Timestamp {
        self.clock.last()
    }

    /// Data-path delivery: a sibling partition shipped the full update.
    ///
    /// Returns the ids of APPLY instructions that were waiting for this
    /// payload and are now applied (the driver acks the receiver for them).
    pub fn on_remote_data(&mut self, update: Update) -> Option<UpdateId> {
        let key = (update.origin, update.vts.get(update.origin));
        if let Some(id) = self.pending_applies.remove(&key) {
            self.apply(update);
            Some(id)
        } else {
            self.staged_data.insert(key, update);
            None
        }
    }

    /// Metadata-path delivery: the receiver instructs this partition to
    /// apply the update identified by `id` from `origin` (Alg. 5 l. 13–15).
    pub fn on_apply_request(&mut self, origin: DcId, id: UpdateId) -> ApplyOutcome {
        let key = (origin, id.ts);
        if let Some(update) = self.staged_data.remove(&key) {
            self.apply(update);
            ApplyOutcome::Applied
        } else {
            self.pending_applies.insert(key, id);
            ApplyOutcome::WaitingForData
        }
    }

    /// Applies a remote update immediately, bypassing the data/metadata
    /// rendezvous — the eventually consistent baseline's behaviour
    /// (remote updates execute as soon as they are received).
    pub fn apply_now(&mut self, update: Update) {
        self.apply(update);
    }

    fn apply(&mut self, update: Update) {
        let version = StoredVersion {
            value: update.value,
            vts: update.vts,
            origin: update.origin,
        };
        self.store.put_remote(update.key, version);
        self.remote_applies += 1;
    }

    /// Number of data payloads staged awaiting their APPLY instruction.
    pub fn staged_data_len(&self) -> usize {
        self.staged_data.len()
    }

    /// Number of APPLY instructions awaiting their payload.
    pub fn pending_applies_len(&self) -> usize {
        self.pending_applies.len()
    }

    /// Local updates processed.
    pub fn local_updates(&self) -> u64 {
        self.local_updates
    }

    /// Remote updates applied.
    pub fn remote_applies(&self) -> u64 {
        self.remote_applies
    }

    /// Read-only view of the underlying store (tests, invariant checks).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Folds this partition's protocol state into `h` for model-checking
    /// state hashing. Includes the store, the HLC reading (it gates
    /// future timestamps) and both rendezvous maps (commutatively);
    /// `local_updates`/`remote_applies` counters ride along because they
    /// count applied protocol steps, which *is* behavioural history under
    /// the at-least-once transport the checker can inject.
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        use eunomia_collections::{combine_unordered, hash_one};
        h.write_u32(self.id.0);
        h.write_u16(self.dc.0);
        self.store.state_digest(h);
        h.write_u64(self.clock.last().0);
        let mut staged = 0u64;
        for (k, v) in &self.staged_data {
            staged = combine_unordered(staged, hash_one(&(k, v)));
        }
        h.write_u64(staged);
        let mut pending = 0u64;
        for (k, v) in &self.pending_applies {
            pending = combine_unordered(pending, hash_one(&(k, v)));
        }
        h.write_u64(pending);
        h.write_u64(self.local_updates);
        h.write_u64(self.remote_applies);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(s: &str) -> Value {
        Value::from(s.as_bytes().to_vec())
    }

    fn partition() -> PartitionState {
        PartitionState::new(PartitionId(0), DcId(0), 3)
    }

    #[test]
    fn missing_key_reads_empty_at_zero_vector() {
        let p = partition();
        let (v, vts) = p.read(Key(1));
        assert!(v.is_empty());
        assert_eq!(vts, VectorTime::new(3));
    }

    #[test]
    fn update_sets_local_entry_and_copies_rest() {
        let mut p = partition();
        let client_vc = VectorTime::from_ticks(&[0, 55, 66]);
        let res = p.update(Key(1), value("x"), &client_vc, Timestamp(100));
        assert_eq!(res.update.vts.get(DcId(0)), Timestamp(100));
        assert_eq!(res.update.vts.get(DcId(1)), Timestamp(55));
        assert_eq!(res.update.vts.get(DcId(2)), Timestamp(66));
        assert_eq!(res.id.ts, Timestamp(100));
        let (v, vts) = p.read(Key(1));
        assert_eq!(v, value("x"));
        assert_eq!(vts, res.update.vts);
    }

    #[test]
    fn local_timestamps_strictly_increase_even_with_stalled_clock() {
        let mut p = partition();
        let vc = VectorTime::new(3);
        let mut prev = Timestamp::ZERO;
        for _ in 0..100 {
            let res = p.update(Key(2), value("y"), &vc, Timestamp(10));
            let ts = res.update.vts.get(DcId(0));
            assert!(ts > prev);
            prev = ts;
        }
    }

    #[test]
    fn update_dominates_client_dependency_on_local_entry() {
        let mut p = partition();
        let client_vc = VectorTime::from_ticks(&[500, 0, 0]);
        let res = p.update(Key(3), value("z"), &client_vc, Timestamp(100));
        // dep + 1 rule: strictly above the client's local entry.
        assert_eq!(res.update.vts.get(DcId(0)), Timestamp(501));
    }

    #[test]
    fn heartbeat_gating() {
        let mut p = partition();
        p.update(Key(1), value("a"), &VectorTime::new(3), Timestamp(1000));
        assert!(!p.heartbeat_due(Timestamp(1004), 5));
        assert!(p.heartbeat_due(Timestamp(1005), 5));
        let hb = p.heartbeat(Timestamp(1005));
        assert_eq!(hb, Timestamp(1005));
        // Next update outranks the heartbeat even at a stalled clock.
        let res = p.update(Key(1), value("b"), &VectorTime::new(3), Timestamp(1005));
        assert!(res.update.vts.get(DcId(0)) > hb);
    }

    #[test]
    fn remote_data_then_apply() {
        let mut p = partition();
        let u = Update {
            key: Key(5),
            value: value("remote"),
            vts: VectorTime::from_ticks(&[0, 42, 0]),
            origin: DcId(1),
        };
        assert_eq!(p.on_remote_data(u.clone()), None);
        assert_eq!(p.staged_data_len(), 1);
        let outcome = p.on_apply_request(DcId(1), u.id());
        assert_eq!(outcome, ApplyOutcome::Applied);
        assert_eq!(p.read(Key(5)).0, value("remote"));
        assert_eq!(p.remote_applies(), 1);
        assert_eq!(p.staged_data_len(), 0);
    }

    #[test]
    fn apply_before_data_waits_then_completes() {
        let mut p = partition();
        let u = Update {
            key: Key(6),
            value: value("late-data"),
            vts: VectorTime::from_ticks(&[0, 0, 77]),
            origin: DcId(2),
        };
        assert_eq!(
            p.on_apply_request(DcId(2), u.id()),
            ApplyOutcome::WaitingForData
        );
        assert_eq!(p.pending_applies_len(), 1);
        // Data arrives: the deferred apply completes and reports the id.
        assert_eq!(p.on_remote_data(u.clone()), Some(u.id()));
        assert_eq!(p.read(Key(6)).0, value("late-data"));
        assert_eq!(p.pending_applies_len(), 0);
    }

    #[test]
    fn remote_apply_respects_lww() {
        let mut p = partition();
        // Local write with a high local timestamp.
        let vc = VectorTime::from_ticks(&[0, 0, 0]);
        p.update(Key(7), value("local"), &vc, Timestamp(100));
        // Remote concurrent write from dc1 with ts 50 at its origin.
        let u = Update {
            key: Key(7),
            value: value("remote"),
            vts: VectorTime::from_ticks(&[0, 50, 0]),
            origin: DcId(1),
        };
        p.on_remote_data(u.clone());
        p.on_apply_request(DcId(1), u.id());
        // rank(local) = (100, dc0) vs rank(remote) = (50, dc1): local wins.
        assert_eq!(p.read(Key(7)).0, value("local"));
    }

    #[test]
    #[should_panic(expected = "datacenter id out of range")]
    fn bad_dc_panics() {
        let _ = PartitionState::new(PartitionId(0), DcId(3), 3);
    }

    mod rendezvous_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any interleaving of data deliveries and APPLY
            /// instructions (each update gets exactly one of each, in
            /// either relative order), every update is applied exactly
            /// once and no staging state leaks.
            #[test]
            fn data_and_metadata_rendezvous_in_any_order(
                n in 1usize..30,
                data_first in proptest::collection::vec(proptest::bool::ANY, 30),
            ) {
                let mut p = PartitionState::new(PartitionId(0), DcId(0), 2);
                let mut applied = 0usize;
                for (i, &first) in data_first.iter().enumerate().take(n) {
                    let u = Update {
                        key: Key(i as u64),
                        value: Value::from_static(b"v"),
                        vts: VectorTime::from_ticks(&[0, (i + 1) as u64]),
                        origin: DcId(1),
                    };
                    if first {
                        prop_assert_eq!(p.on_remote_data(u.clone()), None);
                        prop_assert_eq!(
                            p.on_apply_request(DcId(1), u.id()),
                            ApplyOutcome::Applied
                        );
                        applied += 1;
                    } else {
                        prop_assert_eq!(
                            p.on_apply_request(DcId(1), u.id()),
                            ApplyOutcome::WaitingForData
                        );
                        prop_assert_eq!(p.on_remote_data(u.clone()), Some(u.id()));
                        applied += 1;
                    }
                }
                prop_assert_eq!(p.remote_applies(), applied as u64);
                prop_assert_eq!(p.staged_data_len(), 0);
                prop_assert_eq!(p.pending_applies_len(), 0);
                prop_assert_eq!(p.store().len(), n);
            }

            /// Local update timestamps strictly increase and always
            /// dominate the client's dependency vector.
            #[test]
            fn local_updates_dominate_dependencies(
                deps in proptest::collection::vec(
                    proptest::collection::vec(0u64..1000, 3), 1..50
                ),
                phys in proptest::collection::vec(0u64..1000, 50),
            ) {
                let mut p = PartitionState::new(PartitionId(0), DcId(1), 3);
                let mut prev = Timestamp::ZERO;
                for (i, d) in deps.iter().enumerate() {
                    let vc = VectorTime::from_ticks(d);
                    let res = p.update(Key(1), Value::from_static(b"x"), &vc, Timestamp(phys[i % phys.len()]));
                    let vts = &res.update.vts;
                    prop_assert!(vts.dominates(&vc));
                    prop_assert!(vts.get(DcId(1)) > vc.get(DcId(1)));
                    prop_assert!(vts.get(DcId(1)) > prev);
                    prev = vts.get(DcId(1));
                }
            }
        }
    }
}
