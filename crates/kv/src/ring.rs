//! Key routing: the `RESPONSIBLE(Key)` function.
//!
//! Keys are spread over the `N` logical partitions of a datacenter with a
//! multiplicative (Fibonacci) hash, so dense workload keys 0..K do not all
//! land on consecutive partitions. Sibling partitions across datacenters
//! share the same index, which is what lets the data path of §5 ship an
//! update straight to "its sibling partitions in other datacenters".

use crate::Key;
use eunomia_core::ids::PartitionId;

/// 2^64 / phi, the classic Fibonacci hashing multiplier.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Maps a key to its responsible partition among `n_partitions`.
///
/// # Panics
///
/// Panics if `n_partitions` is zero.
pub fn responsible(key: Key, n_partitions: usize) -> PartitionId {
    assert!(n_partitions > 0, "need at least one partition");
    let h = key.0.wrapping_mul(GOLDEN);
    PartitionId((h >> 32) as u32 % n_partitions as u32)
}

/// Whether datacenter `dc` replicates `key` under partial replication
/// with `rf` replicas out of `m` datacenters.
///
/// The replica set of a key is its "home" datacenter (chosen by hash)
/// plus the next `rf - 1` datacenters on the ring — the scheme the
/// partial-replication extension uses (the paper's §8 names partial
/// replication, in the style of Practi, as unexplored future work; the
/// §5 separation of data and metadata is what makes it cheap: metadata
/// still flows everywhere, only data is scoped).
///
/// # Panics
///
/// Panics if `rf` is zero or exceeds `m`.
pub fn replicates(key: Key, dc: usize, m: usize, rf: usize) -> bool {
    assert!(rf >= 1 && rf <= m, "replication factor must be in 1..=M");
    let home = (key.0.wrapping_mul(GOLDEN) >> 17) as usize % m;
    let offset = (dc + m - home) % m;
    offset < rf
}

/// The set of datacenters replicating `key` (ascending order).
pub fn replica_set(key: Key, m: usize, rf: usize) -> Vec<usize> {
    (0..m).filter(|dc| replicates(key, *dc, m, rf)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stable_mapping() {
        let a = responsible(Key(42), 8);
        let b = responsible(Key(42), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn spreads_dense_keys() {
        let n = 8;
        let mut counts = vec![0u32; n];
        for k in 0..8000u64 {
            counts[responsible(Key(k), n).index()] += 1;
        }
        // Every partition sees a reasonable share (within 2x of fair).
        for &c in &counts {
            assert!(c > 8000 / (2 * n as u32), "unbalanced: {counts:?}");
            assert!(c < 8000 * 2 / n as u32, "unbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = responsible(Key(1), 0);
    }

    #[test]
    fn full_replication_is_everywhere() {
        for k in 0..100u64 {
            assert_eq!(replica_set(Key(k), 3, 3), vec![0, 1, 2]);
        }
    }

    #[test]
    fn partial_replication_spreads_homes() {
        let m = 3;
        let mut counts = vec![0u32; m];
        for k in 0..3000u64 {
            for dc in replica_set(Key(k), m, 2) {
                counts[dc] += 1;
            }
        }
        // Each key at exactly rf DCs; DC load roughly even.
        assert_eq!(counts.iter().sum::<u32>(), 3000 * 2);
        for &c in &counts {
            assert!((1500..2500).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_rf_panics() {
        let _ = replicates(Key(1), 0, 3, 0);
    }

    proptest! {
        #[test]
        fn always_in_range(key in 0u64..u64::MAX, n in 1usize..64) {
            let p = responsible(Key(key), n);
            prop_assert!(p.index() < n);
        }

        /// Every key has exactly `rf` replicas and they form a contiguous
        /// ring segment starting at the key's home.
        #[test]
        fn replica_sets_have_rf_members(key in 0u64..u64::MAX, m in 1usize..8, rf_off in 0usize..8) {
            let rf = rf_off % m + 1;
            let set = replica_set(Key(key), m, rf);
            prop_assert_eq!(set.len(), rf);
        }
    }
}
