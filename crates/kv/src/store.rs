//! In-memory versioned key-value storage engine.

use crate::{Key, Value};
use eunomia_collections::FxHashMap;
use eunomia_core::ids::DcId;
use eunomia_core::time::{Timestamp, VectorTime};

/// One stored version of a key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StoredVersion {
    /// The value payload.
    pub value: Value,
    /// Vector timestamp of the update that produced this version.
    pub vts: VectorTime,
    /// Datacenter where the update originated.
    pub origin: DcId,
}

impl StoredVersion {
    /// Deterministic last-writer-wins rank: the update's timestamp at its
    /// origin, with the origin id as tie-breaker.
    ///
    /// Within a datacenter, updates to a key are serialized by its
    /// partition, so ranks of same-origin versions never tie. Across
    /// datacenters, *concurrent* updates to the same key must converge to
    /// one winner everywhere; causally ordered updates already have ordered
    /// ranks because the later update's origin entry is strictly greater
    /// (the paper's protocol never orders `u2` after `u1` it depends on
    /// with a smaller origin timestamp). The open-source Riak of the paper
    /// resolves siblings with client-side merge; LWW is the standard
    /// deterministic substitute and is documented in DESIGN.md.
    pub fn rank(&self) -> (Timestamp, u16) {
        (self.vts.get(self.origin), self.origin.0)
    }
}

/// An in-memory map from [`Key`] to its latest [`StoredVersion`].
#[derive(Clone, Debug, Default)]
pub struct VersionedStore {
    map: FxHashMap<u64, StoredVersion>,
    writes_applied: u64,
    writes_ignored: u64,
}

impl VersionedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        VersionedStore::default()
    }

    /// Reads the current version of `key`, if any.
    pub fn get(&self, key: Key) -> Option<&StoredVersion> {
        self.map.get(&key.0)
    }

    /// Unconditionally installs a locally generated version (local updates
    /// are serialized by the owning partition, so they always win locally).
    pub fn put_local(&mut self, key: Key, version: StoredVersion) {
        self.writes_applied += 1;
        self.map.insert(key.0, version);
    }

    /// Installs a remotely originated version under last-writer-wins:
    /// the write is ignored iff an existing version outranks it.
    /// Returns whether the write took effect.
    pub fn put_remote(&mut self, key: Key, version: StoredVersion) -> bool {
        match self.map.get(&key.0) {
            Some(existing) if existing.rank() >= version.rank() => {
                self.writes_ignored += 1;
                false
            }
            _ => {
                self.writes_applied += 1;
                self.map.insert(key.0, version);
                true
            }
        }
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Writes that took effect.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Remote writes ignored by LWW.
    pub fn writes_ignored(&self) -> u64 {
        self.writes_ignored
    }

    /// Iterates over all `(key, version)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (Key, &StoredVersion)> + '_ {
        self.map.iter().map(|(k, v)| (Key(*k), v))
    }

    /// Folds the store's contents into `h` for model-checking state
    /// hashing: the key→version map commutatively (the backing map is
    /// unordered), write counters excluded (bookkeeping, not behaviour).
    pub fn state_digest(&self, h: &mut dyn std::hash::Hasher) {
        use eunomia_collections::{combine_unordered, hash_one};
        let mut acc = 0u64;
        for (k, v) in &self.map {
            acc = combine_unordered(acc, hash_one(&(k, v)));
        }
        h.write_u64(acc);
        h.write_usize(self.map.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn version(origin: u16, vts: &[u64]) -> StoredVersion {
        StoredVersion {
            value: Value::from(format!("o{origin}").into_bytes()),
            vts: VectorTime::from_ticks(vts),
            origin: DcId(origin),
        }
    }

    #[test]
    fn get_of_missing_key_is_none() {
        let s = VersionedStore::new();
        assert!(s.get(Key(1)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn local_put_overwrites() {
        let mut s = VersionedStore::new();
        s.put_local(Key(1), version(0, &[5, 0]));
        s.put_local(Key(1), version(0, &[9, 0]));
        assert_eq!(s.get(Key(1)).unwrap().vts, VectorTime::from_ticks(&[9, 0]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.writes_applied(), 2);
    }

    #[test]
    fn remote_lww_keeps_higher_rank() {
        let mut s = VersionedStore::new();
        assert!(s.put_remote(Key(1), version(1, &[0, 50])));
        // Lower origin timestamp loses.
        assert!(!s.put_remote(Key(1), version(1, &[0, 40])));
        // Higher wins.
        assert!(s.put_remote(Key(1), version(1, &[0, 60])));
        assert_eq!(s.get(Key(1)).unwrap().vts, VectorTime::from_ticks(&[0, 60]));
        assert_eq!(s.writes_ignored(), 1);
    }

    #[test]
    fn concurrent_cross_dc_writes_converge_in_any_order() {
        let a = version(0, &[50, 0]);
        let b = version(1, &[0, 50]);
        let mut s1 = VersionedStore::new();
        s1.put_remote(Key(7), a.clone());
        s1.put_remote(Key(7), b.clone());
        let mut s2 = VersionedStore::new();
        s2.put_remote(Key(7), b);
        s2.put_remote(Key(7), a);
        assert_eq!(
            s1.get(Key(7)),
            s2.get(Key(7)),
            "LWW must be order-insensitive"
        );
        // Tie on timestamp 50: higher DC id wins deterministically.
        assert_eq!(s1.get(Key(7)).unwrap().origin, DcId(1));
    }

    #[test]
    fn equal_rank_is_idempotent() {
        let mut s = VersionedStore::new();
        let v = version(2, &[0, 0, 33]);
        assert!(s.put_remote(Key(3), v.clone()));
        assert!(!s.put_remote(Key(3), v), "redelivery must not flap");
    }
}
