//! Client sessions (Algorithm 1, scalar and vector forms).
//!
//! A client keeps the largest timestamp(s) seen in its session; that clock
//! is the whole causal dependency it ships with each update. Reads merge
//! the returned version's timestamp in; update replies *replace* the clock
//! (the returned timestamp is strictly greater — Alg. 1 l. 9, §4).

use eunomia_core::ids::DcId;
use eunomia_core::time::{Timestamp, VectorTime};

/// Scalar client session (Algorithm 1 verbatim): one datacenter, scalar
/// timestamps. Used by the single-DC quickstart and the service-level
/// benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarClientState {
    clock: Timestamp,
}

impl ScalarClientState {
    /// A fresh session with an empty causal past.
    pub fn new() -> Self {
        ScalarClientState {
            clock: Timestamp::ZERO,
        }
    }

    /// The session clock (`Clock_c`), sent with every update.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// READ reply: `Clock_c <- max(Clock_c, Ts)` (Alg. 1 l. 4).
    pub fn on_read_reply(&mut self, ts: Timestamp) {
        self.clock = self.clock.max(ts);
    }

    /// UPDATE reply: `Clock_c <- Ts` (Alg. 1 l. 9); debug-asserts the
    /// protocol guarantee that the new timestamp exceeds the old clock.
    pub fn on_update_reply(&mut self, ts: Timestamp) {
        debug_assert!(
            ts > self.clock,
            "update timestamp must exceed the session clock"
        );
        self.clock = ts;
    }
}

/// Vector client session (§4): one entry per datacenter.
#[derive(Clone, Debug)]
pub struct ClientState {
    vclock: VectorTime,
    home: DcId,
    reads: u64,
    updates: u64,
}

impl ClientState {
    /// A fresh session homed at datacenter `home` in an `n_dcs` deployment.
    pub fn new(home: DcId, n_dcs: usize) -> Self {
        assert!(home.index() < n_dcs, "home datacenter out of range");
        ClientState {
            vclock: VectorTime::new(n_dcs),
            home,
            reads: 0,
            updates: 0,
        }
    }

    /// The session's dependency vector (`VClock_c`).
    pub fn vclock(&self) -> &VectorTime {
        &self.vclock
    }

    /// The client's home datacenter.
    pub fn home(&self) -> DcId {
        self.home
    }

    /// READ reply: entrywise max-merge (§4 "Read").
    pub fn on_read_reply(&mut self, vts: &VectorTime) {
        self.vclock.merge_max(vts);
        self.reads += 1;
    }

    /// UPDATE reply: substitute the returned vector, which is strictly
    /// greater than `VClock_c` (§4 "Update").
    pub fn on_update_reply(&mut self, vts: VectorTime) {
        debug_assert!(
            vts.dominates(&self.vclock),
            "update vts must dominate the session clock"
        );
        self.vclock = vts;
        self.updates += 1;
    }

    /// Session reads completed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Session updates completed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Folds the session state into `h` for model-checking state hashing:
    /// the dependency vector plus the read/update counts (both shape
    /// which version a future read may legally return).
    pub fn state_digest(&self, mut h: &mut dyn std::hash::Hasher) {
        use std::hash::Hash as _;
        self.vclock.hash(&mut h);
        h.write_u16(self.home.0);
        h.write_u64(self.reads);
        h.write_u64(self.updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_session_tracks_causal_past() {
        let mut c = ScalarClientState::new();
        c.on_read_reply(Timestamp(10));
        assert_eq!(c.clock(), Timestamp(10));
        // An older version does not move the clock back.
        c.on_read_reply(Timestamp(5));
        assert_eq!(c.clock(), Timestamp(10));
        c.on_update_reply(Timestamp(11));
        assert_eq!(c.clock(), Timestamp(11));
    }

    #[test]
    fn vector_session_merges_reads_and_substitutes_updates() {
        let mut c = ClientState::new(DcId(0), 3);
        c.on_read_reply(&VectorTime::from_ticks(&[1, 9, 0]));
        c.on_read_reply(&VectorTime::from_ticks(&[4, 2, 3]));
        assert_eq!(c.vclock(), &VectorTime::from_ticks(&[4, 9, 3]));
        c.on_update_reply(VectorTime::from_ticks(&[5, 9, 3]));
        assert_eq!(c.vclock(), &VectorTime::from_ticks(&[5, 9, 3]));
        assert_eq!(c.reads(), 2);
        assert_eq!(c.updates(), 1);
    }

    #[test]
    #[should_panic(expected = "home datacenter out of range")]
    fn bad_home_panics() {
        let _ = ClientState::new(DcId(5), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must dominate")]
    fn regressing_update_reply_asserts() {
        let mut c = ClientState::new(DcId(0), 2);
        c.on_read_reply(&VectorTime::from_ticks(&[10, 10]));
        c.on_update_reply(VectorTime::from_ticks(&[11, 0]));
    }
}
