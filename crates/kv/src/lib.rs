#![warn(missing_docs)]

//! Partitioned, versioned key-value store substrate (Riak-KV-like).
//!
//! The paper integrates Eunomia with Riak KV: the key space is divided into
//! `N` logical partitions spread over datacenter machines, each partition
//! serializes updates to its keys, and clients talk directly to the
//! responsible partition. This crate reproduces the parts of that substrate
//! the protocols rely on:
//!
//! * [`store::VersionedStore`] — an in-memory map from keys to versioned
//!   values `(value, vector time)` with deterministic last-writer-wins
//!   convergence for concurrent cross-datacenter writes;
//! * [`partition::PartitionState`] — Algorithm 2 (scalar) generalized to
//!   the vector protocol of §4, plus the §5 optimizations: operation
//!   batching towards Eunomia and separation of data and metadata;
//! * [`client::ClientState`] — Algorithm 1 generalized to vectors: the
//!   client clock that captures each session's causal past;
//! * [`ring`] — the `RESPONSIBLE(key)` routing function.
//!
//! Everything is sans-IO: drivers (the simulator in `eunomia-geo`, tests)
//! push messages in and ship returned values out.
//!
//! # Examples
//!
//! A client session updating through a partition (Algorithms 1–2, vector
//! form):
//!
//! ```
//! use eunomia_core::ids::{DcId, PartitionId};
//! use eunomia_core::time::Timestamp;
//! use eunomia_kv::client::ClientState;
//! use eunomia_kv::partition::PartitionState;
//! use eunomia_kv::{Key, Value};
//!
//! let mut partition = PartitionState::new(PartitionId(0), DcId(0), 3);
//! let mut session = ClientState::new(DcId(0), 3);
//!
//! let res = partition.update(
//!     Key(7),
//!     Value::from_static(b"hello"),
//!     session.vclock(),
//!     Timestamp(1_000),
//! );
//! session.on_update_reply(res.update.vts.clone());
//!
//! let (value, vts) = partition.read(Key(7));
//! assert_eq!(&value[..], b"hello");
//! session.on_read_reply(&vts);
//! // The update's id is what travels to Eunomia; the full update is what
//! // ships to sibling partitions in remote datacenters (§5).
//! assert_eq!(res.id.ts, vts.get(DcId(0)));
//! ```

pub mod client;
pub mod partition;
pub mod ring;
pub mod store;

use eunomia_core::ids::DcId;
use eunomia_core::time::{Timestamp, VectorTime};

/// A key in the store. The workloads use dense integer keys; hashing in
/// [`ring::responsible`] spreads them over partitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

/// A stored value. [`bytes::Bytes`] gives cheap clones when the same
/// payload is shipped to several datacenters.
pub type Value = bytes::Bytes;

/// The §5 lightweight update identifier: the local entry of the update's
/// vector time plus the key. Eunomia handles only these (plus the origin
/// partition), never the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpdateId {
    /// Local entry of the update's vector timestamp (`u.vts[m]`).
    pub ts: Timestamp,
    /// Updated key.
    pub key: Key,
}

/// A fully described update as shipped between sibling partitions (the
/// data path of §5) and as buffered before remote application.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Update {
    /// Updated key.
    pub key: Key,
    /// New value.
    pub value: Value,
    /// Full vector timestamp.
    pub vts: VectorTime,
    /// Originating datacenter.
    pub origin: DcId,
}

impl Update {
    /// The §5 identifier of this update.
    pub fn id(&self) -> UpdateId {
        UpdateId {
            ts: self.vts.get(self.origin),
            key: self.key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_id_uses_origin_entry() {
        let u = Update {
            key: Key(9),
            value: Value::from_static(b"v"),
            vts: VectorTime::from_ticks(&[10, 20, 30]),
            origin: DcId(1),
        };
        assert_eq!(
            u.id(),
            UpdateId {
                ts: Timestamp(20),
                key: Key(9)
            }
        );
    }
}
