//! Model checking: exhaustive and bounded-random exploration of message
//! delivery schedules, with safety predicates checked at every explored
//! state and replayable counterexample traces on violation.
//!
//! A seeded simulation run samples *one* interleaving of message
//! deliveries and timer firings per seed; correctness claims like "causal
//! delivery holds under deferred stabilization" only hold if they survive
//! *every* interleaving the network can produce. This module turns the
//! engine into a state-space explorer in the style of stateless model
//! checkers (SPIN's bitstate search, dslab-mp's `ModelChecker`): the
//! engine's scheduling decisions are externalized
//! ([`Simulation::mc_begin`]) and a [`ModelChecker`] drives them.
//!
//! # Exploration strategies
//!
//! * [`ModelChecker::run_exhaustive`] — depth-first search over all
//!   schedules. At each state the candidate set is one `Deliver` per
//!   non-empty FIFO link, plus `Tick` (fire the earliest pending timer)
//!   while the per-path timer budget lasts, plus optional `Drop` /
//!   `DeliverDup` fault choices under [`McOptions`] budgets. Because
//!   processes are boxed trait objects (not cloneable), backtracking is
//!   **replay-based**: the cluster is rebuilt from the factory closure and
//!   the decision prefix is re-applied — the classic stateless-MC
//!   trade-off of CPU for memory.
//! * [`ModelChecker::run_random`] — bounded-random walks for state spaces
//!   too large to exhaust: `runs` independent schedules, each choosing
//!   uniformly among candidates from a seeded RNG. No pruning, no
//!   completeness claim; a cheap bug-finder for larger configs.
//!
//! # State-hash pruning
//!
//! Exhaustive search prunes states it has seen before via a 64-bit
//! fingerprint ([`Simulation::mc_fingerprint`]) stored in a
//! `FingerprintSet`: process digests ([`Process::mc_state`]), the
//! in-flight message multiset, pending timers and the RNG cursor.
//! Simulated *time* is deliberately excluded — under the zero-latency
//! configs MC uses, states differing only in clock readings behave
//! identically, and hashing time would make every interleaving unique and
//! defeat pruning entirely. Soundness note: predicates are evaluated on
//! every edge *before* the prune check, so pruning only skips
//! continuations from states whose full continuation set has already been
//! explored under a time-abstracted equivalence; a processes-returning-
//! `false` digest disables pruning rather than risking a wrong merge.
//!
//! # Predicate API
//!
//! The checker is generic over a probe value `T` returned by the factory
//! alongside the simulation (typically a metrics/log handle shared with
//! the processes via `Rc`). After every applied choice the predicate is
//! called with [`McPhase::Step`]; when a path runs out of candidates the
//! engine exits MC mode, runs a timed *quiescence closure*
//! ([`Simulation::mc_close`]) so timer-driven machinery (metadata flushes,
//! stabilization) can finish, and the predicate is called once more with
//! [`McPhase::Quiescence`] — convergence-style properties belong there,
//! safety properties in both. A predicate returns `Err(description)` to
//! report a violation.
//!
//! # Counterexample replay
//!
//! A violation aborts the search and returns [`McVerdict::Violated`]
//! carrying the full decision prefix as an [`McTrace`].
//! [`ModelChecker::replay`] re-applies a trace choice by choice on a
//! fresh cluster, re-checking the predicate at each step, and returns the
//! step index and message at which the violation reproduces — by
//! construction of the deterministic engine, a returned trace reproduces
//! its violation on every replay.
//!
//! [`Process::mc_state`]: crate::Process::mc_state

use crate::engine::{McEvent, ProcessId, Simulation};
use crate::{units, SimTime};
use eunomia_collections::FingerprintSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hash::Hash;

/// One scheduling decision in an explored (or replayed) schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum McChoice {
    /// Deliver the oldest in-flight message on the link `from → to`.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Deliver the oldest message on `from → to` and re-enqueue a copy
    /// behind it (at-least-once transport: duplicate delivery).
    DeliverDup {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Drop the oldest in-flight message on `from → to` (lossy transport).
    Drop {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Fire the earliest live pending timer.
    Tick,
}

/// A recorded schedule: the decision sequence from the initial state.
/// Returned inside [`McVerdict::Violated`] as a replayable
/// counterexample; feed it back to [`ModelChecker::replay`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct McTrace {
    /// The scheduling decisions, in application order.
    pub choices: Vec<McChoice>,
}

/// Exploration limits and fault-injection budgets.
#[derive(Clone, Copy, Debug)]
pub struct McOptions {
    /// Abandon (close and quiescence-check) any path longer than this.
    pub max_depth: usize,
    /// Stop the search after this many distinct explored states.
    pub max_states: u64,
    /// Timer firings allowed per path. Timers re-arm, so without a budget
    /// the tree would be infinite; the quiescence closure still runs every
    /// timer after the explored prefix.
    pub max_timer_steps: usize,
    /// Message drops allowed per path (0 disables the `Drop` choice).
    pub max_drops: usize,
    /// Duplicate deliveries allowed per path (0 disables `DeliverDup`).
    pub max_dups: usize,
    /// Prune states whose fingerprint was already seen. Ignored (always
    /// off) when any process keeps the default opaque digest.
    pub prune: bool,
    /// Simulated nanoseconds of normal (heap-ordered) execution granted
    /// after each explored path, so timer-driven protocol machinery can
    /// finish before quiescence predicates run.
    pub closure_horizon: SimTime,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            max_depth: 256,
            max_states: 1_000_000,
            max_timer_steps: 6,
            max_drops: 0,
            max_dups: 0,
            prune: true,
            closure_horizon: units::ms(200),
        }
    }
}

/// When a predicate is being evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McPhase {
    /// After one applied scheduling choice; the system is mid-schedule.
    /// Check safety properties (causal delivery, session guarantees).
    Step,
    /// After the quiescence closure: all in-flight work has drained and
    /// timers have run for the closure horizon. Also check liveness-ish
    /// properties (convergence of replicated state).
    Quiescence,
}

/// Search counters. For a fixed scenario these are bit-identical across
/// runs and machines (the engine is deterministic and the fingerprint
/// hash is pinned), which is what lets CI gate on them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McStats {
    /// Distinct states visited (after pruning).
    pub explored: u64,
    /// Transitions skipped because the target state was already seen.
    pub pruned: u64,
    /// Scheduling choices applied, including re-applied ones during
    /// replay-based backtracking rebuilds.
    pub transitions: u64,
    /// Paths that ran out of schedulable candidates and were closed.
    pub leaves: u64,
    /// Paths abandoned at `max_depth` or by the `max_states` cutoff
    /// (each still gets a closure + quiescence check).
    pub truncated: u64,
    /// Longest explored decision prefix.
    pub deepest: usize,
}

/// Search outcome: verdict plus counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McOutcome {
    /// Certified (no predicate violation on any explored schedule) or a
    /// counterexample.
    pub verdict: McVerdict,
    /// Exploration counters.
    pub stats: McStats,
}

/// The result of a search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McVerdict {
    /// Every explored schedule satisfied the predicate at every step and
    /// at quiescence.
    Certified,
    /// A schedule violated the predicate.
    Violated {
        /// Decision index (1-based; 0 = the post-start initial state) at
        /// which the predicate first failed.
        step: usize,
        /// The predicate's description of what went wrong.
        message: String,
        /// Replayable counterexample (see [`ModelChecker::replay`]).
        trace: McTrace,
    },
}

impl McVerdict {
    /// Whether this is [`McVerdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, McVerdict::Certified)
    }
}

struct Frame {
    cands: Vec<McChoice>,
    next: usize,
}

/// Explores delivery schedules of a simulated cluster.
///
/// `factory` rebuilds the cluster from scratch (same config, same seed)
/// and returns it alongside a probe value `T` the `predicate` inspects;
/// see the [module docs](self) for the search algorithm and predicate
/// contract.
pub struct ModelChecker<M, T, F, P>
where
    F: Fn() -> (Simulation<M>, T),
    P: Fn(&T, McPhase) -> Result<(), String>,
{
    factory: F,
    predicate: P,
    opts: McOptions,
    _marker: std::marker::PhantomData<(M, T)>,
}

impl<M, T, F, P> ModelChecker<M, T, F, P>
where
    M: Hash + Clone,
    F: Fn() -> (Simulation<M>, T),
    P: Fn(&T, McPhase) -> Result<(), String>,
{
    /// Creates a checker over `factory`-built clusters with `predicate`
    /// checked per explored state.
    pub fn new(factory: F, predicate: P, opts: McOptions) -> Self {
        ModelChecker {
            factory,
            predicate,
            opts,
            _marker: std::marker::PhantomData,
        }
    }

    /// The options this checker explores under.
    pub fn options(&self) -> &McOptions {
        &self.opts
    }

    fn build(&self, prefix: &[McChoice], stats: &mut McStats) -> (Simulation<M>, T) {
        let (mut sim, probe) = (self.factory)();
        sim.mc_begin();
        for &c in prefix {
            let ok = Self::apply(&mut sim, c);
            debug_assert!(ok, "previously applied choice must replay");
            stats.transitions += 1;
        }
        (sim, probe)
    }

    fn apply(sim: &mut Simulation<M>, choice: McChoice) -> bool {
        match choice {
            McChoice::Deliver { from, to } => sim.mc_fire(McEvent::Deliver { from, to }),
            McChoice::DeliverDup { from, to } => sim.mc_fire_dup(from, to),
            McChoice::Drop { from, to } => sim.mc_drop(from, to),
            McChoice::Tick => sim.mc_fire(McEvent::Timer),
        }
    }

    /// Candidate choices at the current state, given the budgets already
    /// spent along `path`. Deterministically ordered (per-link choices
    /// sorted by link, `Tick` last) so the DFS visit order — and with it
    /// every [`McStats`] counter — is reproducible.
    fn enumerate(&self, sim: &Simulation<M>, path: &[McChoice]) -> Vec<McChoice> {
        let mut ticks = 0usize;
        let mut drops = 0usize;
        let mut dups = 0usize;
        for c in path {
            match c {
                McChoice::Tick => ticks += 1,
                McChoice::Drop { .. } => drops += 1,
                McChoice::DeliverDup { .. } => dups += 1,
                McChoice::Deliver { .. } => {}
            }
        }
        let mut out = Vec::new();
        for ev in sim.mc_candidates() {
            match ev {
                McEvent::Deliver { from, to } => {
                    out.push(McChoice::Deliver { from, to });
                    if dups < self.opts.max_dups {
                        out.push(McChoice::DeliverDup { from, to });
                    }
                    if drops < self.opts.max_drops {
                        out.push(McChoice::Drop { from, to });
                    }
                }
                McEvent::Timer => {
                    if ticks < self.opts.max_timer_steps {
                        out.push(McChoice::Tick);
                    }
                }
            }
        }
        out
    }

    /// Closes the current path (quiescence closure + predicate) and
    /// reports a violation if the settled state is bad.
    fn close_and_check(
        &self,
        sim: &mut Simulation<M>,
        probe: &T,
        path: &[McChoice],
    ) -> Result<(), McVerdict> {
        sim.mc_close(self.opts.closure_horizon);
        if let Err(message) = (self.predicate)(probe, McPhase::Quiescence) {
            return Err(McVerdict::Violated {
                step: path.len(),
                message,
                trace: McTrace {
                    choices: path.to_vec(),
                },
            });
        }
        Ok(())
    }

    /// Depth-first search over every schedule (up to the configured
    /// budgets). Returns the first violation found, or
    /// [`McVerdict::Certified`] with the exploration counters.
    pub fn run_exhaustive(&self) -> McOutcome {
        let mut stats = McStats::default();
        let mut path: Vec<McChoice> = Vec::new();
        let (mut sim, mut probe) = self.build(&path, &mut stats);
        let violated =
            |step: usize, message: String, path: &[McChoice], stats: McStats| McOutcome {
                verdict: McVerdict::Violated {
                    step,
                    message,
                    trace: McTrace {
                        choices: path.to_vec(),
                    },
                },
                stats,
            };
        if let Err(message) = (self.predicate)(&probe, McPhase::Step) {
            return violated(0, message, &path, stats);
        }
        stats.explored = 1;
        let mut seen = FingerprintSet::new();
        let mut pruning = self.opts.prune;
        if pruning {
            match sim.mc_fingerprint() {
                Some(fp) => {
                    seen.insert(fp);
                }
                None => pruning = false,
            }
        }
        let initial = self.enumerate(&sim, &path);
        if initial.is_empty() {
            stats.leaves = 1;
            if let Err(verdict) = self.close_and_check(&mut sim, &probe, &path) {
                return McOutcome { verdict, stats };
            }
            return McOutcome {
                verdict: McVerdict::Certified,
                stats,
            };
        }
        let mut frames = vec![Frame {
            cands: initial,
            next: 0,
        }];
        // Replay-based backtracking: `dirty` marks that `sim` no longer
        // matches `path` (we closed a leaf, pruned, or popped a frame) and
        // must be rebuilt before the next choice applies.
        let mut dirty = false;
        while let Some(frame) = frames.last_mut() {
            if frame.next >= frame.cands.len() {
                frames.pop();
                path.pop();
                dirty = true;
                continue;
            }
            let choice = frame.cands[frame.next];
            frame.next += 1;
            if dirty {
                (sim, probe) = self.build(&path, &mut stats);
                dirty = false;
            }
            let ok = Self::apply(&mut sim, choice);
            debug_assert!(ok, "enumerated choice must be applicable");
            stats.transitions += 1;
            path.push(choice);
            if path.len() > stats.deepest {
                stats.deepest = path.len();
            }
            if let Err(message) = (self.predicate)(&probe, McPhase::Step) {
                return violated(path.len(), message, &path, stats);
            }
            if pruning {
                match sim.mc_fingerprint() {
                    Some(fp) => {
                        if !seen.insert(fp) {
                            stats.pruned += 1;
                            path.pop();
                            dirty = true;
                            continue;
                        }
                    }
                    None => pruning = false,
                }
            }
            stats.explored += 1;
            let cutoff =
                path.len() >= self.opts.max_depth || stats.explored >= self.opts.max_states;
            let cands = if cutoff {
                Vec::new()
            } else {
                self.enumerate(&sim, &path)
            };
            if cands.is_empty() {
                if cutoff {
                    stats.truncated += 1;
                } else {
                    stats.leaves += 1;
                }
                if let Err(verdict) = self.close_and_check(&mut sim, &probe, &path) {
                    return McOutcome { verdict, stats };
                }
                if stats.explored >= self.opts.max_states {
                    // Global cutoff: stop the whole search, not just this
                    // path. Reported via `truncated` so callers can tell a
                    // bounded sweep from a completed one.
                    break;
                }
                path.pop();
                dirty = true;
                continue;
            }
            frames.push(Frame { cands, next: 0 });
        }
        McOutcome {
            verdict: McVerdict::Certified,
            stats,
        }
    }

    /// `runs` independent random schedules (uniform choice among
    /// candidates, seeded), each closed and quiescence-checked. No
    /// pruning and no completeness claim — a sampling bug-finder for
    /// configs too large to exhaust.
    pub fn run_random(&self, runs: u64, seed: u64) -> McOutcome {
        let mut stats = McStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..runs {
            let (mut sim, probe) = (self.factory)();
            sim.mc_begin();
            let mut path: Vec<McChoice> = Vec::new();
            if let Err(message) = (self.predicate)(&probe, McPhase::Step) {
                return McOutcome {
                    verdict: McVerdict::Violated {
                        step: 0,
                        message,
                        trace: McTrace { choices: path },
                    },
                    stats,
                };
            }
            stats.explored += 1;
            loop {
                if path.len() >= self.opts.max_depth {
                    stats.truncated += 1;
                    break;
                }
                let cands = self.enumerate(&sim, &path);
                if cands.is_empty() {
                    stats.leaves += 1;
                    break;
                }
                let choice = cands[rng.random_range(0..cands.len())];
                let ok = Self::apply(&mut sim, choice);
                debug_assert!(ok, "enumerated choice must be applicable");
                stats.transitions += 1;
                stats.explored += 1;
                path.push(choice);
                if path.len() > stats.deepest {
                    stats.deepest = path.len();
                }
                if let Err(message) = (self.predicate)(&probe, McPhase::Step) {
                    return McOutcome {
                        verdict: McVerdict::Violated {
                            step: path.len(),
                            message,
                            trace: McTrace { choices: path },
                        },
                        stats,
                    };
                }
            }
            if let Err(verdict) = self.close_and_check(&mut sim, &probe, &path) {
                return McOutcome { verdict, stats };
            }
        }
        McOutcome {
            verdict: McVerdict::Certified,
            stats,
        }
    }

    /// Replays a counterexample on a fresh cluster, re-checking the
    /// predicate after every choice and at quiescence.
    ///
    /// Returns `Err((step, message))` at the first violation — for a
    /// genuine counterexample trace this reproduces the original verdict
    /// deterministically — or `Ok(())` if the trace runs clean (which for
    /// a returned counterexample would indicate scenario/trace mismatch).
    pub fn replay(&self, trace: &McTrace) -> Result<(), (usize, String)> {
        let (mut sim, probe) = (self.factory)();
        sim.mc_begin();
        if let Err(message) = (self.predicate)(&probe, McPhase::Step) {
            return Err((0, message));
        }
        for (i, &choice) in trace.choices.iter().enumerate() {
            if !Self::apply(&mut sim, choice) {
                return Err((
                    i + 1,
                    format!("trace does not fit this scenario: {choice:?} is not applicable"),
                ));
            }
            if let Err(message) = (self.predicate)(&probe, McPhase::Step) {
                return Err((i + 1, message));
            }
        }
        sim.mc_close(self.opts.closure_horizon);
        if let Err(message) = (self.predicate)(&probe, McPhase::Quiescence) {
            return Err((trace.choices.len(), message));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, Process, Topology};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Two senders each fire one message at a shared receiver that logs
    /// arrival order: the canonical 2-interleaving race.
    #[derive(Default)]
    struct RaceLog {
        order: RefCell<Vec<u64>>,
    }

    struct OneShot {
        peer: ProcessId,
        tagged: u64,
    }
    impl Process<u64> for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.send(self.peer, self.tagged);
        }
        fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
        fn mc_state(&self, h: &mut dyn std::hash::Hasher) -> bool {
            h.write_u64(self.tagged);
            true
        }
    }

    struct Sink {
        log: Rc<RaceLog>,
        seen: Vec<u64>,
    }
    impl Process<u64> for Sink {
        fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, msg: u64) {
            self.seen.push(msg);
            self.log.order.borrow_mut().push(msg);
        }
        fn mc_state(&self, mut h: &mut dyn std::hash::Hasher) -> bool {
            use std::hash::Hash as _;
            self.seen.hash(&mut h);
            true
        }
    }

    fn race_factory(log: &Rc<RaceLog>) -> (Simulation<u64>, Rc<RaceLog>) {
        log.order.borrow_mut().clear();
        let mut sim = Simulation::new(Topology::single_region(3, 0, 0), 7);
        let sink = sim.add_process(
            0,
            Box::new(Sink {
                log: log.clone(),
                seen: Vec::new(),
            }),
        );
        sim.add_process(
            0,
            Box::new(OneShot {
                peer: sink,
                tagged: 1,
            }),
        );
        sim.add_process(
            0,
            Box::new(OneShot {
                peer: sink,
                tagged: 2,
            }),
        );
        (sim, log.clone())
    }

    #[test]
    fn explores_both_orders_of_a_two_message_race() {
        let log: Rc<RaceLog> = Rc::default();
        let orders: Rc<RefCell<Vec<Vec<u64>>>> = Rc::default();
        let orders2 = orders.clone();
        let mc = ModelChecker::new(
            {
                let log = log.clone();
                move || race_factory(&log)
            },
            move |probe: &Rc<RaceLog>, phase| {
                if phase == McPhase::Quiescence {
                    orders2.borrow_mut().push(probe.order.borrow().clone());
                }
                Ok(())
            },
            McOptions::default(),
        );
        let out = mc.run_exhaustive();
        assert!(out.verdict.is_certified());
        assert_eq!(out.stats.leaves, 2, "two full interleavings");
        let mut seen = orders.borrow().clone();
        seen.sort();
        assert_eq!(seen, vec![vec![1, 2], vec![2, 1]]);
    }

    #[test]
    fn violation_yields_replayable_trace() {
        let log: Rc<RaceLog> = Rc::default();
        // "2 must never arrive first" fails on exactly one interleaving.
        let predicate = |probe: &Rc<RaceLog>, _phase: McPhase| {
            if probe.order.borrow().first() == Some(&2) {
                Err("message 2 delivered before message 1".to_string())
            } else {
                Ok(())
            }
        };
        let mc = ModelChecker::new(
            {
                let log = log.clone();
                move || race_factory(&log)
            },
            predicate,
            McOptions::default(),
        );
        let out = mc.run_exhaustive();
        let McVerdict::Violated {
            step,
            message,
            trace,
        } = out.verdict
        else {
            panic!("expected a violation");
        };
        assert_eq!(message, "message 2 delivered before message 1");
        let err = mc
            .replay(&trace)
            .expect_err("counterexample must reproduce");
        assert_eq!(err, (step, message));
    }

    #[test]
    fn drop_budget_adds_loss_schedules() {
        let log: Rc<RaceLog> = Rc::default();
        let mc = ModelChecker::new(
            {
                let log = log.clone();
                move || race_factory(&log)
            },
            |_: &Rc<RaceLog>, _| Ok(()),
            McOptions {
                max_drops: 2,
                ..McOptions::default()
            },
        );
        let out = mc.run_exhaustive();
        assert!(out.verdict.is_certified());
        // Deliver/Drop per message: {12, 21, 1-, 2-, -1, -2, --} distinct
        // completions collapse under pruning but strictly exceed the
        // loss-free 2.
        assert!(
            out.stats.leaves > 2,
            "loss schedules explored: {:?}",
            out.stats
        );
    }

    #[test]
    fn random_walks_certify_the_race() {
        let log: Rc<RaceLog> = Rc::default();
        let mc = ModelChecker::new(
            {
                let log = log.clone();
                move || race_factory(&log)
            },
            |_: &Rc<RaceLog>, _| Ok(()),
            McOptions::default(),
        );
        let out = mc.run_random(16, 99);
        assert!(out.verdict.is_certified());
        assert_eq!(out.stats.leaves, 16);
    }
}
