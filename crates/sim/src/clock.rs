//! Per-node physical clock models with offset and drift.
//!
//! The paper's correctness does not depend on clock synchronization, but
//! its *performance* does: the stable time is a minimum over per-partition
//! timestamps, so a node whose clock lags holds everyone back, and purely
//! physical timestamping schemes must wait out the skew (§3.2). This model
//! reproduces loosely NTP-synchronized clocks: each node's clock reads
//! `true_time + offset + drift`, with the offset bounded by the assumed
//! synchronization error.

use crate::SimTime;

/// An affine clock: `read(t) = max(0, t + offset + t * drift_ppm / 1e6)`.
///
/// Monotone as long as `drift_ppm > -1_000_000` (enforced), which models
/// real oscillators (tens of ppm) with room to spare.
#[derive(Clone, Copy, Debug)]
pub struct ClockModel {
    offset_ns: i64,
    drift_ppm: f64,
}

impl Default for ClockModel {
    fn default() -> Self {
        Self::perfect()
    }
}

impl ClockModel {
    /// A perfectly synchronized, drift-free clock.
    pub fn perfect() -> Self {
        ClockModel {
            offset_ns: 0,
            drift_ppm: 0.0,
        }
    }

    /// A clock with a fixed offset (nanoseconds, may be negative) and a
    /// drift rate in parts-per-million.
    ///
    /// # Panics
    ///
    /// Panics if `drift_ppm <= -1_000_000` (the clock would run backwards).
    pub fn new(offset_ns: i64, drift_ppm: f64) -> Self {
        assert!(drift_ppm > -1_000_000.0, "clock must move forward");
        ClockModel {
            offset_ns,
            drift_ppm,
        }
    }

    /// Reads the clock at true (simulated) time `t`.
    pub fn read(&self, t: SimTime) -> u64 {
        let drift = (t as f64 * self.drift_ppm / 1_000_000.0) as i64;
        let raw = t as i64 + self.offset_ns + drift;
        raw.max(0) as u64
    }

    /// The configured offset in nanoseconds.
    pub fn offset_ns(&self) -> i64 {
        self.offset_ns
    }

    /// The configured drift in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = ClockModel::perfect();
        assert_eq!(c.read(0), 0);
        assert_eq!(c.read(12345), 12345);
    }

    #[test]
    fn positive_offset_leads() {
        let c = ClockModel::new(1_000, 0.0);
        assert_eq!(c.read(0), 1_000);
        assert_eq!(c.read(500), 1_500);
    }

    #[test]
    fn negative_offset_lags_and_clamps_at_zero() {
        let c = ClockModel::new(-1_000, 0.0);
        assert_eq!(c.read(0), 0);
        assert_eq!(c.read(400), 0);
        assert_eq!(c.read(1_500), 500);
    }

    #[test]
    fn drift_accumulates() {
        // +100 ppm over 1 second = +100 microseconds.
        let c = ClockModel::new(0, 100.0);
        assert_eq!(c.read(1_000_000_000), 1_000_100_000);
    }

    #[test]
    #[should_panic(expected = "clock must move forward")]
    fn absurd_negative_drift_panics() {
        let _ = ClockModel::new(0, -1_000_000.0);
    }

    proptest! {
        #[test]
        fn clock_is_monotone(
            offset in -1_000_000i64..1_000_000,
            drift in -500.0f64..500.0,
            t in 0u64..1_000_000_000,
            dt in 1u64..1_000_000,
        ) {
            let c = ClockModel::new(offset, drift);
            prop_assert!(c.read(t + dt) >= c.read(t));
        }
    }
}
