//! The discrete-event engine: processes, messages, timers, queueing.

use crate::network::{NodeId, Topology};
use crate::ClockModel;
use crate::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Identifies a simulated process (actor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Index for per-process tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulated actor handling messages of type `M`.
///
/// Handlers run to completion; any service time declared through
/// [`Context::consume`] keeps the process busy, queueing subsequent work.
pub trait Process<M> {
    /// Invoked once, at time zero, before any message.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Invoked for every delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M);

    /// Invoked when a timer set with [`Context::set_timer`] fires; `tag` is
    /// the caller-chosen discriminator.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }
}

enum Work<M> {
    Start,
    Message { from: ProcessId, msg: M },
    Timer { tag: u64, id: u64 },
}

enum EventKind<M> {
    Arrive { to: ProcessId, work: Work<M> },
    Dispatch { to: ProcessId },
    Crash { pid: ProcessId },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct Slot<M> {
    proc: Option<Box<dyn Process<M>>>,
    node: NodeId,
    crashed: bool,
    busy_until: SimTime,
    queue: VecDeque<Work<M>>,
    dispatch_scheduled: bool,
}

/// Handler-side view of the simulation.
///
/// Lets a process read clocks, send messages, set timers and declare the
/// CPU cost of the work it is doing. Messages sent and timers set from a
/// handler take effect at the handler's *completion* time (start time plus
/// consumed service time), modelling a single-threaded server.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ProcessId,
    node: NodeId,
    consumed: SimTime,
    outbox: Vec<(ProcessId, M, SimTime)>,
    timers: Vec<(SimTime, u64, u64)>,
    cancels: Vec<u64>,
    clocks: &'a [ClockModel],
    node_regions: &'a [usize],
    proc_nodes: &'a [NodeId],
    rng: &'a mut StdRng,
    topology: &'a Topology,
    next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated (true) time: the start of this handler.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The region (datacenter) of this process's node.
    pub fn region(&self) -> usize {
        self.node_regions[self.node.index()]
    }

    /// Reads this node's *physical* clock — offset and drift included.
    pub fn clock(&self) -> u64 {
        self.clocks[self.node.index()].read(self.now + self.consumed)
    }

    /// Declares `cost` nanoseconds of CPU service time for the current
    /// work item; the process stays busy (queueing later arrivals) until
    /// the accumulated cost elapses.
    pub fn consume(&mut self, cost: SimTime) {
        self.consumed += cost;
    }

    /// Sends `msg` to `to` over the (FIFO, latency-modelled) network at
    /// handler completion time.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg, 0));
    }

    /// Like [`Context::send`] with an extra artificial delay before the
    /// message enters the link (used e.g. to model a straggler).
    pub fn send_delayed(&mut self, to: ProcessId, msg: M, extra: SimTime) {
        self.outbox.push((to, msg, extra));
    }

    /// Arms a timer to fire `delay` ns after handler completion; `tag`
    /// distinguishes timer purposes. Returns an id usable with
    /// [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) -> u64 {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.timers.push((delay, tag, id));
        id
    }

    /// Cancels a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: u64) {
        self.cancels.push(id);
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// One-way base latency (ns) from this process's region to `to`'s.
    pub fn oneway_latency_to(&self, to: ProcessId) -> SimTime {
        let from_region = self.node_regions[self.node.index()];
        let to_region = self.node_regions[self.proc_nodes[to.index()].index()];
        self.topology.oneway(from_region, to_region)
    }
}

/// The discrete-event simulation over messages of type `M`.
pub struct Simulation<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    now: SimTime,
    slots: Vec<Slot<M>>,
    nodes: Vec<ClockModel>,
    node_regions: Vec<usize>,
    topology: Topology,
    rng: StdRng,
    link_last: std::collections::HashMap<(u32, u32), SimTime>,
    cancelled: std::collections::HashSet<u64>,
    next_timer_id: u64,
    events_processed: u64,
    started: bool,
}

impl<M> Simulation<M> {
    /// Creates a simulation over `topology` with a deterministic `seed`.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Simulation {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            slots: Vec::new(),
            nodes: Vec::new(),
            node_regions: Vec::new(),
            topology,
            rng: StdRng::seed_from_u64(seed),
            link_last: std::collections::HashMap::new(),
            cancelled: std::collections::HashSet::new(),
            next_timer_id: 0,
            events_processed: 0,
            started: false,
        }
    }

    /// Adds a node (machine) in `region` with a perfect clock.
    ///
    /// # Panics
    ///
    /// Panics if `region` is outside the topology.
    pub fn add_node(&mut self, region: usize) -> NodeId {
        self.add_node_with_clock(region, ClockModel::perfect())
    }

    /// Adds a node with an explicit clock model.
    pub fn add_node_with_clock(&mut self, region: usize, clock: ClockModel) -> NodeId {
        assert!(region < self.topology.regions(), "region out of range");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(clock);
        self.node_regions.push(region);
        id
    }

    /// Convenience: adds a fresh node in `region` and a process on it.
    pub fn add_process(&mut self, region: usize, proc: Box<dyn Process<M>>) -> ProcessId {
        let node = self.add_node(region);
        self.add_process_on(node, proc)
    }

    /// Adds a process on an existing node.
    pub fn add_process_on(&mut self, node: NodeId, proc: Box<dyn Process<M>>) -> ProcessId {
        assert!(
            !self.started,
            "processes must be added before the run starts"
        );
        let pid = ProcessId(self.slots.len() as u32);
        self.slots.push(Slot {
            proc: Some(proc),
            node,
            crashed: false,
            busy_until: 0,
            queue: VecDeque::new(),
            dispatch_scheduled: false,
        });
        pid
    }

    /// Schedules `pid` to crash at `time`: it stops handling anything and
    /// all its queued and future work is dropped.
    pub fn crash_at(&mut self, pid: ProcessId, time: SimTime) {
        let seq = self.bump_seq();
        self.heap.push(Reverse(Event {
            time,
            seq,
            kind: EventKind::Crash { pid },
        }));
    }

    /// Whether `pid` has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.slots[pid.index()].crashed
    }

    /// Current simulated time (ns).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total handler invocations so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn bump_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.slots.len() {
            let seq = self.bump_seq();
            self.heap.push(Reverse(Event {
                time: 0,
                seq,
                kind: EventKind::Arrive {
                    to: ProcessId(i as u32),
                    work: Work::Start,
                },
            }));
        }
    }

    /// Runs until the event queue drains or simulated time reaches
    /// `deadline` (events after the deadline stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.time > deadline {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked event must pop");
            self.now = ev.time;
            self.handle_event(ev);
        }
        self.now = self
            .now
            .max(deadline.min(self.peek_time().unwrap_or(deadline)));
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Runs for `duration` more nanoseconds of simulated time.
    pub fn run_for(&mut self, duration: SimTime) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    fn handle_event(&mut self, ev: Event<M>) {
        match ev.kind {
            EventKind::Crash { pid } => {
                let slot = &mut self.slots[pid.index()];
                slot.crashed = true;
                slot.queue.clear();
            }
            EventKind::Arrive { to, work } => {
                let slot = &mut self.slots[to.index()];
                if slot.crashed {
                    return;
                }
                slot.queue.push_back(work);
                if !slot.dispatch_scheduled {
                    slot.dispatch_scheduled = true;
                    let at = slot.busy_until.max(self.now);
                    let seq = self.bump_seq();
                    self.heap.push(Reverse(Event {
                        time: at,
                        seq,
                        kind: EventKind::Dispatch { to },
                    }));
                }
            }
            EventKind::Dispatch { to } => self.dispatch(to),
        }
    }

    fn dispatch(&mut self, pid: ProcessId) {
        let idx = pid.index();
        self.slots[idx].dispatch_scheduled = false;
        if self.slots[idx].crashed {
            self.slots[idx].queue.clear();
            return;
        }
        let Some(work) = self.slots[idx].queue.pop_front() else {
            return;
        };
        // Temporarily take the process out so the handler can borrow the
        // simulation's shared state through the context.
        let mut proc = self.slots[idx].proc.take().expect("process present");
        let node = self.slots[idx].node;
        let proc_nodes: Vec<NodeId> = self.slots.iter().map(|s| s.node).collect();
        let mut ctx = Context {
            now: self.now,
            self_id: pid,
            node,
            consumed: 0,
            outbox: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            clocks: &self.nodes,
            node_regions: &self.node_regions,
            proc_nodes: &proc_nodes,
            rng: &mut self.rng,
            topology: &self.topology,
            next_timer_id: &mut self.next_timer_id,
        };
        let fired = match work {
            Work::Start => {
                proc.on_start(&mut ctx);
                true
            }
            Work::Message { from, msg } => {
                proc.on_message(&mut ctx, from, msg);
                true
            }
            Work::Timer { tag, id } => {
                if self.cancelled.remove(&id) {
                    false
                } else {
                    proc.on_timer(&mut ctx, tag);
                    true
                }
            }
        };
        if fired {
            self.events_processed += 1;
        }
        let consumed = ctx.consumed;
        let outbox = std::mem::take(&mut ctx.outbox);
        let timers = std::mem::take(&mut ctx.timers);
        let cancels = std::mem::take(&mut ctx.cancels);
        drop(ctx);
        self.slots[idx].proc = Some(proc);
        let completion = self.now + consumed;
        self.slots[idx].busy_until = completion;
        for id in cancels {
            self.cancelled.insert(id);
        }
        for (to, msg, extra) in outbox {
            self.route(pid, to, msg, completion + extra);
        }
        for (delay, tag, id) in timers {
            let seq = self.bump_seq();
            self.heap.push(Reverse(Event {
                time: completion + delay,
                seq,
                kind: EventKind::Arrive {
                    to: pid,
                    work: Work::Timer { tag, id },
                },
            }));
        }
        // More queued work: dispatch again at completion.
        if !self.slots[idx].queue.is_empty() && !self.slots[idx].dispatch_scheduled {
            self.slots[idx].dispatch_scheduled = true;
            let seq = self.bump_seq();
            self.heap.push(Reverse(Event {
                time: completion,
                seq,
                kind: EventKind::Dispatch { to: pid },
            }));
        }
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, msg: M, departure: SimTime) {
        let from_region = self.node_regions[self.slots[from.index()].node.index()];
        let to_region = self.node_regions[self.slots[to.index()].node.index()];
        let latency = self
            .topology
            .sample_oneway(from_region, to_region, &mut self.rng);
        let mut arrival = departure + latency;
        // FIFO clamp per ordered (from, to) pair.
        let key = (from.0, to.0);
        if let Some(last) = self.link_last.get(&key) {
            arrival = arrival.max(*last);
        }
        self.link_last.insert(key, arrival);
        let seq = self.bump_seq();
        self.heap.push(Reverse(Event {
            time: arrival,
            seq,
            kind: EventKind::Arrive {
                to,
                work: Work::Message { from, msg },
            },
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(SimTime, String)>>>;

    struct Recorder {
        log: Log,
        label: &'static str,
    }

    impl Process<u64> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, msg: u64) {
            self.log
                .borrow_mut()
                .push((ctx.now(), format!("{}:{}", self.label, msg)));
        }
    }

    struct Burst {
        peer: ProcessId,
        n: u64,
    }

    impl Process<u64> for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.n {
                ctx.send(self.peer, i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {}
    }

    #[test]
    fn fifo_per_link_with_jitter() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::us(100), units::us(90)), 1);
        let rec = sim.add_process(
            0,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _send = sim.add_process(0, Box::new(Burst { peer: rec, n: 50 }));
        sim.run_until(units::secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 50);
        // Messages arrive in send order despite jitter (FIFO clamp).
        for (i, (_, m)) in log.iter().enumerate() {
            assert_eq!(m, &format!("r:{i}"));
        }
        // Arrival times never regress.
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    struct SlowServer {
        log: Log,
        cost: SimTime,
    }

    impl Process<u64> for SlowServer {
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, msg: u64) {
            ctx.consume(self.cost);
            self.log.borrow_mut().push((ctx.now(), format!("s:{msg}")));
        }
    }

    #[test]
    fn busy_server_serializes_work() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::us(10), 0), 2);
        let server = sim.add_process(
            0,
            Box::new(SlowServer {
                log: log.clone(),
                cost: units::us(100),
            }),
        );
        let _client = sim.add_process(
            0,
            Box::new(Burst {
                peer: server,
                n: 10,
            }),
        );
        sim.run_until(units::secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 10);
        // All ten arrive at ~10us, but handling is spaced by the 100us
        // service time: message k starts at 10us + k*100us.
        for (k, (t, _)) in log.iter().enumerate() {
            assert_eq!(*t, units::us(10) + k as u64 * units::us(100));
        }
    }

    struct Ticker {
        log: Log,
        period: SimTime,
        remaining: u32,
    }

    impl Process<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(self.period, 7);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, tag: u64) {
            assert_eq!(tag, 7);
            self.log.borrow_mut().push((ctx.now(), "tick".into()));
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(self.period, 7);
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 3);
        sim.add_process(
            0,
            Box::new(Ticker {
                log: log.clone(),
                period: units::ms(5),
                remaining: 4,
            }),
        );
        sim.run_until(units::secs(1));
        let times: Vec<SimTime> = log.borrow().iter().map(|(t, _)| *t).collect();
        assert_eq!(
            times,
            vec![units::ms(5), units::ms(10), units::ms(15), units::ms(20)]
        );
    }

    #[test]
    fn crash_drops_pending_and_future_work() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::ms(1), 0), 4);
        let server = sim.add_process(
            0,
            Box::new(SlowServer {
                log: log.clone(),
                cost: units::ms(2),
            }),
        );
        let _client = sim.add_process(
            0,
            Box::new(Burst {
                peer: server,
                n: 100,
            }),
        );
        sim.crash_at(server, units::ms(10));
        sim.run_until(units::secs(1));
        // Arrived at 1ms, 2ms service each: handled at 1,3,5,7,9 -> 5 done.
        assert_eq!(log.borrow().len(), 5);
        assert!(sim.is_crashed(server));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<(SimTime, String)> {
            let log: Log = Rc::default();
            let mut sim = Simulation::new(
                Topology::single_region(3, units::us(50), units::us(77)),
                seed,
            );
            let rec = sim.add_process(
                0,
                Box::new(Recorder {
                    log: log.clone(),
                    label: "x",
                }),
            );
            for _ in 0..3 {
                let _ = sim.add_process(0, Box::new(Burst { peer: rec, n: 20 }));
            }
            sim.run_until(units::secs(1));
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run(99), run(99));
        assert_ne!(
            run(99),
            run(100),
            "different seeds should differ under jitter"
        );
    }

    #[test]
    fn clock_models_apply_per_node() {
        struct ClockReader {
            log: Log,
        }
        impl Process<u64> for ClockReader {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.set_timer(units::ms(10), 0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _tag: u64) {
                self.log.borrow_mut().push((ctx.clock(), "c".into()));
            }
        }
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, 0, 0), 5);
        let ahead = sim.add_node_with_clock(0, ClockModel::new(units::ms(3) as i64, 0.0));
        sim.add_process_on(ahead, Box::new(ClockReader { log: log.clone() }));
        sim.run_until(units::secs(1));
        let clock_read = log.borrow()[0].0;
        assert_eq!(clock_read, units::ms(13));
    }

    #[test]
    fn cross_region_latency_is_half_rtt() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::paper_three_dcs(0, 0), 6);
        let rec = sim.add_process(
            1,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _send = sim.add_process(0, Box::new(Burst { peer: rec, n: 1 }));
        sim.run_until(units::secs(1));
        assert_eq!(log.borrow()[0].0, units::ms(40));
    }

    #[test]
    fn send_delayed_adds_to_departure() {
        struct DelaySender {
            peer: ProcessId,
        }
        impl Process<u64> for DelaySender {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.send_delayed(self.peer, 1, units::ms(7));
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
        }
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::ms(1), 0), 8);
        let rec = sim.add_process(
            0,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _s = sim.add_process(0, Box::new(DelaySender { peer: rec }));
        sim.run_until(units::secs(1));
        assert_eq!(log.borrow()[0].0, units::ms(8));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// FIFO per link holds for any jitter bound and seed, and the
            /// busy-server model never loses or duplicates messages.
            #[test]
            fn fifo_and_conservation(seed in 0u64..5000, jitter_us in 0u64..500, n in 1u64..80) {
                let log: Log = Rc::default();
                let mut sim = Simulation::new(
                    Topology::single_region(2, units::us(50), units::us(jitter_us)),
                    seed,
                );
                let rec = sim.add_process(
                    0,
                    Box::new(SlowServer { log: log.clone(), cost: units::us(10) }),
                );
                let _send = sim.add_process(0, Box::new(Burst { peer: rec, n }));
                sim.run_until(units::secs(2));
                let log = log.borrow();
                prop_assert_eq!(log.len(), n as usize, "conservation");
                for (i, (_, m)) in log.iter().enumerate() {
                    prop_assert_eq!(m, &format!("s:{i}"), "FIFO order");
                }
                for w in log.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "time monotone");
                }
            }
        }
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct Canceller;
        impl Process<u64> for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                let id = ctx.set_timer(units::ms(1), 1);
                ctx.cancel_timer(id);
                ctx.set_timer(units::ms(2), 2);
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, tag: u64) {
                assert_eq!(tag, 2, "cancelled timer must not fire");
            }
        }
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 9);
        sim.add_process(0, Box::new(Canceller));
        sim.run_until(units::secs(1));
        assert_eq!(sim.events_processed(), 2); // start + timer 2
    }
}
