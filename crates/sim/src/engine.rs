//! The discrete-event engine: processes, messages, timers, queueing.
//!
//! # The scheduler: a calendar queue
//!
//! Events are kept in a calendar (bucket) queue instead of one global
//! binary heap, because the pending set at scale (tens of thousands of
//! in-flight cross-DC messages) stopped fitting in cache and every pop
//! paid a full O(log n) sift over cold memory. The structure is three
//! tiers with a strict residency invariant:
//!
//! * **Active bucket** — a small `BinaryHeap` holding every pending entry
//!   whose time bucket (`time >> shift`) is `<= cursor`. Popping its
//!   minimum is popping the global `(time, seq)` minimum.
//! * **Bucket ring** — `NBUCKETS` (power of two) unsorted `Vec`s; slot
//!   `b & (NBUCKETS-1)` holds exactly the entries of absolute bucket `b`
//!   for `cursor < b < cursor + NBUCKETS` (the *epoch window*). Pushes
//!   inside the window are O(1) appends; a bucket is heapified only when
//!   the cursor reaches it ("opening" it into the active heap).
//! * **Overflow heap** — entries at or beyond the window's end (far
//!   timers, crash/pause schedules). As the cursor advances, entries
//!   whose bucket slides into the window migrate to the ring (counted in
//!   [`EngineStats::overflow_migrations`]); when the ring is empty the
//!   cursor jumps straight to the overflow's earliest bucket.
//!
//! The bucket width (`1 << shift`) auto-sizes from observed behaviour:
//! too many overflow migrations per pop mean the window is too short
//! (width doubles), fat opened buckets mean it is too coarse (width
//! halves). Both signals are pure event counts — never wall clock — so
//! resizing is deterministic and same-seed runs stay bit-identical.
//! Within a timestamp, order is fixed by the monotone `seq` stamp, so
//! FIFO-per-link and replayed model-checker traces are unaffected by
//! which tier an entry happened to sit in.
//!
//! # The dispatch hot path
//!
//! Beyond the scheduler, the engine pays *no allocation* in the steady
//! state:
//!
//! * **Direct delivery** — a message (or timer, or start) arriving at an
//!   idle process runs its handler immediately instead of bouncing
//!   through a separate `Dispatch` queue event. The Arrive→Dispatch
//!   double-hop only remains for busy processes, where the dispatch time
//!   (the server's `busy_until`) genuinely differs from the arrival time.
//! * **Payload arena** — arrival payloads live in a `PayloadArena`
//!   slab (scheduler entries stay 24 bytes and carry only a slot index);
//!   slots recycle through an internal free list and the arena reports
//!   its high-water mark ([`EngineStats::arena_high_water`]).
//! * **Pooled scratch buffers** — the [`Context`] handed to handlers
//!   borrows the simulation's reusable outbox/timer buffers
//!   (`std::mem::take`d around the handler call), so sending messages and
//!   arming timers allocates only until the high-water mark is reached.
//! * **Windowed link state** — in fault-free runs the per-link FIFO
//!   clamp tracks only pairs with a send inside the jitter horizon (a
//!   tiny L1-hot map pruned as time advances) instead of an n² flat
//!   table; arrivals are bit-identical because a constant per-pair base
//!   latency means the clamp provably cannot bind past
//!   `departure + jitter`. Runs with a fault schedule keep the flat
//!   `from * nprocs + to` table, since fault windows shift base
//!   latencies (those presets are small deployments).
//! * **Cached process tables** — `proc_nodes` (and the clock/region
//!   tables) are maintained as processes are added, not re-collected per
//!   dispatch.
//! * **Timer generations** — timer ids encode a slot + generation pair in
//!   a slab ([`TimerTable`]); cancellation bumps the generation in O(1)
//!   and cancelled entries are skipped on drain, never searched. Runs
//!   that never arm a timer (eventual consistency has nothing to
//!   stabilize) skip the per-event generation bookkeeping entirely.
//!
//! [`Simulation::stats`] exposes the engine counters ([`EngineStats`])
//! that the geo harness threads into every `RunReport`.

use crate::faults::{CompiledFaults, FaultSchedule};
use crate::network::{JitterRng, NodeId, Topology};
use crate::ClockModel;
use crate::SimTime;
use eunomia_collections::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, VecDeque};

/// Identifies a simulated process (actor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Index for per-process tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulated actor handling messages of type `M`.
///
/// Handlers run to completion; any service time declared through
/// [`Context::consume`] keeps the process busy, queueing subsequent work.
pub trait Process<M> {
    /// Invoked once, at time zero, before any message.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Invoked for every delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M);

    /// Invoked when a timer set with [`Context::set_timer`] fires; `tag` is
    /// the caller-chosen discriminator.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Folds this process's protocol-visible state into `h` for
    /// model-checking state-hash pruning (see [`Simulation::mc_fingerprint`])
    /// and returns `true` if the digest is complete.
    ///
    /// The default returns `false` — an opaque process — which disables
    /// pruning for any simulation containing it (exploration stays sound,
    /// just unpruned). Implementations must hash only state that affects
    /// future behaviour: protocol fields yes, wall-clock bookkeeping and
    /// metrics counters no, unordered maps folded commutatively (see
    /// `eunomia_collections::combine_unordered`).
    fn mc_state(&self, h: &mut dyn std::hash::Hasher) -> bool {
        let _ = h;
        false
    }
}

enum Work<M> {
    Start,
    Message { from: ProcessId, msg: M },
    Timer { tag: u64, id: u64 },
}

/// A schedulable event the model checker may pick as the next step while
/// the simulation is in MC mode (see [`Simulation::mc_begin`]).
///
/// Message delivery is offered per ordered `(from, to)` link: the network
/// is FIFO per link, so the only free choice *within* a link is nothing —
/// the oldest in-flight message is the one delivered — while the
/// interleaving *between* links (and against timers) is the checker's.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum McEvent {
    /// Deliver the oldest in-flight message on the link `from → to`.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Fire the earliest (by schedule order) live pending timer.
    Timer,
}

/// What a heap entry points at. Arrivals carry a message payload, so
/// they live in the arrival slab and the heap holds only a slot index;
/// Dispatch/Crash fit inline. Keeping `HeapEntry` at 24 bytes means heap
/// sifts never move message payloads.
#[derive(Clone, Copy)]
enum Target {
    Arrive { slot: u32 },
    Dispatch { to: ProcessId },
    Crash { pid: ProcessId },
    Pause { pid: ProcessId },
    Resume { pid: ProcessId },
}

struct HeapEntry {
    time: SimTime,
    seq: u64,
    what: Target,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Ring size of the calendar queue (power of two). 96 KiB of `Vec`
/// headers per simulation; bucket capacity is retained across reuse so
/// the steady state allocates nothing. Sized so that when fat-bucket
/// pressure drives the width down to 2^16 ns (dense geo scenarios sit
/// there), the epoch window — `NBUCKETS << shift` ≈ 268 ms — still
/// covers typical cross-DC one-way latencies; a shorter ring left those
/// arrivals churning through the overflow heap.
const NBUCKETS: usize = 4096;
/// Initial bucket width exponent: 2^18 ns ≈ 262 µs, giving a ~1.07 s
/// epoch window that covers cross-DC one-way latencies with room for
/// the auto-sizer to narrow the width under fat-bucket pressure.
const INIT_SHIFT: u32 = 18;
/// Auto-sizing bounds: 2^12 ns (4 µs) to 2^26 ns (67 ms) buckets.
const MIN_SHIFT: u32 = 12;
const MAX_SHIFT: u32 = 26;
/// Pops between auto-sizing checks (amortizes the rebuild).
const RESIZE_CHECK_EVERY: u64 = 8192;
/// Average opened-bucket occupancy above which the width halves.
const FAT_BUCKET: u64 = 96;

/// The three-tier calendar queue described in the module docs.
///
/// Residency invariant (with `b = time >> shift`): entries with
/// `b <= cursor` are in `active`, entries with
/// `cursor < b < cursor + NBUCKETS` are in ring slot `b & mask`, and
/// entries with `b >= cursor + NBUCKETS` are in `overflow`. Every bucket
/// start is `>=` every time in earlier buckets, so the active heap's
/// minimum is the global `(time, seq)` minimum.
struct CalendarQueue {
    shift: u32,
    mask: u64,
    /// Absolute bucket number currently being drained.
    cursor: u64,
    active: BinaryHeap<Reverse<HeapEntry>>,
    ring: Vec<Vec<HeapEntry>>,
    /// Entries resident in the ring (not counting `active`/`overflow`).
    ring_len: usize,
    overflow: BinaryHeap<Reverse<HeapEntry>>,
    len: usize,
    // --- stats ---
    bucket_peak: usize,
    overflow_migrations: u64,
    // --- auto-sizing signals (event counts only: deterministic) ---
    pops: u64,
    last_check: u64,
    migrations_window: u64,
    opened_buckets: u64,
    opened_entries: u64,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            shift: INIT_SHIFT,
            mask: (NBUCKETS - 1) as u64,
            cursor: 0,
            active: BinaryHeap::new(),
            ring: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            bucket_peak: 0,
            overflow_migrations: 0,
            pops: 0,
            last_check: 0,
            migrations_window: 0,
            opened_buckets: 0,
            opened_entries: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn push(&mut self, e: HeapEntry) {
        let b = e.time >> self.shift;
        if b <= self.cursor {
            self.active.push(Reverse(e));
        } else if b < self.cursor + NBUCKETS as u64 {
            self.ring[(b & self.mask) as usize].push(e);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(e));
        }
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapEntry> {
        if self.len == 0 {
            return None;
        }
        if self.active.is_empty() {
            self.advance();
        }
        let Reverse(e) = self.active.pop().expect("advance fills the active bucket");
        self.len -= 1;
        self.pops += 1;
        if self.pops - self.last_check >= RESIZE_CHECK_EVERY {
            self.maybe_resize();
        }
        Some(e)
    }

    /// Earliest pending entry; advances the cursor if the active bucket
    /// is drained (cursor motion never changes pop order, only which
    /// tier holds an entry).
    #[inline]
    fn peek(&mut self) -> Option<&HeapEntry> {
        if self.len == 0 {
            return None;
        }
        if self.active.is_empty() {
            self.advance();
        }
        self.active.peek().map(|r| &r.0)
    }

    /// Moves the cursor to the next non-empty bucket and opens it into
    /// the active heap. Requires `len > 0` and an empty active heap.
    fn advance(&mut self) {
        debug_assert!(self.len > 0 && self.active.is_empty());
        loop {
            if self.ring_len == 0 {
                // Everything pending is far-future: jump straight to the
                // overflow's earliest bucket and migrate the window in.
                let t = self.overflow.peek().expect("pending entries exist").0.time;
                self.cursor = t >> self.shift;
                self.migrate_window();
                return;
            }
            self.cursor += 1;
            // The window slid one bucket: overflow entries now inside it
            // belong to the freshly exposed tail slot.
            let tail = self.cursor + NBUCKETS as u64 - 1;
            while let Some(Reverse(e)) = self.overflow.peek() {
                if e.time >> self.shift > tail {
                    break;
                }
                let Reverse(e) = self.overflow.pop().expect("peeked entry pops");
                debug_assert_eq!(e.time >> self.shift, tail);
                self.ring[(tail & self.mask) as usize].push(e);
                self.ring_len += 1;
                self.overflow_migrations += 1;
                self.migrations_window += 1;
            }
            let slot = (self.cursor & self.mask) as usize;
            if !self.ring[slot].is_empty() {
                self.open(slot);
                return;
            }
        }
    }

    /// Migrates every overflow entry inside the current window after a
    /// cursor jump; at least one lands in the active heap (the one whose
    /// bucket the cursor jumped to).
    fn migrate_window(&mut self) {
        let end = self.cursor + NBUCKETS as u64;
        let mut opened = 0usize;
        while let Some(Reverse(e)) = self.overflow.peek() {
            let b = e.time >> self.shift;
            if b >= end {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry pops");
            self.overflow_migrations += 1;
            self.migrations_window += 1;
            if b <= self.cursor {
                self.active.push(Reverse(e));
                opened += 1;
            } else {
                self.ring[(b & self.mask) as usize].push(e);
                self.ring_len += 1;
            }
        }
        self.opened_buckets += 1;
        self.opened_entries += opened as u64;
        if opened > self.bucket_peak {
            self.bucket_peak = opened;
        }
        debug_assert!(!self.active.is_empty());
    }

    /// Heapifies ring slot `slot` into the active bucket.
    fn open(&mut self, slot: usize) {
        let n = self.ring[slot].len();
        self.ring_len -= n;
        self.opened_buckets += 1;
        self.opened_entries += n as u64;
        if n > self.bucket_peak {
            self.bucket_peak = n;
        }
        for e in self.ring[slot].drain(..) {
            self.active.push(Reverse(e));
        }
    }

    /// Auto-sizing: heavy overflow migration means the window is too
    /// short (double the width); fat opened buckets mean it is too
    /// coarse (halve it). Rate-limited and driven by counts only, so
    /// same-seed runs resize at identical points.
    fn maybe_resize(&mut self) {
        let pops_window = self.pops - self.last_check;
        self.last_check = self.pops;
        let migrated = self.migrations_window;
        let opened_b = self.opened_buckets.max(1);
        let opened_e = self.opened_entries;
        self.migrations_window = 0;
        self.opened_buckets = 0;
        self.opened_entries = 0;
        if self.len < 256 {
            return;
        }
        if migrated * 4 >= pops_window && self.shift < MAX_SHIFT {
            self.rebuild(self.shift + 1);
        } else if opened_e / opened_b > FAT_BUCKET && self.shift > MIN_SHIFT {
            self.rebuild(self.shift - 1);
        }
    }

    /// Re-inserts every pending entry under a new bucket width.
    fn rebuild(&mut self, new_shift: u32) {
        let mut all: Vec<HeapEntry> = Vec::with_capacity(self.len);
        all.extend(self.active.drain().map(|Reverse(e)| e));
        for bucket in &mut self.ring {
            all.append(bucket);
        }
        all.extend(self.overflow.drain().map(|Reverse(e)| e));
        self.shift = new_shift;
        self.cursor = all.iter().map(|e| e.time).min().unwrap_or(0) >> new_shift;
        self.ring_len = 0;
        self.len = 0;
        for e in all {
            self.push(e);
        }
    }
}

/// Arrival payload arena: in-flight `(ProcessId, Work)` payloads keyed
/// by the slot index scheduler entries carry. Slots recycle through a
/// free list; `high_water` is the peak number of simultaneously
/// resident payloads.
struct PayloadArena<M> {
    slots: Vec<Option<(ProcessId, Work<M>)>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<M> PayloadArena<M> {
    fn new() -> Self {
        PayloadArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    #[inline]
    fn insert(&mut self, to: ProcessId, work: Work<M>) -> u32 {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((to, work));
                s
            }
            None => {
                self.slots.push(Some((to, work)));
                (self.slots.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn take(&mut self, slot: u32) -> (ProcessId, Work<M>) {
        let payload = self.slots[slot as usize].take().expect("arena slot filled");
        self.free.push(slot);
        self.live -= 1;
        payload
    }

    #[inline]
    fn get(&self, slot: u32) -> Option<&(ProcessId, Work<M>)> {
        self.slots[slot as usize].as_ref()
    }
}

struct Slot<M> {
    proc: Option<Box<dyn Process<M>>>,
    node: NodeId,
    crashed: bool,
    /// A paused process (gray failure: alive but unresponsive) queues all
    /// arriving work and runs nothing until resumed — unlike a crash,
    /// nothing is dropped.
    paused: bool,
    busy_until: SimTime,
    queue: VecDeque<Work<M>>,
    dispatch_scheduled: bool,
}

/// Slab of timer generations: a timer id packs `slot << 32 | generation`.
///
/// Arming allocates a slot (reusing freed ones); firing or cancelling
/// *retires* the id by bumping the slot's generation and freeing the
/// slot. A stale id — cancelled after firing, fired after cancelling, or
/// double-cancelled — simply fails the generation check, so the table's
/// size is bounded by the peak number of concurrently armed timers.
#[derive(Debug, Default)]
struct TimerTable {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerTable {
    fn arm(&mut self) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.gens.push(0);
                (self.gens.len() - 1) as u32
            }
        };
        ((slot as u64) << 32) | self.gens[slot as usize] as u64
    }

    fn is_live(&self, id: u64) -> bool {
        let slot = (id >> 32) as usize;
        self.gens.get(slot).is_some_and(|&g| g == id as u32)
    }

    /// Retires a live id (fire or cancel); returns whether it was live.
    fn retire(&mut self, id: u64) -> bool {
        if !self.is_live(id) {
            return false;
        }
        let slot = (id >> 32) as usize;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot as u32);
        true
    }

    /// Live (armed, not yet fired or cancelled) timer count.
    fn live_count(&self) -> usize {
        self.gens.len() - self.free.len()
    }

    /// Whether any timer was ever armed in this run (slots are never
    /// removed, only recycled, so an empty table means "never").
    fn ever_armed(&self) -> bool {
        !self.gens.is_empty()
    }
}

/// Aggregate engine counters for one simulation run.
///
/// Returned by [`Simulation::stats`]; the geo harness copies it into
/// every `RunReport` so benchmarks can report raw engine throughput.
/// All fields except `wall_ns` are deterministic for a fixed seed;
/// `wall_ns` is real elapsed time and varies run to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Handler invocations (starts, delivered messages, fired timers).
    pub events: u64,
    /// Messages routed through the network model.
    pub messages_routed: u64,
    /// Timers armed and actually scheduled (set-then-cancelled timers
    /// that never reached the heap are excluded).
    pub timers_set: u64,
    /// Arrivals run directly at an idle process, skipping the Dispatch
    /// heap round-trip.
    pub direct_deliveries: u64,
    /// Messages whose delivery was deferred past a partition's heal time
    /// by the fault schedule (TCP-like outage buffering, not loss).
    pub messages_deferred: u64,
    /// Simulated retransmissions on gray links: each adds one RTO of
    /// latency to the affected message.
    pub retransmits: u64,
    /// Peak pending events across the whole scheduler (active bucket +
    /// ring + overflow). The name predates the calendar queue: this was
    /// the binary heap's peak length, and keeps meaning the same thing.
    pub heap_peak: usize,
    /// Peak occupancy of a single calendar bucket at the moment the
    /// cursor opened it for draining.
    pub bucket_peak: usize,
    /// Entries migrated from the far-future overflow heap into the
    /// bucket ring as the epoch window advanced.
    pub overflow_migrations: u64,
    /// Peak number of in-flight payloads resident in the arrival arena.
    pub arena_high_water: usize,
    /// Wall-clock nanoseconds spent inside `run_until` (accumulated
    /// across calls). Not deterministic.
    pub wall_ns: u64,
}

impl EngineStats {
    /// Events per wall-clock second (0 if no wall time was recorded).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Handler-side view of the simulation.
///
/// Lets a process read clocks, send messages, set timers and declare the
/// CPU cost of the work it is doing. Messages sent and timers set from a
/// handler take effect at the handler's *completion* time (start time plus
/// consumed service time), modelling a single-threaded server.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ProcessId,
    node: NodeId,
    consumed: SimTime,
    outbox: Vec<(ProcessId, M, SimTime)>,
    timers: Vec<(SimTime, u64, u64)>,
    clocks: &'a [ClockModel],
    node_regions: &'a [usize],
    proc_nodes: &'a [NodeId],
    rng: &'a mut StdRng,
    topology: &'a Topology,
    timer_table: &'a mut TimerTable,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated (true) time: the start of this handler.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The region (datacenter) of this process's node.
    pub fn region(&self) -> usize {
        self.node_regions[self.node.index()]
    }

    /// Reads this node's *physical* clock — offset and drift included.
    pub fn clock(&self) -> u64 {
        self.clocks[self.node.index()].read(self.now + self.consumed)
    }

    /// Declares `cost` nanoseconds of CPU service time for the current
    /// work item; the process stays busy (queueing later arrivals) until
    /// the accumulated cost elapses.
    pub fn consume(&mut self, cost: SimTime) {
        self.consumed += cost;
    }

    /// Sends `msg` to `to` over the (FIFO, latency-modelled) network at
    /// handler completion time.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg, 0));
    }

    /// Like [`Context::send`] with an extra artificial delay before the
    /// message enters the link (used e.g. to model a straggler).
    pub fn send_delayed(&mut self, to: ProcessId, msg: M, extra: SimTime) {
        self.outbox.push((to, msg, extra));
    }

    /// Arms a timer to fire `delay` ns after handler completion; `tag`
    /// distinguishes timer purposes. Returns an id usable with
    /// [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) -> u64 {
        let id = self.timer_table.arm();
        self.timers.push((delay, tag, id));
        id
    }

    /// Cancels a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: u64) {
        self.timer_table.retire(id);
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// One-way base latency (ns) from this process's region to `to`'s.
    pub fn oneway_latency_to(&self, to: ProcessId) -> SimTime {
        let from_region = self.node_regions[self.node.index()];
        let to_region = self.node_regions[self.proc_nodes[to.index()].index()];
        self.topology.oneway(from_region, to_region)
    }
}

/// The discrete-event simulation over messages of type `M`.
pub struct Simulation<M> {
    queue: CalendarQueue,
    /// Arrival payload arena, indexed by `Target::Arrive::slot`; slots
    /// recycle through its free list so steady-state scheduling
    /// allocates nothing.
    arena: PayloadArena<M>,
    seq: u64,
    now: SimTime,
    slots: Vec<Slot<M>>,
    nodes: Vec<ClockModel>,
    node_regions: Vec<usize>,
    /// Node of each process, maintained as processes are added (never
    /// re-collected on the dispatch path).
    proc_nodes: Vec<NodeId>,
    /// Region of each process (derived from `proc_nodes`, cached for the
    /// routing path).
    proc_regions: Vec<usize>,
    topology: Topology,
    rng: StdRng,
    /// Dedicated fast stream for per-message latency jitter (see
    /// [`JitterRng`]): routing never burns `StdRng` (ChaCha) draws.
    jitter_rng: JitterRng,
    /// Last delivery time per ordered `(from, to)` process pair, indexed
    /// `from * nprocs + to`. Allocated only for runs with a fault
    /// schedule: fault windows change a pair's base latency over time, so
    /// the FIFO clamp can bind arbitrarily long after a send and every
    /// pair must stay tracked. Faulted presets are small deployments, so
    /// the n² table is cheap there.
    link_last: Vec<SimTime>,
    /// FIFO clamp state for fault-free runs, keyed `(from << 32) | to`,
    /// holding `(latest departure, latest arrival)` per recently active
    /// pair. With a constant per-pair base latency the clamp can only
    /// bind while `now < departure + jitter`, so only pairs with a send
    /// inside that window need tracking — a handful of L1-hot entries
    /// instead of an n² table (2.6 MB of cold DRAM at 576 processes,
    /// roughly a fifth of massive-scale wall time in misses). Arrivals
    /// are bit-identical to the flat table.
    fifo_recent: FxHashMap<u64, (SimTime, SimTime)>,
    /// Retirement queue for `fifo_recent`: `(departure, key)` records in
    /// insertion order, pruned from the front as `now` advances past the
    /// clamp horizon.
    fifo_age: VecDeque<(SimTime, u64)>,
    /// Base one-way latency per ordered region pair, indexed
    /// `from_region * nregions + to_region`; flattened from the topology
    /// when the run starts so routing never chases nested Vecs.
    oneway_base: Vec<SimTime>,
    /// Cached `topology.jitter()`.
    jitter: SimTime,
    /// Cached `topology.regions()`.
    nregions: usize,
    timer_table: TimerTable,
    /// Link-fault schedule as installed (compiled when the run starts).
    fault_schedule: Option<FaultSchedule>,
    /// Compiled per-pair fault timelines consulted by `route`.
    faults: Option<CompiledFaults>,
    /// Pooled scratch buffers lent to `Context` around each handler call.
    scratch_outbox: Vec<(ProcessId, M, SimTime)>,
    scratch_timers: Vec<(SimTime, u64, u64)>,
    stats: EngineStats,
    started: bool,
    /// Model-checking mode: scheduling decisions are externalized. While
    /// set, newly scheduled events land in `mc_queue` (an unordered pool)
    /// instead of the time-ordered heap, and the model checker picks which
    /// pending event fires next via [`Simulation::mc_fire`].
    mc_mode: bool,
    /// Pending events while in MC mode. Per-link FIFO order is recovered
    /// from `(time, seq)`; *between* links the checker chooses freely.
    mc_queue: Vec<HeapEntry>,
}

impl<M> Simulation<M> {
    /// Creates a simulation over `topology` with a deterministic `seed`.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Simulation {
            queue: CalendarQueue::new(),
            arena: PayloadArena::new(),
            seq: 0,
            now: 0,
            slots: Vec::new(),
            nodes: Vec::new(),
            node_regions: Vec::new(),
            proc_nodes: Vec::new(),
            proc_regions: Vec::new(),
            topology,
            rng: StdRng::seed_from_u64(seed),
            jitter_rng: JitterRng::new(seed),
            link_last: Vec::new(),
            fifo_recent: FxHashMap::default(),
            fifo_age: VecDeque::new(),
            oneway_base: Vec::new(),
            jitter: 0,
            nregions: 0,
            timer_table: TimerTable::default(),
            fault_schedule: None,
            faults: None,
            scratch_outbox: Vec::new(),
            scratch_timers: Vec::new(),
            stats: EngineStats::default(),
            started: false,
            mc_mode: false,
            mc_queue: Vec::new(),
        }
    }

    /// Adds a node (machine) in `region` with a perfect clock.
    ///
    /// # Panics
    ///
    /// Panics if `region` is outside the topology.
    pub fn add_node(&mut self, region: usize) -> NodeId {
        self.add_node_with_clock(region, ClockModel::perfect())
    }

    /// Adds a node with an explicit clock model.
    pub fn add_node_with_clock(&mut self, region: usize, clock: ClockModel) -> NodeId {
        assert!(region < self.topology.regions(), "region out of range");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(clock);
        self.node_regions.push(region);
        id
    }

    /// Convenience: adds a fresh node in `region` and a process on it.
    pub fn add_process(&mut self, region: usize, proc: Box<dyn Process<M>>) -> ProcessId {
        let node = self.add_node(region);
        self.add_process_on(node, proc)
    }

    /// Adds a process on an existing node.
    pub fn add_process_on(&mut self, node: NodeId, proc: Box<dyn Process<M>>) -> ProcessId {
        assert!(
            !self.started,
            "processes must be added before the run starts"
        );
        let pid = ProcessId(self.slots.len() as u32);
        self.slots.push(Slot {
            proc: Some(proc),
            node,
            crashed: false,
            paused: false,
            busy_until: 0,
            queue: VecDeque::new(),
            dispatch_scheduled: false,
        });
        self.proc_nodes.push(node);
        self.proc_regions.push(self.node_regions[node.index()]);
        pid
    }

    /// Schedules `pid` to crash at `time`: it stops handling anything and
    /// all its queued and future work is dropped.
    pub fn crash_at(&mut self, pid: ProcessId, time: SimTime) {
        self.push_entry(time, Target::Crash { pid });
    }

    /// Whether `pid` has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.slots[pid.index()].crashed
    }

    /// Schedules `pid` to pause during `[from, to)`: a gray failure where
    /// the process is alive but unresponsive. Arriving work (messages and
    /// timer firings) queues instead of running and drains — in arrival
    /// order — once the process resumes. Nothing is dropped.
    ///
    /// # Panics
    /// Panics if the window is empty or inverted.
    pub fn pause_between(&mut self, pid: ProcessId, from: SimTime, to: SimTime) {
        assert!(from < to, "pause window [{from}, {to}) is empty");
        self.push_entry(from, Target::Pause { pid });
        self.push_entry(to, Target::Resume { pid });
    }

    /// Whether `pid` is currently paused.
    pub fn is_paused(&self, pid: ProcessId) -> bool {
        self.slots[pid.index()].paused
    }

    /// Installs the link-fault schedule (partitions, gray links,
    /// asymmetric overrides) interpreted by the routing path. See
    /// [`FaultSchedule`] for the fault model.
    ///
    /// # Panics
    /// Panics if the run has already started.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        assert!(
            !self.started,
            "fault schedules must be installed before the run starts"
        );
        self.fault_schedule = Some(schedule);
    }

    /// Current simulated time (ns).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total handler invocations so far.
    pub fn events_processed(&self) -> u64 {
        self.stats.events
    }

    /// Engine counters for this run so far.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.bucket_peak = self.queue.bucket_peak;
        s.overflow_migrations = self.queue.overflow_migrations;
        s.arena_high_water = self.arena.high_water;
        s
    }

    /// Currently armed (not yet fired or cancelled) timers. Bounded by
    /// the protocols' live timer needs — the cancellation bookkeeping
    /// itself holds no per-cancel state (see [`EngineStats`]).
    pub fn live_timers(&self) -> usize {
        self.timer_table.live_count()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    #[inline]
    fn push_entry(&mut self, time: SimTime, what: Target) {
        self.seq += 1;
        let entry = HeapEntry {
            time,
            seq: self.seq,
            what,
        };
        if self.mc_mode {
            self.mc_queue.push(entry);
            return;
        }
        self.enqueue_timed(entry);
    }

    #[inline]
    fn enqueue_timed(&mut self, entry: HeapEntry) {
        self.queue.push(entry);
        if self.queue.len() > self.stats.heap_peak {
            self.stats.heap_peak = self.queue.len();
        }
    }

    #[inline]
    fn push_arrive(&mut self, time: SimTime, to: ProcessId, work: Work<M>) {
        let slot = self.arena.insert(to, work);
        self.push_entry(time, Target::Arrive { slot });
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // The process set is frozen now: flatten the topology's latency
        // matrix and set up the FIFO clamp state.
        let n = self.slots.len();
        let regions = self.topology.regions();
        self.oneway_base = (0..regions * regions)
            .map(|k| self.topology.oneway(k / regions, k % regions))
            .collect();
        self.jitter = self.topology.jitter();
        self.nregions = regions;
        if let Some(schedule) = self.fault_schedule.take() {
            if !schedule.is_empty() {
                self.faults = Some(schedule.compile(regions));
            }
        }
        if self.faults.is_some() {
            // Fault windows shift base latencies, so every pair keeps a
            // persistent clamp slot (see `link_last`).
            self.link_last = vec![0; n * n];
        } else {
            self.fifo_recent.reserve(256);
            self.fifo_age.reserve(256);
        }
        for i in 0..n {
            self.push_arrive(0, ProcessId(i as u32), Work::Start);
        }
    }

    /// Runs until the event queue drains or simulated time reaches
    /// `deadline` (events after the deadline stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        let wall_start = std::time::Instant::now();
        self.start_if_needed();
        while let Some(e) = self.queue.peek() {
            if e.time > deadline {
                break;
            }
            let e = self.queue.pop().expect("peeked event must pop");
            self.now = e.time;
            match e.what {
                Target::Arrive { slot } => {
                    let (to, work) = self.arena.take(slot);
                    self.arrive(to, work);
                }
                Target::Dispatch { to } => self.dispatch(to),
                Target::Crash { pid } => {
                    let s = &mut self.slots[pid.index()];
                    s.crashed = true;
                    // Dropped work may hold armed timers: retire them so
                    // their slots recycle and live_timers() stays exact.
                    for w in s.queue.drain(..) {
                        if let Work::Timer { id, .. } = w {
                            self.timer_table.retire(id);
                        }
                    }
                }
                Target::Pause { pid } => {
                    let s = &mut self.slots[pid.index()];
                    if !s.crashed {
                        s.paused = true;
                    }
                }
                Target::Resume { pid } => {
                    let idx = pid.index();
                    if self.slots[idx].paused {
                        self.slots[idx].paused = false;
                        // Drain what accumulated during the pause.
                        let at = self.slots[idx].busy_until.max(self.now);
                        self.reschedule_if_queued(idx, pid, at);
                    }
                }
            }
        }
        self.now = self
            .now
            .max(deadline.min(self.peek_time().unwrap_or(deadline)));
        self.stats.wall_ns += wall_start.elapsed().as_nanos() as u64;
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    /// Runs for `duration` more nanoseconds of simulated time.
    pub fn run_for(&mut self, duration: SimTime) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    fn arrive(&mut self, to: ProcessId, work: Work<M>) {
        let slot = &mut self.slots[to.index()];
        if slot.crashed {
            // A timer landing on a crashed process still owns its table
            // slot — retire it so the slab stays tight.
            if let Work::Timer { id, .. } = work {
                self.timer_table.retire(id);
            }
            return;
        }
        if slot.paused {
            // Unresponsive, not dead: everything waits for the resume.
            slot.queue.push_back(work);
            return;
        }
        // Direct delivery: an idle process with nothing queued runs the
        // handler now — no Dispatch heap round-trip. (Stale timer
        // arrivals don't count: their handler never runs.)
        if !slot.dispatch_scheduled && slot.queue.is_empty() && slot.busy_until <= self.now {
            if self.run_work(to, work) {
                self.stats.direct_deliveries += 1;
            }
            return;
        }
        slot.queue.push_back(work);
        if !slot.dispatch_scheduled {
            slot.dispatch_scheduled = true;
            let at = slot.busy_until.max(self.now);
            self.push_entry(at, Target::Dispatch { to });
        }
    }

    fn dispatch(&mut self, pid: ProcessId) {
        let idx = pid.index();
        self.slots[idx].dispatch_scheduled = false;
        if self.slots[idx].crashed {
            // The Crash event drained the queue and arrive() rejects
            // work for crashed processes, so there is nothing to drop.
            debug_assert!(self.slots[idx].queue.is_empty());
            return;
        }
        if self.slots[idx].paused {
            // A dispatch scheduled before the pause landed: the queued
            // work stays put until the resume reschedules it.
            return;
        }
        let Some(work) = self.slots[idx].queue.pop_front() else {
            return;
        };
        self.run_work(pid, work);
    }

    /// Runs one work item's handler at `self.now`, then flushes its
    /// outbox/timers at the handler's completion time and reschedules the
    /// process if more work is queued. Returns whether a handler actually
    /// ran (false for stale — cancelled — timer arrivals).
    fn run_work(&mut self, pid: ProcessId, work: Work<M>) -> bool {
        let idx = pid.index();
        // Timer-free fast path: a run that never armed a timer (e.g.
        // eventual consistency, which has nothing to stabilize) can have
        // no `Work::Timer` in flight, so the generation check — and the
        // flush below — are skipped wholesale.
        if !self.timer_table.ever_armed() {
            debug_assert!(!matches!(work, Work::Timer { .. }));
            return self.run_work_handler(pid, idx, work);
        }
        if let Work::Timer { id, .. } = work {
            // A dead generation means the timer was cancelled.
            if !self.timer_table.retire(id) {
                self.reschedule_if_queued(idx, pid, self.now);
                return false;
            }
        }
        self.run_work_handler(pid, idx, work)
    }

    fn run_work_handler(&mut self, pid: ProcessId, idx: usize, work: Work<M>) -> bool {
        // Temporarily take the process out so the handler can borrow the
        // simulation's shared state through the context.
        let mut proc = self.slots[idx].proc.take().expect("process present");
        let node = self.slots[idx].node;
        let mut ctx = Context {
            now: self.now,
            self_id: pid,
            node,
            consumed: 0,
            outbox: std::mem::take(&mut self.scratch_outbox),
            timers: std::mem::take(&mut self.scratch_timers),
            clocks: &self.nodes,
            node_regions: &self.node_regions,
            proc_nodes: &self.proc_nodes,
            rng: &mut self.rng,
            topology: &self.topology,
            timer_table: &mut self.timer_table,
        };
        match work {
            Work::Start => proc.on_start(&mut ctx),
            Work::Message { from, msg } => proc.on_message(&mut ctx, from, msg),
            Work::Timer { tag, .. } => proc.on_timer(&mut ctx, tag),
        }
        self.stats.events += 1;
        let consumed = ctx.consumed;
        let mut outbox = std::mem::take(&mut ctx.outbox);
        let mut timers = std::mem::take(&mut ctx.timers);
        drop(ctx);
        self.slots[idx].proc = Some(proc);
        let completion = self.now + consumed;
        self.slots[idx].busy_until = completion;
        for (to, msg, extra) in outbox.drain(..) {
            self.route(pid, to, msg, completion + extra);
        }
        self.scratch_outbox = outbox;
        for (delay, tag, id) in timers.drain(..) {
            // Set-then-cancelled within the same handler: never schedule.
            if !self.timer_table.is_live(id) {
                continue;
            }
            self.stats.timers_set += 1;
            self.push_arrive(completion + delay, pid, Work::Timer { tag, id });
        }
        self.scratch_timers = timers;
        self.reschedule_if_queued(idx, pid, completion);
        true
    }

    /// More queued work: dispatch again at `at` (the handler's completion
    /// time) unless a dispatch is already in flight.
    fn reschedule_if_queued(&mut self, idx: usize, pid: ProcessId, at: SimTime) {
        if !self.slots[idx].queue.is_empty() && !self.slots[idx].dispatch_scheduled {
            self.slots[idx].dispatch_scheduled = true;
            self.push_entry(at, Target::Dispatch { to: pid });
        }
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, msg: M, departure: SimTime) {
        let from_region = self.proc_regions[from.index()];
        let to_region = self.proc_regions[to.index()];
        let mut base = self.oneway_base[from_region * self.nregions + to_region];
        let mut departure = departure;
        let mut extra = 0;
        if let Some(faults) = &self.faults {
            let mut st = faults.state_at(from_region, to_region, departure);
            if !st.is_clear() {
                // Partition: the transport buffers the message and sends
                // it at the heal. Chained windows are walked until the
                // link is open (each heal is strictly later — terminates),
                // but however many windows it crosses, one message was
                // deferred once.
                if st.blocked_until.is_some() {
                    self.stats.messages_deferred += 1;
                }
                while let Some(heal) = st.blocked_until {
                    departure = heal;
                    st = faults.state_at(from_region, to_region, departure);
                }
                if let Some(oneway) = st.oneway {
                    base = oneway;
                }
                extra = st.extra;
                if st.loss_ppm > 0 {
                    // Gray link: each simulated loss costs one RTO before
                    // the retransmission gets through (geometric, capped).
                    let mut tries = 0;
                    while tries < 16 && self.rng.random_range(0..1_000_000u32) < st.loss_ppm {
                        extra += st.rto;
                        self.stats.retransmits += 1;
                        tries += 1;
                    }
                }
            }
        }
        let latency = self.jitter_rng.sample(base + extra, self.jitter);
        let mut arrival = departure + latency;
        // FIFO clamp per ordered (from, to) pair.
        if self.faults.is_some() {
            // Flat table: a fault window can lower a pair's latency after
            // a slow send, so any pair may need clamping at any distance.
            let last = &mut self.link_last[from.index() * self.slots.len() + to.index()];
            if arrival < *last {
                arrival = *last;
            }
            *last = arrival;
        } else {
            // Fault-free: base latency is constant per pair, so a prior
            // send can only force a clamp on a message departing before
            // `departure_prev + jitter` — anything routed later already
            // arrives no earlier than everything before it on the link.
            // Retire pairs past that horizon (departures are >= `now`,
            // which is monotone), keeping the map to the handful of pairs
            // active inside the jitter window.
            while let Some(&(dep, key)) = self.fifo_age.front() {
                if dep + self.jitter > self.now {
                    break;
                }
                self.fifo_age.pop_front();
                if let Some(&(d, _)) = self.fifo_recent.get(&key) {
                    if d == dep {
                        self.fifo_recent.remove(&key);
                    }
                }
            }
            let key = ((from.0 as u64) << 32) | to.0 as u64;
            match self.fifo_recent.entry(key) {
                Entry::Occupied(mut e) => {
                    let (dep_max, arr_max) = e.get_mut();
                    if arrival < *arr_max {
                        arrival = *arr_max;
                    } else {
                        *arr_max = arrival;
                    }
                    if departure > *dep_max {
                        *dep_max = departure;
                        self.fifo_age.push_back((departure, key));
                    }
                }
                Entry::Vacant(v) => {
                    v.insert((departure, arrival));
                    self.fifo_age.push_back((departure, key));
                }
            }
        }
        self.stats.messages_routed += 1;
        self.push_arrive(arrival, to, Work::Message { from, msg });
    }

    // --- Model-checking hooks -------------------------------------------
    //
    // `mc_begin` flips the engine into MC mode: every event scheduled from
    // then on lands in `mc_queue` instead of the heap, and an external
    // model checker (see `crate::mc`) decides the order with `mc_fire`.
    // `mc_close` hands control back for a normal timed run (quiescence
    // closure). Crash/pause schedules and in-handler randomness are out of
    // scope: MC configs use zero latency/jitter and no fault schedules.

    /// Enters model-checking mode and runs every process's `on_start`
    /// eagerly, in process-id order.
    ///
    /// Start events are a deterministic prologue, not a scheduling choice:
    /// exploring their `n!` permutations would explode the state space
    /// without exercising any protocol behaviour (starts only arm timers
    /// and send initial messages; the *deliveries* are where orderings
    /// diverge, and those remain fully under checker control).
    ///
    /// # Panics
    /// Panics if the run has already started, or if crash/pause events or
    /// a fault schedule were installed (unsupported in MC mode).
    pub fn mc_begin(&mut self) {
        assert!(!self.started, "mc_begin must precede any run_until");
        assert!(
            self.fault_schedule.is_none(),
            "fault schedules are not supported in MC mode (use Drop/Dup choices)"
        );
        assert!(
            self.queue.is_empty(),
            "crash/pause schedules are not supported in MC mode"
        );
        self.mc_mode = true;
        self.start_if_needed();
        for pid in 0..self.slots.len() as u32 {
            let idx = self
                .mc_queue
                .iter()
                .position(|e| match e.what {
                    Target::Arrive { slot } => matches!(
                        self.arena.get(slot),
                        Some((to, Work::Start)) if to.0 == pid
                    ),
                    _ => false,
                })
                .expect("every process has a pending start arrival");
            self.mc_run_entry(idx);
        }
    }

    /// Whether the simulation is currently in MC mode.
    pub fn mc_active(&self) -> bool {
        self.mc_mode
    }

    /// In-flight (undelivered) messages while in MC mode.
    pub fn mc_pending_messages(&self) -> usize {
        self.mc_queue
            .iter()
            .filter(|e| match e.what {
                Target::Arrive { slot } => {
                    matches!(self.arena.get(slot), Some((_, Work::Message { .. })))
                }
                _ => false,
            })
            .count()
    }

    /// The schedulable events at the current state, deterministically
    /// ordered: one `Deliver` per ordered link with an in-flight message
    /// (sorted by `(from, to)`), then `Timer` if any live timer is
    /// pending. An empty result means the state is quiescent up to timers
    /// already excluded by the caller's budget.
    pub fn mc_candidates(&self) -> Vec<McEvent> {
        let mut links: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
        let mut timer = false;
        for e in &self.mc_queue {
            let Target::Arrive { slot } = e.what else {
                debug_assert!(false, "only arrivals may be pending in MC mode");
                continue;
            };
            match self.arena.get(slot) {
                Some((to, Work::Message { from, .. })) => {
                    links.insert((from.0, to.0));
                }
                Some((_, Work::Timer { id, .. })) => {
                    // Cancelled timers still hold a queue entry but their
                    // generation is dead; firing them is a no-op, so they
                    // are not offered as choices.
                    timer |= self.timer_table.is_live(*id);
                }
                Some((_, Work::Start)) => {
                    debug_assert!(false, "start arrivals fire inside mc_begin")
                }
                None => debug_assert!(false, "pending arrival slot must be filled"),
            }
        }
        let mut out: Vec<McEvent> = links
            .into_iter()
            .map(|(f, t)| McEvent::Deliver {
                from: ProcessId(f),
                to: ProcessId(t),
            })
            .collect();
        if timer {
            out.push(McEvent::Timer);
        }
        out
    }

    /// Fires one schedulable event: the oldest in-flight message on the
    /// given link, or the earliest live timer. Any events the handler
    /// schedules join the pending pool. Returns `false` if no matching
    /// event is pending (stale choice).
    pub fn mc_fire(&mut self, ev: McEvent) -> bool {
        assert!(self.mc_mode, "mc_fire outside MC mode");
        match self.mc_find(ev) {
            Some(idx) => {
                self.mc_run_entry(idx);
                true
            }
            None => false,
        }
    }

    /// Drops (loses) the oldest in-flight message on `from → to`,
    /// modelling a lossy transport. Returns `false` if the link is empty.
    pub fn mc_drop(&mut self, from: ProcessId, to: ProcessId) -> bool {
        assert!(self.mc_mode, "mc_drop outside MC mode");
        let Some(idx) = self.mc_find(McEvent::Deliver { from, to }) else {
            return false;
        };
        let e = self.mc_queue.swap_remove(idx);
        let Target::Arrive { slot } = e.what else {
            unreachable!("mc_find returns arrivals only");
        };
        drop(self.arena.take(slot));
        true
    }

    /// Index into `mc_queue` of the oldest (per-link FIFO, i.e. minimal
    /// `(time, seq)`) pending event matching `ev`.
    fn mc_find(&self, ev: McEvent) -> Option<usize> {
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (i, e) in self.mc_queue.iter().enumerate() {
            let Target::Arrive { slot } = e.what else {
                continue;
            };
            let hit = match (&ev, self.arena.get(slot)) {
                (McEvent::Deliver { from, to }, Some((t, Work::Message { from: f, .. }))) => {
                    f == from && t == to
                }
                (McEvent::Timer, Some((_, Work::Timer { id, .. }))) => {
                    self.timer_table.is_live(*id)
                }
                _ => false,
            };
            if hit && best.is_none_or(|(_, bt, bs)| (e.time, e.seq) < (bt, bs)) {
                best = Some((i, e.time, e.seq));
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Removes entry `idx` from the pending pool and runs it, then drains
    /// any internal Dispatch events it produced (a busy process's queued
    /// work is engine bookkeeping, not a scheduling choice).
    fn mc_run_entry(&mut self, idx: usize) {
        let e = self.mc_queue.swap_remove(idx);
        if e.time > self.now {
            self.now = e.time;
        }
        match e.what {
            Target::Arrive { slot } => {
                let (to, work) = self.arena.take(slot);
                self.arrive(to, work);
            }
            Target::Dispatch { to } => self.dispatch(to),
            _ => unreachable!("crash/pause events are rejected by mc_begin"),
        }
        loop {
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, e) in self.mc_queue.iter().enumerate() {
                if matches!(e.what, Target::Dispatch { .. })
                    && best.is_none_or(|(_, bt, bs)| (e.time, e.seq) < (bt, bs))
                {
                    best = Some((i, e.time, e.seq));
                }
            }
            let Some((i, _, _)) = best else { break };
            let e = self.mc_queue.swap_remove(i);
            if e.time > self.now {
                self.now = e.time;
            }
            let Target::Dispatch { to } = e.what else {
                unreachable!();
            };
            self.dispatch(to);
        }
    }

    /// Exits MC mode and runs the remaining (checker-untouched) events
    /// plus everything they trigger for `horizon` more nanoseconds of
    /// simulated time — the quiescence closure that lets timer-driven
    /// machinery (metadata flushes, stabilization rounds) finish so
    /// convergence predicates can be checked on a settled state.
    pub fn mc_close(&mut self, horizon: SimTime) {
        assert!(self.mc_mode, "mc_close outside MC mode");
        self.mc_mode = false;
        for e in std::mem::take(&mut self.mc_queue) {
            self.enqueue_timed(e);
        }
        let deadline = self.now + horizon;
        self.run_until(deadline);
    }
}

impl<M: Clone> Simulation<M> {
    /// Delivers the oldest in-flight message on `from → to` *and*
    /// re-enqueues a copy behind it on the same link, modelling an
    /// at-least-once transport (duplicate delivery). Returns `false` if
    /// the link is empty.
    pub fn mc_fire_dup(&mut self, from: ProcessId, to: ProcessId) -> bool {
        assert!(self.mc_mode, "mc_fire_dup outside MC mode");
        let Some(idx) = self.mc_find(McEvent::Deliver { from, to }) else {
            return false;
        };
        let (time, slot) = {
            let e = &self.mc_queue[idx];
            let Target::Arrive { slot } = e.what else {
                unreachable!("mc_find returns arrivals only");
            };
            (e.time, slot)
        };
        let msg = match self.arena.get(slot) {
            Some((_, Work::Message { msg, .. })) => msg.clone(),
            _ => unreachable!("mc_find matched a message arrival"),
        };
        // The copy gets a fresh (larger) seq, so it sits *behind* the
        // original in the link's FIFO order; `idx` stays valid because
        // push only appends.
        self.push_arrive(time, to, Work::Message { from, msg });
        self.mc_run_entry(idx);
        true
    }
}

impl<M: std::hash::Hash> Simulation<M> {
    /// A 64-bit fingerprint of the global state for MC pruning, or `None`
    /// if any live process keeps the default opaque
    /// [`Process::mc_state`] (pruning then stays off — sound, just slow).
    ///
    /// The digest covers each process's protocol state, the multiset of
    /// in-flight messages (commutatively — the pending pool is unordered),
    /// pending live timers by owner and tag, and the RNG state. It
    /// deliberately *excludes* simulated time, arrival times and timer
    /// generation ids: two states differing only in clock readings behave
    /// identically under the zero-latency configs MC runs use, and folding
    /// time in would make every interleaving look unique, defeating
    /// pruning. Predicates are still checked on every traversed edge
    /// before the prune test, so collapsing time-equivalent states never
    /// skips a violation reachable along the pruned path's prefix.
    pub fn mc_fingerprint(&self) -> Option<u64> {
        use eunomia_collections::{combine_unordered, hash_one, Fnv64};
        use std::hash::Hasher as _;
        let mut h = Fnv64::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let proc = slot
                .proc
                .as_ref()
                .expect("no handler is running while fingerprinting");
            h.write_usize(i);
            if !proc.mc_state(&mut h) {
                return None;
            }
            // Queued work only exists for busy/paused processes; MC
            // configs use zero service costs and no pauses.
            debug_assert!(slot.queue.is_empty(), "unexpected queued work in MC mode");
        }
        let mut pending = 0u64;
        for e in &self.mc_queue {
            let Target::Arrive { slot } = e.what else {
                continue;
            };
            match self.arena.get(slot) {
                Some((to, Work::Message { from, msg })) => {
                    pending = combine_unordered(pending, hash_one(&(1u8, from.0, to.0, msg)));
                }
                Some((to, Work::Timer { tag, id })) if self.timer_table.is_live(*id) => {
                    pending = combine_unordered(pending, hash_one(&(2u8, to.0, *tag)));
                }
                _ => {}
            }
        }
        h.write_u64(pending);
        // Two states with different RNG positions can diverge on the next
        // client op draw; sample (a clone of) the stream instead of
        // depending on StdRng's internals being hashable.
        let mut rng = self.rng.clone();
        h.write_u64(rng.random());
        h.write_u64(rng.random());
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(SimTime, String)>>>;

    /// Drives the calendar queue across a bucket-epoch rollover and an
    /// overflow migration pinned to the exact window boundary: an entry
    /// at `NBUCKETS << shift` is the first time that must land in
    /// overflow (one tick earlier is the last ring slot), and both must
    /// come back in global `(time, seq)` order as the cursor slides,
    /// wraps the ring, and jumps.
    #[test]
    fn calendar_queue_rollover_and_boundary_migration() {
        let entry = |time, seq| HeapEntry {
            time,
            seq,
            what: Target::Dispatch { to: ProcessId(0) },
        };
        let mut q = CalendarQueue::new();
        let w = 1u64 << q.shift;
        let boundary = w * NBUCKETS as u64; // first time outside the window
        q.push(entry(0, 0)); // bucket 0: straight to active
        q.push(entry(w, 1)); // bucket 1: ring
        q.push(entry(boundary - 1, 2)); // last bucket inside the window
        q.push(entry(boundary, 3)); // exactly on the boundary: overflow
        q.push(entry(boundary + 5 * w, 4)); // deeper overflow
        assert_eq!(q.len(), 5);
        assert_eq!(
            q.overflow.len(),
            2,
            "the boundary entry itself must start in overflow"
        );
        // Bucket `NBUCKETS` reuses ring slot 0 (epoch wrap) after the
        // boundary entry migrates in; order must be untouched by which
        // tier each entry sat in.
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![0, w, boundary - 1, boundary, boundary + 5 * w]);
        assert_eq!(q.overflow_migrations, 2);
        assert!(q.is_empty());

        // Far-future-only pending: the cursor jumps (no bucket walk) and
        // migrates the window in.
        let mut q = CalendarQueue::new();
        q.push(entry(3 * boundary + 7, 9));
        assert_eq!(q.overflow.len(), 1);
        let e = q.pop().expect("entry is pending");
        assert_eq!((e.time, e.seq), (3 * boundary + 7, 9));
        assert_eq!(q.overflow_migrations, 1);

        // Same-timestamp entries pushed out of seq order, one far future
        // (migrates) and one near: `seq` still breaks the tie.
        let mut q = CalendarQueue::new();
        q.push(entry(boundary, 8));
        q.push(entry(boundary, 6));
        let first = q.pop().expect("two entries pending");
        let second = q.pop().expect("one entry pending");
        assert_eq!((first.time, first.seq), (boundary, 6));
        assert_eq!((second.time, second.seq), (boundary, 8));
    }

    struct Recorder {
        log: Log,
        label: &'static str,
    }

    impl Process<u64> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, msg: u64) {
            self.log
                .borrow_mut()
                .push((ctx.now(), format!("{}:{}", self.label, msg)));
        }
    }

    struct Burst {
        peer: ProcessId,
        n: u64,
    }

    impl Process<u64> for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.n {
                ctx.send(self.peer, i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {}
    }

    #[test]
    fn fifo_per_link_with_jitter() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::us(100), units::us(90)), 1);
        let rec = sim.add_process(
            0,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _send = sim.add_process(0, Box::new(Burst { peer: rec, n: 50 }));
        sim.run_until(units::secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 50);
        // Messages arrive in send order despite jitter (FIFO clamp).
        for (i, (_, m)) in log.iter().enumerate() {
            assert_eq!(m, &format!("r:{i}"));
        }
        // Arrival times never regress.
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    struct SlowServer {
        log: Log,
        cost: SimTime,
    }

    impl Process<u64> for SlowServer {
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, msg: u64) {
            ctx.consume(self.cost);
            self.log.borrow_mut().push((ctx.now(), format!("s:{msg}")));
        }
    }

    #[test]
    fn busy_server_serializes_work() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::us(10), 0), 2);
        let server = sim.add_process(
            0,
            Box::new(SlowServer {
                log: log.clone(),
                cost: units::us(100),
            }),
        );
        let _client = sim.add_process(
            0,
            Box::new(Burst {
                peer: server,
                n: 10,
            }),
        );
        sim.run_until(units::secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 10);
        // All ten arrive at ~10us, but handling is spaced by the 100us
        // service time: message k starts at 10us + k*100us.
        for (k, (t, _)) in log.iter().enumerate() {
            assert_eq!(*t, units::us(10) + k as u64 * units::us(100));
        }
    }

    struct Ticker {
        log: Log,
        period: SimTime,
        remaining: u32,
    }

    impl Process<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(self.period, 7);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: u64) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, tag: u64) {
            assert_eq!(tag, 7);
            self.log.borrow_mut().push((ctx.now(), "tick".into()));
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(self.period, 7);
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 3);
        sim.add_process(
            0,
            Box::new(Ticker {
                log: log.clone(),
                period: units::ms(5),
                remaining: 4,
            }),
        );
        sim.run_until(units::secs(1));
        let times: Vec<SimTime> = log.borrow().iter().map(|(t, _)| *t).collect();
        assert_eq!(
            times,
            vec![units::ms(5), units::ms(10), units::ms(15), units::ms(20)]
        );
    }

    #[test]
    fn crash_drops_pending_and_future_work() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::ms(1), 0), 4);
        let server = sim.add_process(
            0,
            Box::new(SlowServer {
                log: log.clone(),
                cost: units::ms(2),
            }),
        );
        let _client = sim.add_process(
            0,
            Box::new(Burst {
                peer: server,
                n: 100,
            }),
        );
        sim.crash_at(server, units::ms(10));
        sim.run_until(units::secs(1));
        // Arrived at 1ms, 2ms service each: handled at 1,3,5,7,9 -> 5 done.
        assert_eq!(log.borrow().len(), 5);
        assert!(sim.is_crashed(server));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<(SimTime, String)> {
            let log: Log = Rc::default();
            let mut sim = Simulation::new(
                Topology::single_region(3, units::us(50), units::us(77)),
                seed,
            );
            let rec = sim.add_process(
                0,
                Box::new(Recorder {
                    log: log.clone(),
                    label: "x",
                }),
            );
            for _ in 0..3 {
                let _ = sim.add_process(0, Box::new(Burst { peer: rec, n: 20 }));
            }
            sim.run_until(units::secs(1));
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run(99), run(99));
        assert_ne!(
            run(99),
            run(100),
            "different seeds should differ under jitter"
        );
    }

    #[test]
    fn clock_models_apply_per_node() {
        struct ClockReader {
            log: Log,
        }
        impl Process<u64> for ClockReader {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.set_timer(units::ms(10), 0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _tag: u64) {
                self.log.borrow_mut().push((ctx.clock(), "c".into()));
            }
        }
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, 0, 0), 5);
        let ahead = sim.add_node_with_clock(0, ClockModel::new(units::ms(3) as i64, 0.0));
        sim.add_process_on(ahead, Box::new(ClockReader { log: log.clone() }));
        sim.run_until(units::secs(1));
        let clock_read = log.borrow()[0].0;
        assert_eq!(clock_read, units::ms(13));
    }

    #[test]
    fn cross_region_latency_is_half_rtt() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::paper_three_dcs(0, 0), 6);
        let rec = sim.add_process(
            1,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _send = sim.add_process(0, Box::new(Burst { peer: rec, n: 1 }));
        sim.run_until(units::secs(1));
        assert_eq!(log.borrow()[0].0, units::ms(40));
    }

    #[test]
    fn send_delayed_adds_to_departure() {
        struct DelaySender {
            peer: ProcessId,
        }
        impl Process<u64> for DelaySender {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.send_delayed(self.peer, 1, units::ms(7));
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
        }
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::ms(1), 0), 8);
        let rec = sim.add_process(
            0,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _s = sim.add_process(0, Box::new(DelaySender { peer: rec }));
        sim.run_until(units::secs(1));
        assert_eq!(log.borrow()[0].0, units::ms(8));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// FIFO per link holds for any jitter bound and seed, and the
            /// busy-server model never loses or duplicates messages.
            #[test]
            fn fifo_and_conservation(seed in 0u64..5000, jitter_us in 0u64..500, n in 1u64..80) {
                let log: Log = Rc::default();
                let mut sim = Simulation::new(
                    Topology::single_region(2, units::us(50), units::us(jitter_us)),
                    seed,
                );
                let rec = sim.add_process(
                    0,
                    Box::new(SlowServer { log: log.clone(), cost: units::us(10) }),
                );
                let _send = sim.add_process(0, Box::new(Burst { peer: rec, n }));
                sim.run_until(units::secs(2));
                let log = log.borrow();
                prop_assert_eq!(log.len(), n as usize, "conservation");
                for (i, (_, m)) in log.iter().enumerate() {
                    prop_assert_eq!(m, &format!("s:{i}"), "FIFO order");
                }
                for w in log.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "time monotone");
                }
            }
        }
    }

    #[test]
    fn stale_cancels_leak_nothing_and_spare_reused_slots() {
        // A process that every tick: fires timer A, then cancels A's
        // already-fired id (the old engine accumulated one HashSet entry
        // per such cancel, forever) and arms the next tick. The stale
        // cancel must also not kill the fresh timer even when the slab
        // reuses A's slot.
        struct StaleCanceller {
            last: u64,
            fired: u32,
            rounds: u32,
        }
        impl Process<u64> for StaleCanceller {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                self.last = ctx.set_timer(units::us(10), 0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _tag: u64) {
                self.fired += 1;
                let stale = self.last;
                if self.fired < self.rounds {
                    // Arm first so the freed slot is reused, then cancel
                    // the stale id — the new timer must survive.
                    self.last = ctx.set_timer(units::us(10), 0);
                    ctx.cancel_timer(stale);
                    ctx.cancel_timer(stale); // double-cancel: also a no-op
                }
            }
        }
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 10);
        sim.add_process(
            0,
            Box::new(StaleCanceller {
                last: 0,
                fired: 0,
                rounds: 10_000,
            }),
        );
        sim.run_until(units::secs(1));
        // Every round fired (stale cancels killed nothing)...
        assert_eq!(sim.events_processed(), 1 + 10_000);
        // ...and no cancellation state accumulated.
        assert_eq!(sim.live_timers(), 0);
    }

    #[test]
    fn crash_retires_armed_timers() {
        // A ticker that always has one timer armed, crashed mid-run: the
        // in-flight timer arrival lands on a crashed process and must
        // give its table slot back.
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 13);
        let pid = sim.add_process(
            0,
            Box::new(Ticker {
                log: log.clone(),
                period: units::ms(5),
                remaining: u32::MAX,
            }),
        );
        sim.crash_at(pid, units::ms(12));
        sim.run_until(units::secs(1));
        assert_eq!(log.borrow().len(), 2); // ticks at 5 ms and 10 ms
        assert_eq!(sim.live_timers(), 0, "crashed process's timer leaked");
    }

    #[test]
    fn engine_stats_count_the_run() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::us(100), 0), 12);
        let rec = sim.add_process(
            0,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _send = sim.add_process(0, Box::new(Burst { peer: rec, n: 50 }));
        sim.run_until(units::secs(1));
        let st = sim.stats();
        assert_eq!(st.events, sim.events_processed());
        assert_eq!(st.events, 2 + 50); // two starts + fifty deliveries
        assert_eq!(st.messages_routed, 50);
        assert!(st.heap_peak >= 50, "burst fills the heap: {}", st.heap_peak);
        assert!(st.direct_deliveries >= 2, "starts run direct");
        assert!(st.wall_ns > 0);
        assert!(st.events_per_sec() > 0.0);
    }

    #[test]
    fn partitioned_link_defers_delivery_to_heal() {
        use crate::faults::FaultSchedule;
        struct TimedSender {
            peer: ProcessId,
        }
        impl Process<u64> for TimedSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.set_timer(units::ms(10), 0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _tag: u64) {
                ctx.send(self.peer, ctx.now());
            }
        }
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::paper_three_dcs(0, 0), 21);
        let rec = sim.add_process(
            1,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _s = sim.add_process(0, Box::new(TimedSender { peer: rec }));
        let mut fs = FaultSchedule::new();
        // dc0 <-> dc1 partitioned over the send instant (10 ms).
        fs.partition(0, 1, units::ms(5), units::ms(200));
        sim.set_fault_schedule(fs);
        sim.run_until(units::secs(1));
        // Normal arrival would be 10 + 40 ms; deferred to heal + 40 ms.
        assert_eq!(log.borrow()[0].0, units::ms(240));
        assert_eq!(sim.stats().messages_deferred, 1);
    }

    #[test]
    fn gray_link_inflates_latency_without_loss() {
        use crate::faults::FaultSchedule;
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::paper_three_dcs(0, 0), 22);
        let rec = sim.add_process(
            1,
            Box::new(Recorder {
                log: log.clone(),
                label: "r",
            }),
        );
        let _s = sim.add_process(0, Box::new(Burst { peer: rec, n: 200 }));
        let mut fs = FaultSchedule::new();
        fs.degrade(0, 1, 0, units::secs(1), 0.5, units::ms(5), units::ms(50));
        sim.set_fault_schedule(fs);
        sim.run_until(units::secs(5));
        let log = log.borrow();
        // Nothing is lost; FIFO order holds despite random RTO penalties.
        assert_eq!(log.len(), 200);
        for (i, (_, m)) in log.iter().enumerate() {
            assert_eq!(m, &format!("r:{i}"));
        }
        // Every message pays at least base + extra.
        assert!(log.iter().all(|(t, _)| *t >= units::ms(45)));
        // ~50% loss over 200 messages: retransmits happened.
        let st = sim.stats();
        assert!(st.retransmits > 50, "retransmits: {}", st.retransmits);
        assert_eq!(st.messages_deferred, 0);
    }

    #[test]
    fn oneway_override_makes_links_asymmetric() {
        use crate::faults::FaultSchedule;
        struct Echo;
        impl Process<u64> for Echo {
            fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: u64) {
                ctx.send(from, msg);
            }
        }
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::paper_three_dcs(0, 0), 23);
        let echo = sim.add_process(1, Box::new(Echo));
        struct PingOnce {
            peer: ProcessId,
            log: Log,
        }
        impl Process<u64> for PingOnce {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.send(self.peer, 1);
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {
                self.log.borrow_mut().push((ctx.now(), "pong".into()));
            }
        }
        let _p = sim.add_process(
            0,
            Box::new(PingOnce {
                peer: echo,
                log: log.clone(),
            }),
        );
        let mut fs = FaultSchedule::new();
        // dc0 -> dc1 slowed to 100 ms one-way; the return path keeps 40 ms.
        fs.override_oneway(0, 1, 0, units::secs(10), units::ms(100));
        sim.set_fault_schedule(fs);
        sim.run_until(units::secs(1));
        assert_eq!(log.borrow()[0].0, units::ms(140));
    }

    #[test]
    fn pause_queues_everything_and_resumes_in_order() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(2, units::ms(1), 0), 24);
        let server = sim.add_process(
            0,
            Box::new(SlowServer {
                log: log.clone(),
                cost: units::us(10),
            }),
        );
        let _client = sim.add_process(
            0,
            Box::new(Burst {
                peer: server,
                n: 20,
            }),
        );
        // Messages arrive at 1 ms; the server is paused over that instant.
        sim.pause_between(server, units::us(500), units::ms(50));
        sim.run_until(units::secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 20, "pause drops nothing");
        // First handled at the resume, in FIFO order.
        assert_eq!(log[0].0, units::ms(50));
        for (i, (_, m)) in log.iter().enumerate() {
            assert_eq!(m, &format!("s:{i}"));
        }
        assert!(!sim.is_paused(server));
    }

    #[test]
    fn paused_timers_fire_late_but_fire() {
        let log: Log = Rc::default();
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 25);
        let pid = sim.add_process(
            0,
            Box::new(Ticker {
                log: log.clone(),
                period: units::ms(5),
                remaining: 3,
            }),
        );
        sim.pause_between(pid, units::ms(2), units::ms(30));
        sim.run_until(units::secs(1));
        let times: Vec<SimTime> = log.borrow().iter().map(|(t, _)| *t).collect();
        // First tick (scheduled for 5 ms) runs at the resume; the rest
        // re-arm from there.
        assert_eq!(times, vec![units::ms(30), units::ms(35), units::ms(40)]);
        assert_eq!(sim.live_timers(), 0);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct Canceller;
        impl Process<u64> for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                let id = ctx.set_timer(units::ms(1), 1);
                ctx.cancel_timer(id);
                ctx.set_timer(units::ms(2), 2);
            }
            fn on_message(&mut self, _c: &mut Context<'_, u64>, _f: ProcessId, _m: u64) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, tag: u64) {
                assert_eq!(tag, 2, "cancelled timer must not fire");
            }
        }
        let mut sim = Simulation::new(Topology::single_region(1, 0, 0), 9);
        sim.add_process(0, Box::new(Canceller));
        sim.run_until(units::secs(1));
        assert_eq!(sim.events_processed(), 2); // start + timer 2
    }
}
