//! Network topology: regions, latency matrix, FIFO link state.
//!
//! Regions model datacenters; the inter-region one-way latency is half the
//! configured round-trip time (the paper emulates 80 ms RTT between dc1
//! and dc2/dc3 and 160 ms between dc2 and dc3 with `netem`). Intra-region
//! messages take `intra_oneway` plus jitter. FIFO per ordered process pair
//! is enforced by the engine by clamping each delivery to be no earlier
//! than the previous delivery on the same link.

use crate::SimTime;
use std::fmt;

/// Identifies a simulated machine; every process runs on a node and every
/// node belongs to a region (datacenter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index for per-node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Latency configuration across regions.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `rtt[a][b]`: round-trip time between regions `a` and `b` (ns).
    rtt: Vec<Vec<SimTime>>,
    /// One-way latency between nodes of the same region (ns).
    intra_oneway: SimTime,
    /// Uniform jitter added to every one-way latency: `[0, jitter]` (ns).
    jitter: SimTime,
}

/// Why an RTT matrix cannot describe a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Length of the offending row.
        cols: usize,
    },
    /// A self-distance is non-zero.
    NonzeroDiagonal {
        /// Offending region.
        region: usize,
    },
    /// `rtt[a][b] != rtt[b][a]`.
    Asymmetric {
        /// First region of the asymmetric pair.
        a: usize,
        /// Second region of the asymmetric pair.
        b: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotSquare { rows, cols } => {
                write!(
                    f,
                    "RTT matrix must be square: {rows} rows but a row of length {cols}"
                )
            }
            TopologyError::NonzeroDiagonal { region } => {
                write!(
                    f,
                    "RTT matrix diagonal must be zero: region {region} has a self-distance"
                )
            }
            TopologyError::Asymmetric { a, b } => {
                write!(f, "RTT matrix must be symmetric: [{a}][{b}] != [{b}][{a}]")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Builds a topology from a symmetric RTT matrix, or explains why the
    /// matrix is not one (not square, asymmetric, or non-zero diagonal).
    pub fn new(
        rtt: Vec<Vec<SimTime>>,
        intra_oneway: SimTime,
        jitter: SimTime,
    ) -> Result<Self, TopologyError> {
        let n = rtt.len();
        for (i, row) in rtt.iter().enumerate() {
            if row.len() != n {
                return Err(TopologyError::NotSquare {
                    rows: n,
                    cols: row.len(),
                });
            }
            if row[i] != 0 {
                return Err(TopologyError::NonzeroDiagonal { region: i });
            }
            for (j, &v) in row.iter().enumerate() {
                if v != rtt[j][i] {
                    return Err(TopologyError::Asymmetric { a: i, b: j });
                }
            }
        }
        Ok(Topology {
            rtt,
            intra_oneway,
            jitter,
        })
    }

    /// A single region of `_nodes` machines (node count is informational;
    /// nodes are added to the simulation explicitly).
    pub fn single_region(_nodes: usize, intra_oneway: SimTime, jitter: SimTime) -> Self {
        Topology {
            rtt: vec![vec![0]],
            intra_oneway,
            jitter,
        }
    }

    /// The paper's three-datacenter deployment: 80 ms RTT between dc0 and
    /// both dc1/dc2, 160 ms between dc1 and dc2 (≈ Virginia / Oregon /
    /// Ireland on EC2), with the given intra-DC one-way latency and jitter.
    pub fn paper_three_dcs(intra_oneway: SimTime, jitter: SimTime) -> Self {
        let ms = 1_000_000;
        Topology::new(
            vec![
                vec![0, 80 * ms, 80 * ms],
                vec![80 * ms, 0, 160 * ms],
                vec![80 * ms, 160 * ms, 0],
            ],
            intra_oneway,
            jitter,
        )
        .expect("the paper's matrix is square and symmetric")
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.rtt.len()
    }

    /// One-way base latency from region `a` to region `b`.
    pub fn oneway(&self, a: usize, b: usize) -> SimTime {
        if a == b {
            self.intra_oneway
        } else {
            self.rtt[a][b] / 2
        }
    }

    /// Round-trip time between regions.
    pub fn rtt(&self, a: usize, b: usize) -> SimTime {
        if a == b {
            self.intra_oneway * 2
        } else {
            self.rtt[a][b]
        }
    }

    /// Samples a one-way latency including jitter.
    pub fn sample_oneway(&self, a: usize, b: usize, rng: &mut JitterRng) -> SimTime {
        rng.sample(self.oneway(a, b), self.jitter)
    }

    /// Configured jitter bound.
    pub fn jitter(&self) -> SimTime {
        self.jitter
    }
}

/// Dedicated per-message jitter stream shared by
/// [`Topology::sample_oneway`] and the engine's flat-table routing path
/// — one definition so the jitter distribution can never silently
/// diverge between them.
///
/// Jitter is drawn for *every* routed message, so this is one of the
/// hottest call sites in the whole simulator; the general-purpose
/// `StdRng` (ChaCha) costs more than the rest of the routing arithmetic
/// combined at large scales. A SplitMix64 step plus a multiply-shift
/// bounded draw is a handful of ALU ops, keeps the full 64-bit period,
/// and stays bit-deterministic per seed. The multiply-shift draw over
/// `[0, jitter]` carries a modulo bias below `jitter / 2^64` — immaterial
/// for latency jitter. Draws nothing when `jitter` is zero, keeping
/// zero-jitter runs stream-neutral.
#[derive(Clone, Debug)]
pub struct JitterRng(u64);

impl JitterRng {
    /// A jitter stream for `seed`, decorrelated from the engine's
    /// handler-facing `StdRng` by a fixed tweak.
    pub fn new(seed: u64) -> Self {
        JitterRng(seed ^ 0x6A09_E667_F3BC_C909)
    }

    /// `base` plus a uniform draw from `[0, jitter]`.
    #[inline]
    pub fn sample(&mut self, base: SimTime, jitter: SimTime) -> SimTime {
        if jitter == 0 {
            return base;
        }
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        base + ((z as u128 * (jitter as u128 + 1)) >> 64) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_rtts() {
        let t = Topology::paper_three_dcs(100_000, 0);
        assert_eq!(t.regions(), 3);
        assert_eq!(t.rtt(0, 1), 80_000_000);
        assert_eq!(t.rtt(0, 2), 80_000_000);
        assert_eq!(t.rtt(1, 2), 160_000_000);
        assert_eq!(t.oneway(0, 1), 40_000_000);
        assert_eq!(t.oneway(1, 2), 80_000_000);
        assert_eq!(t.oneway(1, 1), 100_000);
    }

    #[test]
    fn jitter_bounds_sampled_latency() {
        let t = Topology::single_region(4, 1_000, 500);
        let mut rng = JitterRng::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let s = t.sample_oneway(0, 0, &mut rng);
            assert!((1_000..=1_500).contains(&s));
            seen.insert(s);
        }
        // The draw must actually spread over the range, not collapse.
        assert!(seen.len() > 100, "only {} distinct samples", seen.len());
        // Same seed, same stream.
        let mut a = JitterRng::new(9);
        let mut b = JitterRng::new(9);
        for _ in 0..100 {
            assert_eq!(a.sample(0, 500), b.sample(0, 500));
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let t = Topology::single_region(2, 1_000, 0);
        let mut rng = JitterRng::new(7);
        assert_eq!(t.sample_oneway(0, 0, &mut rng), 1_000);
    }

    #[test]
    fn bad_matrices_are_rejected_with_reasons() {
        assert_eq!(
            Topology::new(vec![vec![0, 10], vec![20, 0]], 1, 0).unwrap_err(),
            TopologyError::Asymmetric { a: 0, b: 1 }
        );
        assert_eq!(
            Topology::new(vec![vec![5]], 1, 0).unwrap_err(),
            TopologyError::NonzeroDiagonal { region: 0 }
        );
        assert_eq!(
            Topology::new(vec![vec![0, 1], vec![1, 0, 2]], 1, 0).unwrap_err(),
            TopologyError::NotSquare { rows: 2, cols: 3 }
        );
        let msg = Topology::new(vec![vec![0, 10], vec![20, 0]], 1, 0)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("symmetric"), "{msg}");
    }
}
