#![warn(missing_docs)]

//! Deterministic discrete-event simulator for distributed protocols.
//!
//! This crate replaces the paper's physical testbed (a private cloud with
//! WAN latencies emulated by `netem`). It provides:
//!
//! * an event-driven engine ([`Simulation`]) with a `(time, sequence)`
//!   ordered heap — identical seeds give identical executions;
//! * **FIFO links** with a per-region round-trip-time matrix and optional
//!   jitter ([`Topology`]); FIFO is what Algorithms 1–5 assume between
//!   partitions, Eunomia and datacenters;
//! * **drifting physical clocks** per node ([`ClockModel`]) so clock-skew
//!   sensitivity can be reproduced (§3.2 of the paper);
//! * a **busy-server queueing model**: handling a message occupies the
//!   process for the service time it declares via [`Context::consume`], so
//!   throughput ceilings (an overloaded sequencer, the cost of global
//!   stabilization) *emerge* instead of being hard-coded;
//! * crash injection ([`Simulation::crash_at`]) for the fault-tolerance
//!   experiments;
//! * **timed fault injection** ([`FaultSchedule`],
//!   [`Simulation::pause_between`]): DC-pair partitions (TCP-like — the
//!   link buffers traffic and delivers it after the heal), gray links
//!   (per-message loss that manifests as RTO retransmission latency,
//!   plus constant latency inflation), directed one-way latency
//!   overrides for asymmetric WANs, and process pause/resume;
//! * an **allocation-free dispatch hot path**: arrivals at idle processes
//!   run their handler directly (no Dispatch heap round-trip), handler
//!   contexts borrow pooled scratch buffers, FIFO link state is a flat
//!   per-process-pair table, and timer cancellation uses O(1) slot
//!   generations — see the [`engine`-module docs](Simulation) and
//!   [`EngineStats`] for the counters every run exposes.
//!
//! Time unit: **nanoseconds** (`SimTime`). Helpers in [`units`] convert
//! from microseconds/milliseconds/seconds.
//!
//! # Examples
//!
//! A two-process ping-pong:
//!
//! ```
//! use eunomia_sim::{units, Context, ProcessId, Simulation, Topology};
//!
//! struct Ping { peer: Option<ProcessId>, rounds: u32 }
//!
//! impl eunomia_sim::Process<u32> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, 0);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, n: u32) {
//!         self.rounds = n;
//!         if n < 10 {
//!             ctx.send(from, n + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Topology::single_region(2, units::us(100), 0), 42);
//! let a = sim.add_process(0, Box::new(Ping { peer: None, rounds: 0 }));
//! let b_node = sim.add_node(0);
//! let b = sim.add_process_on(b_node, Box::new(Ping { peer: Some(a), rounds: 0 }));
//! sim.run_until(units::secs(1));
//! assert!(sim.now() >= units::us(1000));
//! let _ = (a, b);
//! ```

mod clock;
mod engine;
mod faults;
pub mod mc;
mod network;

pub use clock::ClockModel;
pub use engine::{Context, EngineStats, McEvent, Process, ProcessId, Simulation};
pub use faults::FaultSchedule;
pub use mc::{McChoice, McOptions, McOutcome, McPhase, McStats, McTrace, McVerdict, ModelChecker};
pub use network::{NodeId, Topology, TopologyError};

/// Simulated time in nanoseconds since the start of the run.
pub type SimTime = u64;

/// Conversions into simulated nanoseconds.
pub mod units {
    use super::SimTime;

    /// Nanoseconds.
    pub const fn ns(v: u64) -> SimTime {
        v
    }

    /// Microseconds.
    pub const fn us(v: u64) -> SimTime {
        v * 1_000
    }

    /// Milliseconds.
    pub const fn ms(v: u64) -> SimTime {
        v * 1_000_000
    }

    /// Seconds.
    pub const fn secs(v: u64) -> SimTime {
        v * 1_000_000_000
    }

    /// Nanoseconds to fractional milliseconds (for reporting).
    pub fn to_ms(v: SimTime) -> f64 {
        v as f64 / 1_000_000.0
    }

    /// Nanoseconds to fractional seconds (for reporting).
    pub fn to_secs(v: SimTime) -> f64 {
        v as f64 / 1_000_000_000.0
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn conversions() {
            assert_eq!(us(3), 3_000);
            assert_eq!(ms(2), 2_000_000);
            assert_eq!(secs(1), 1_000_000_000);
            assert!((to_ms(1_500_000) - 1.5).abs() < 1e-12);
            assert!((to_secs(500_000_000) - 0.5).abs() < 1e-12);
        }
    }
}
